//! Cross-crate integration tests: every scheduler × every scenario on real
//! platforms, exercising the full pipeline from model zoo to UXCost.

use dream::prelude::*;
use dream::sim::TaskEventKind;

fn platforms() -> [Platform; 2] {
    [
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        Platform::preset(PlatformPreset::Homo8kOs2),
    ]
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(FcfsScheduler::new()),
        Box::new(StaticScheduler::new()),
        Box::new(EdfScheduler::new()),
        Box::new(VeltairScheduler::new()),
        Box::new(PlanariaScheduler::new()),
        Box::new(DreamScheduler::new(DreamConfig::mapscore())),
        Box::new(DreamScheduler::new(DreamConfig::smart_drop())),
        Box::new(DreamScheduler::new(DreamConfig::full())),
    ]
}

#[test]
fn every_scheduler_runs_every_scenario_cleanly() {
    for platform in platforms() {
        for kind in ScenarioKind::all() {
            for mut scheduler in schedulers() {
                let scenario = Scenario::new(kind, CascadeProbability::default());
                let metrics = SimulationBuilder::new(platform.clone(), scenario)
                    .duration(Millis::new(300))
                    .seed(5)
                    .run(scheduler.as_mut())
                    .unwrap()
                    .into_metrics();
                assert_eq!(
                    metrics.invalid_decisions,
                    0,
                    "{} produced invalid decisions on {kind}",
                    scheduler.name()
                );
                assert!(metrics.layer_executions > 0, "{kind} executed nothing");
            }
        }
    }
}

#[test]
fn simulations_are_bit_deterministic() {
    for _ in 0..2 {
        let run = || {
            let mut s = DreamScheduler::new(DreamConfig::full());
            let scenario = Scenario::vr_gaming(CascadeProbability::default());
            SimulationBuilder::new(Platform::preset(PlatformPreset::Hetero4kOs1Ws2), scenario)
                .duration(Millis::new(500))
                .seed(77)
                .run(&mut s)
                .unwrap()
                .into_metrics()
        };
        let a = run();
        let b = run();
        assert_eq!(a.layer_executions, b.layer_executions);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.context_switches, b.context_switches);
        let ea: f64 = a.models().map(|(_, s)| s.energy_pj).sum();
        let eb: f64 = b.models().map(|(_, s)| s.energy_pj).sum();
        assert_eq!(ea, eb, "energy must be bit-identical");
        assert_eq!(
            UxCostReport::from_metrics(&a).uxcost(),
            UxCostReport::from_metrics(&b).uxcost()
        );
    }
}

#[test]
fn workload_realization_is_scheduler_independent() {
    // The realized workload (which cascades fired, which blocks skipped)
    // must be identical under different schedulers with the same seed —
    // GNMT's released-frame count is a direct witness of cascade draws.
    let released_gnmt = |scheduler: &mut dyn Scheduler| {
        let scenario = Scenario::ar_call(CascadeProbability::default());
        let metrics = SimulationBuilder::new(Platform::preset(PlatformPreset::Homo4kWs2), scenario)
            .duration(Millis::new(1_000))
            .seed(9)
            .run(scheduler)
            .unwrap()
            .into_metrics();
        let released = metrics
            .models()
            .find(|(_, s)| s.model_name == "GNMT")
            .map(|(_, s)| s.released + s.censored)
            .unwrap();
        released
    };
    let mut fcfs = FcfsScheduler::new();
    let mut edf = EdfScheduler::new();
    let mut dream = DreamScheduler::new(DreamConfig::mapscore());
    let a = released_gnmt(&mut fcfs);
    let b = released_gnmt(&mut edf);
    let c = released_gnmt(&mut dream);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn frame_accounting_matches_fps_contracts() {
    let scenario = Scenario::drone_outdoor();
    let mut s = EdfScheduler::new();
    let metrics = SimulationBuilder::new(Platform::preset(PlatformPreset::Homo8kWs2), scenario)
        .duration(Millis::new(2_000))
        .seed(3)
        .run(&mut s)
        .unwrap()
        .into_metrics();
    for (_, stats) in metrics.models() {
        // Counted frames are those whose deadline lies inside the 2 s
        // horizon: fps·2s minus one boundary frame.
        let expected = (stats.fps * 2.0) as u64;
        assert!(
            stats.released + stats.censored >= expected - 1
                && stats.released + stats.censored <= expected + 1,
            "{}: released {} censored {} vs expected {expected}",
            stats.model_name,
            stats.released,
            stats.censored
        );
        // Outcome partition: everything released is on-time, late, dropped,
        // flushed, or still in flight at the horizon.
        assert!(
            stats.completed_on_time + stats.completed_late + stats.dropped <= stats.released,
            "{}: outcome counts exceed releases",
            stats.model_name
        );
    }
}

#[test]
fn dream_beats_naive_baselines_on_stressed_platform() {
    let uxcost = |scheduler: &mut dyn Scheduler| {
        let mut acc = 0.0;
        for seed in [21, 22] {
            let scenario = Scenario::ar_social(CascadeProbability::default());
            let metrics =
                SimulationBuilder::new(Platform::preset(PlatformPreset::Hetero4kOs1Ws2), scenario)
                    .duration(Millis::new(1_500))
                    .seed(seed)
                    .run(scheduler)
                    .unwrap()
                    .into_metrics();
            acc += UxCostReport::from_metrics(&metrics).uxcost() / 2.0;
        }
        acc
    };
    // Untuned DREAM (α = β = 1) against the weakest baselines; the tuned
    // comparisons against FCFS/Veltair/Planaria live in the Figure 7 bench
    // (per-cell offline tuning is too slow for a unit test, and the paper
    // itself reports that fixed parameters forfeit about half of DREAM's
    // advantage — Figure 9).
    let mut dream = DreamScheduler::new(DreamConfig::full());
    let mut statik = StaticScheduler::new();
    let mut veltair = VeltairScheduler::new();
    let d = uxcost(&mut dream);
    let st = uxcost(&mut statik);
    let v = uxcost(&mut veltair);
    assert!(d < st, "DREAM {d} should beat Static {st}");
    assert!(d < v, "DREAM {d} should beat Veltair {v}");
}

#[test]
fn phase_switch_flushes_and_notifies() {
    struct Watcher {
        inner: DreamScheduler,
        flushes: u64,
        phases: Vec<usize>,
    }
    impl Scheduler for Watcher {
        fn name(&self) -> &str {
            "watcher"
        }
        fn schedule(&mut self, view: &dream::sim::SystemView<'_>) -> dream::sim::Decision {
            self.inner.schedule(view)
        }
        fn on_task_event(&mut self, event: &dream::sim::TaskEvent) {
            if matches!(event.kind, TaskEventKind::Flushed) {
                self.flushes += 1;
            }
            self.inner.on_task_event(event);
        }
        fn on_phase_start(&mut self, phase: usize, names: &[&'static str]) {
            self.phases.push(phase);
            self.inner.on_phase_start(phase, names);
        }
    }
    let mut w = Watcher {
        inner: DreamScheduler::new(DreamConfig::full()),
        flushes: 0,
        phases: Vec::new(),
    };
    let metrics = SimulationBuilder::new(
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        Scenario::vr_gaming(CascadeProbability::default()),
    )
    .add_phase(
        Millis::new(400),
        Scenario::ar_call(CascadeProbability::default()),
    )
    .duration(Millis::new(800))
    .seed(13)
    .run(&mut w)
    .unwrap()
    .into_metrics();
    assert_eq!(w.phases, vec![0, 1]);
    // Phase-1 models ran.
    assert!(metrics
        .models()
        .any(|(k, s)| k.phase == 1 && s.completed_on_time > 0 && s.model_name == "SkipNet"));
    // In-flight VR work at the boundary was flushed (usually > 0; at
    // minimum the counter is consistent with metrics).
    let flushed_in_metrics: u64 = metrics.models().map(|(_, s)| s.flushed).sum();
    assert_eq!(w.flushes, flushed_in_metrics);
}

#[test]
fn eight_k_platforms_are_comfortable() {
    // Figure 8(c): with abundant resources every DREAM variant behaves the
    // same and violations vanish.
    for config in [DreamConfig::mapscore(), DreamConfig::full()] {
        let mut s = DreamScheduler::new(config);
        let metrics = SimulationBuilder::new(
            Platform::preset(PlatformPreset::Homo8kWs2),
            Scenario::drone_indoor(),
        )
        .duration(Millis::new(1_000))
        .seed(31)
        .run(&mut s)
        .unwrap()
        .into_metrics();
        assert!(
            metrics.mean_violation_rate() < 0.01,
            "8K should meet essentially all deadlines"
        );
        assert_eq!(s.total_drops(), 0);
    }
}
