//! Determinism properties: identical seed ⇒ bit-identical [`Metrics`] —
//! across repeated runs, across schedulers' shared workload realization,
//! and across `ExperimentGrid` thread counts.

use dream::prelude::*;
use dream_bench::{ArrivalConfig, ExperimentGrid, RunSpec, SchedulerKind};
use dream_models::ScenarioKind;

/// One full simulation, fingerprinted.
fn fingerprint(seed: u64, kind: ScenarioKind, preset: PlatformPreset) -> u64 {
    let scenario = Scenario::new(kind, CascadeProbability::default_paper());
    let mut sched = DreamScheduler::new(DreamConfig::full());
    SimulationBuilder::new(Platform::preset(preset), scenario)
        .duration(Millis::new(400))
        .seed(seed)
        .run(&mut sched)
        .unwrap()
        .into_metrics()
        .fingerprint()
}

#[test]
fn identical_seed_is_bit_identical_across_runs() {
    // Sweep seeds × scenarios; every repeat must produce the identical
    // metrics digest (which hashes every counter and every f64 bit).
    for seed in 0..8 {
        for kind in [ScenarioKind::ArCall, ScenarioKind::VrGaming] {
            let a = fingerprint(seed, kind, PlatformPreset::Hetero4kWs1Os2);
            let b = fingerprint(seed, kind, PlatformPreset::Hetero4kWs1Os2);
            assert_eq!(a, b, "seed {seed} on {kind} diverged");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1, ScenarioKind::ArCall, PlatformPreset::Hetero4kWs1Os2);
    let b = fingerprint(2, ScenarioKind::ArCall, PlatformPreset::Hetero4kWs1Os2);
    assert_ne!(a, b, "distinct seeds should realize distinct workloads");
}

/// The tentpole acceptance property: the same grid produces identical
/// aggregated metrics for 1 thread and N threads on the same seeds.
#[test]
fn experiment_grid_is_thread_count_invariant() {
    let mut grid = ExperimentGrid::new();
    grid.add_product(
        &[PlatformPreset::Homo4kWs2, PlatformPreset::Hetero4kWs1Os2],
        &[ScenarioKind::ArCall],
        &[
            SchedulerKind::Fcfs,
            SchedulerKind::Edf,
            SchedulerKind::Planaria,
        ],
        3,
    );
    // Shorten the horizon so the sweep stays fast; 2 platforms × 3
    // schedulers × 3 seeds = 18 cells.
    let mut short = ExperimentGrid::new();
    for spec in grid.specs() {
        short.push(spec.clone().with_duration_ms(250));
    }

    let serial = short.clone().with_threads(1).run();
    let wide = short.clone().with_threads(8).run();
    assert_eq!(
        serial.fingerprint(),
        wide.fingerprint(),
        "grid results must not depend on the thread count"
    );
    // And the aggregates agree cell by cell, bitwise.
    for (a, b) in serial.averaged().iter().zip(wide.averaged().iter()) {
        assert_eq!(a.scheduler_name, b.scheduler_name);
        assert_eq!(a.uxcost.to_bits(), b.uxcost.to_bits());
        assert_eq!(
            a.mean_violation_rate.to_bits(),
            b.mean_violation_rate.to_bits()
        );
        assert_eq!(a.mean_norm_energy.to_bits(), b.mean_norm_energy.to_bits());
    }
    // Repeating the wide run reproduces it exactly.
    let wide2 = short.with_threads(8).run();
    assert_eq!(wide.fingerprint(), wide2.fingerprint());
}

/// Open-loop arrival streams keep the thread-count invariance: Poisson,
/// bursty MMPP, and trace-replay cells aggregate bit-identically for 1
/// and N workers, and re-running reproduces the digest exactly.
#[test]
fn stochastic_arrival_grids_are_thread_count_invariant() {
    use dream_sim::{ArrivalTrace, MmppArrivals, SimTime, SimulationBuilder};

    let horizon_ms = 250u64;
    let trace = {
        let ws = SimulationBuilder::new(
            Platform::preset(PlatformPreset::Hetero4kWs1Os2),
            Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
        )
        .duration(Millis::new(horizon_ms))
        .build_workload()
        .unwrap();
        let mut src = MmppArrivals::new(0.8, 2.5, 0.2, 0.3);
        std::sync::Arc::new(ArrivalTrace::record(
            "burst",
            &ws,
            SimTime::from(Millis::new(horizon_ms)),
            11,
            &mut src,
        ))
    };
    let arrivals = [
        ArrivalConfig::Poisson { intensity: 1.2 },
        ArrivalConfig::Mmpp {
            calm: 0.8,
            burst: 2.5,
            p_enter: 0.2,
            p_exit: 0.3,
        },
        ArrivalConfig::Trace(trace),
    ];
    let mut grid = ExperimentGrid::new();
    for arrival in &arrivals {
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::Edf,
            SchedulerKind::Planaria,
        ] {
            grid.add_seed_sweep(
                RunSpec::new(kind, ScenarioKind::ArCall, PlatformPreset::Hetero4kWs1Os2)
                    .with_duration_ms(horizon_ms)
                    .with_arrivals(arrival.clone()),
                2,
            );
        }
    }
    let serial = grid.clone().with_threads(1).run();
    let wide = grid.clone().with_threads(8).run();
    assert_eq!(
        serial.fingerprint(),
        wide.fingerprint(),
        "open-loop arrival grids must not depend on the thread count"
    );
    let wide2 = grid.with_threads(8).run();
    assert_eq!(wide.fingerprint(), wide2.fingerprint());
    // Grouping keeps the three arrival families apart even for the same
    // scheduler (labels include the stream identity).
    assert_eq!(serial.averaged().len(), arrivals.len() * 3);
}

/// The shared-workload cache is a pure refactor: a run over a prebuilt
/// `Arc<WorkloadSet>` (what every grid cell now does) is bit-identical to
/// a run that builds its own tables, and reusing one build across
/// schedulers and seeds never lets state leak between runs.
#[test]
fn prebuilt_workload_runs_bit_identical_to_fresh_builds() {
    use dream_bench::shared_workload;
    use dream_cost::CostModel;

    let run = |prebuilt: bool, seed: u64, dream: bool| {
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut builder =
            SimulationBuilder::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario)
                .duration(Millis::new(300))
                .seed(seed);
        if prebuilt {
            builder = builder.prebuilt_workload(shared_workload(
                ScenarioKind::ArCall,
                PlatformPreset::Hetero4kWs1Os2,
                0.5,
                300,
                std::sync::Arc::new(CostModel::paper_default()),
            ));
        }
        let metrics = if dream {
            let mut s = DreamScheduler::new(DreamConfig::full());
            builder.run(&mut s).unwrap().into_metrics()
        } else {
            let mut s = dream_baselines::FcfsScheduler::new();
            builder.run(&mut s).unwrap().into_metrics()
        };
        metrics.fingerprint()
    };
    for seed in [0, 3, 11] {
        for dream in [true, false] {
            assert_eq!(
                run(true, seed, dream),
                run(false, seed, dream),
                "seed {seed} dream {dream}: cached tables changed the simulation"
            );
        }
    }
}

#[test]
fn grid_results_stay_in_spec_order_under_parallelism() {
    let mut grid = ExperimentGrid::new().with_threads(4);
    for seed in [9, 3, 7, 1] {
        grid.push(
            RunSpec::new(
                SchedulerKind::Fcfs,
                ScenarioKind::ArCall,
                PlatformPreset::Homo4kWs2,
            )
            .with_duration_ms(200)
            .with_seed(seed),
        );
    }
    let results = grid.run();
    let seeds: Vec<u64> = results.runs().iter().map(|r| r.spec.seed).collect();
    assert_eq!(seeds, vec![9, 3, 7, 1]);
}
