//! Regression witness for the canonical-fold refactor (detlint D2).
//!
//! The golden fingerprints below were captured *before* the ad-hoc
//! `.sum::<f64>()` / manual `+=` folds in `dream-sim`, `dream-core`, and
//! `dream-baselines` were routed through [`dream_sim::canonical_sum`].
//! The helper replays `<f64 as Sum>`'s exact operation sequence (a
//! left-to-right fold seeded with `-0.0`), so the refactor must be a
//! bit-for-bit no-op: any drift in these fingerprints means a float fold
//! changed its operation order.

use dream::prelude::*;
use dream_baselines::PlanariaScheduler;
use dream_models::ScenarioKind;
use dream_sim::Scheduler;

const HORIZON_MS: u64 = 600;
const PRESET: PlatformPreset = PlatformPreset::Hetero4kWs1Os2;

fn fingerprint(kind: ScenarioKind, seed: u64, sched: &mut dyn Scheduler) -> u64 {
    let scenario = Scenario::new(kind, CascadeProbability::default_paper());
    SimulationBuilder::new(Platform::preset(PRESET), scenario)
        .duration(Millis::new(HORIZON_MS))
        .seed(seed)
        .run(sched)
        .expect("simulation runs")
        .into_metrics()
        .fingerprint()
}

/// Golden values captured at commit 12cd435 (pre-refactor): the
/// canonical-fold adoption must not move a single bit.
#[test]
fn canonical_fold_adoption_is_bit_identical() {
    let cases: [(ScenarioKind, u64, u64, u64); 3] = [
        (
            ScenarioKind::ArCall,
            17,
            0xc1afbce32e92dbad,
            0xeda87967b026ab92,
        ),
        (
            ScenarioKind::VrGaming,
            5,
            0xd8a6ddc52ab7b4e4,
            0x6b7dbd89703369d4,
        ),
        (
            ScenarioKind::DroneIndoor,
            2024,
            0x8302275fed4aa21d,
            0x05f5e2596013c4e0,
        ),
    ];
    for (kind, seed, golden_dream, golden_planaria) in cases {
        let mut dream = DreamScheduler::new(DreamConfig::full());
        let got = fingerprint(kind, seed, &mut dream);
        assert_eq!(
            got, golden_dream,
            "{kind:?}/{seed} DREAM-Full fingerprint drifted from the pre-refactor golden"
        );
        let mut planaria = PlanariaScheduler::new();
        let got_p = fingerprint(kind, seed, &mut planaria);
        assert_eq!(
            got_p, golden_planaria,
            "{kind:?}/{seed} Planaria fingerprint drifted from the pre-refactor golden"
        );
    }
}
