//! Fast, test-sized versions of the paper's evaluation claims (the full
//! versions live in `crates/bench/benches/` — see EXPERIMENTS.md).

use dream::prelude::*;

fn run(
    scheduler: &mut dyn Scheduler,
    kind: ScenarioKind,
    preset: PlatformPreset,
    cascade: f64,
    ms: u64,
    seed: u64,
) -> Metrics {
    let scenario = Scenario::new(kind, CascadeProbability::new(cascade).unwrap());
    SimulationBuilder::new(Platform::preset(preset), scenario)
        .duration(Millis::new(ms))
        .seed(seed)
        .run(scheduler)
        .unwrap()
        .into_metrics()
}

/// §2.3 / Figure 2: dynamic FCFS violates fewer deadlines than static
/// scheduling on AR_Call under dynamicity.
#[test]
fn figure2_dynamic_beats_static_on_ar_call() {
    let mut total_static = 0.0;
    let mut total_dynamic = 0.0;
    for preset in [
        PlatformPreset::Hetero4kWs1Os2,
        PlatformPreset::Hetero4kOs1Ws2,
    ] {
        let mut statik = StaticScheduler::new();
        let mut fcfs = FcfsScheduler::new();
        total_static +=
            run(&mut statik, ScenarioKind::ArCall, preset, 0.5, 2_000, 1).mean_violation_rate();
        total_dynamic +=
            run(&mut fcfs, ScenarioKind::ArCall, preset, 0.5, 2_000, 1).mean_violation_rate();
    }
    assert!(
        total_dynamic < total_static,
        "dynamic {total_dynamic} vs static {total_static}"
    );
}

/// Figure 7 (in miniature): DREAM's UXCost beats FCFS and Veltair on a
/// constrained heterogeneous platform.
#[test]
fn figure7_dream_beats_fcfs_and_veltair() {
    let avg = |make: &dyn Fn() -> Box<dyn Scheduler>| {
        let mut acc = 0.0;
        for seed in [41, 42] {
            let mut s = make();
            let m = run(
                s.as_mut(),
                ScenarioKind::ArSocial,
                PlatformPreset::Hetero4kWs1Os2,
                0.5,
                1_500,
                seed,
            );
            acc += UxCostReport::from_metrics(&m).uxcost() / 2.0;
        }
        acc
    };
    let dream = avg(&|| Box::new(DreamScheduler::new(DreamConfig::full())));
    let fcfs = avg(&|| Box::new(FcfsScheduler::new()));
    let veltair = avg(&|| Box::new(VeltairScheduler::new()));
    assert!(dream < fcfs, "DREAM {dream} vs FCFS {fcfs}");
    assert!(dream < veltair, "DREAM {dream} vs Veltair {veltair}");
}

/// Figure 12's direction: higher cascade probability means more load and a
/// (weakly) higher UXCost for every scheduler.
#[test]
fn figure12_load_grows_with_cascade_probability() {
    let cost_at = |p: f64| {
        let mut s = FcfsScheduler::new();
        let m = run(
            &mut s,
            ScenarioKind::ArSocial,
            PlatformPreset::Hetero4kWs1Os2,
            p,
            1_500,
            8,
        );
        m.mean_violation_rate()
    };
    let low = cost_at(0.5);
    let high = cost_at(0.99);
    assert!(
        high >= low,
        "violations should not shrink as cascades saturate: {low} -> {high}"
    );
}

/// Figure 14: under heavy load DREAM deploys lighter supernet variants;
/// under light load mostly the Original.
#[test]
fn figure14_supernet_shift_under_load() {
    let shares = |p: f64| {
        let mut s = DreamScheduler::new(DreamConfig::full());
        let m = run(
            &mut s,
            ScenarioKind::ArSocial,
            PlatformPreset::Hetero4kOs1Ws2,
            p,
            2_000,
            17,
        );
        let hist = m
            .models()
            .find(|(_, st)| st.model_name == "Once-for-All")
            .map(|(_, st)| st.variant_runs.clone())
            .unwrap();
        let total: u64 = hist.iter().sum();
        hist[0] as f64 / total.max(1) as f64
    };
    let light = shares(0.5);
    let heavy = shares(0.99);
    assert!(
        heavy < light,
        "Original share should shrink under load: light {light} heavy {heavy}"
    );
}

/// §3.6 / Figure 11: the parameter search converges in ≤ 5 steps on a real
/// simulation objective and improves on the neutral starting point.
#[test]
fn figure11_optimizer_converges_on_simulation_objective() {
    use dream::core::{ObjectiveKind, ParamOptimizer, ScoreParams};
    let objective = |params: ScoreParams| {
        let mut s = DreamScheduler::new(DreamConfig::mapscore().with_params(params));
        let m = run(
            &mut s,
            ScenarioKind::ArSocial,
            PlatformPreset::Hetero4kOs1Ws2,
            0.5,
            600,
            55,
        );
        ObjectiveKind::UxCost.evaluate(&m)
    };
    let neutral_cost = objective(ScoreParams::neutral());
    let trace = ParamOptimizer::new(ScoreParams::neutral()).run(objective);
    assert!(trace.steps.len() <= 5, "{} steps", trace.steps.len());
    assert!(
        trace.final_cost <= neutral_cost * 1.0001,
        "search should not end worse than the start: {} vs {neutral_cost}",
        trace.final_cost
    );
}

/// Table 4 ladder: enabling smart drop never *adds* violations beyond the
/// drop accounting itself, and the drop cap holds per model.
#[test]
fn table4_smart_drop_cap_holds_under_overload() {
    let mut s = DreamScheduler::new(DreamConfig::smart_drop());
    let m = run(
        &mut s,
        ScenarioKind::ArSocial,
        PlatformPreset::Hetero4kWs1Os2,
        0.99,
        2_000,
        17,
    );
    for (_, stats) in m.models() {
        // 2-in-10 cap ⇒ long-run drop rate ≤ 20% (plus one window's grace).
        assert!(
            stats.dropped as f64 <= 0.2 * stats.released as f64 + 2.0,
            "{}: {} drops of {}",
            stats.model_name,
            stats.dropped,
            stats.released
        );
    }
}
