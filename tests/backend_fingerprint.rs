//! End-to-end differential conformance: a [`TableBackend`] loaded from a
//! table exported by the analytical backend must reproduce the analytical
//! run **bit-for-bit** — identical precomputed MapScore tables, and
//! identical [`Metrics`] fingerprints across the 5-scenario × 4-seed
//! witness grid — while still registering as a *different* backend
//! (digest, cache identity, prebuilt-workload validation).

use std::sync::Arc;

use dream::prelude::*;
use dream_baselines::PlanariaScheduler;
use dream_cost::{AcceleratorId, CostBackend, TableBackend};
use dream_models::ScenarioKind;
use dream_sim::{LayerId, SimError};

const HORIZON_MS: u64 = 250;
const SEEDS: [u64; 4] = [0, 1, 2, 3];
const PRESET: PlatformPreset = PlatformPreset::Hetero4kWs1Os2;

fn builder(kind: ScenarioKind) -> SimulationBuilder {
    let scenario = Scenario::new(kind, CascadeProbability::default_paper());
    SimulationBuilder::new(Platform::preset(PRESET), scenario).duration(Millis::new(HORIZON_MS))
}

/// The table backend for `kind`: exported from the analytical model over
/// exactly the workload's layer set, then round-tripped through the CSV
/// text format so the *import* path (not just the in-memory export) is
/// what the simulation consumes.
fn table_backend_for(kind: ScenarioKind) -> Arc<dyn CostBackend> {
    let ws = builder(kind).build_workload().expect("workload builds");
    let model = CostModel::paper_default();
    let platform = Platform::preset(PRESET);
    let table = TableBackend::derive("fingerprint-witness", &model, &platform, ws.layers())
        .expect("analytical backend exports cleanly");
    Arc::new(TableBackend::from_csv_str(&table.to_csv_string()).expect("export re-imports"))
}

/// Tentpole acceptance: bit-identical `Metrics` fingerprints between the
/// analytical backend and its re-imported table export, for every
/// scenario and seed, under the full DREAM scheduler.
#[test]
fn table_backend_fingerprints_match_analytical_on_witness_grid() {
    for kind in ScenarioKind::all() {
        let table = table_backend_for(kind);
        for seed in SEEDS {
            let run = |cost: Option<Arc<dyn CostBackend>>| {
                let mut b = builder(kind).seed(seed);
                if let Some(t) = cost {
                    b = b.cost_backend(t);
                }
                let mut sched = DreamScheduler::new(DreamConfig::full());
                b.run(&mut sched).unwrap().into_metrics().fingerprint()
            };
            let analytical = run(None);
            let imported = run(Some(Arc::clone(&table)));
            assert_eq!(
                analytical, imported,
                "{kind} seed {seed}: table-backend run diverged from analytical"
            );
        }
    }
}

/// Planaria exercises the one decision-path query that still reaches the
/// backend online (multi-member gang costing); the exported gang rows
/// must reproduce the analytical estimates and dispatch charges exactly.
#[test]
fn gang_costing_stays_bit_identical_under_planaria() {
    for kind in [ScenarioKind::DroneIndoor, ScenarioKind::ArSocial] {
        let table = table_backend_for(kind);
        for seed in SEEDS {
            let mut a_sched = PlanariaScheduler::new();
            let analytical = builder(kind)
                .seed(seed)
                .run(&mut a_sched)
                .unwrap()
                .into_metrics();
            let mut t_sched = PlanariaScheduler::new();
            let imported = builder(kind)
                .seed(seed)
                .cost_backend(Arc::clone(&table))
                .run(&mut t_sched)
                .unwrap()
                .into_metrics();
            assert_eq!(
                analytical.fingerprint(),
                imported.fingerprint(),
                "{kind} seed {seed}: Planaria diverged under the table backend"
            );
            assert!(analytical.layer_executions > 0);
        }
    }
}

/// The precomputed MapScore tables — the static half of Algorithm 1's
/// split — are bit-identical between workloads built from the two
/// backends, even though the workloads identify as different builds.
#[test]
fn precomputed_score_tables_are_bit_identical_across_backends() {
    for kind in ScenarioKind::all() {
        let analytical_ws = builder(kind).build_workload().unwrap();
        let table = table_backend_for(kind);
        let table_ws = builder(kind)
            .cost_backend(Arc::clone(&table))
            .build_workload()
            .unwrap();
        assert_ne!(
            analytical_ws.cost_digest(),
            table_ws.cost_digest(),
            "{kind}: backends must keep distinct identities"
        );
        assert_eq!(analytical_ws.layer_count(), table_ws.layer_count());
        let accs = analytical_ws.acc_count();
        for l in 0..analytical_ws.layer_count() {
            let l = LayerId(l);
            for a in 0..accs {
                let a = AcceleratorId(a);
                for (label, x, y) in [
                    (
                        "latency",
                        analytical_ws.latency_ns(l, a),
                        table_ws.latency_ns(l, a),
                    ),
                    (
                        "energy",
                        analytical_ws.energy_pj(l, a),
                        table_ws.energy_pj(l, a),
                    ),
                    (
                        "lat_pref",
                        analytical_ws.lat_pref(l, a),
                        table_ws.lat_pref(l, a),
                    ),
                    (
                        "pref_energy",
                        analytical_ws.pref_energy(l, a),
                        table_ws.pref_energy(l, a),
                    ),
                    (
                        "cold_switch_ratio",
                        analytical_ws.cold_switch_ratio(l, a),
                        table_ws.cold_switch_ratio(l, a),
                    ),
                ] {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{kind}: {label}[{l:?}, {a:?}] diverged"
                    );
                }
            }
            assert_eq!(
                analytical_ws.avg_latency_ns(l).to_bits(),
                table_ws.avg_latency_ns(l).to_bits()
            );
            assert_eq!(
                analytical_ws.min_latency_ns(l).to_bits(),
                table_ws.min_latency_ns(l).to_bits()
            );
        }
        for a in 0..accs {
            let a = AcceleratorId(a);
            assert_eq!(
                analytical_ws.switch_energy_pj_per_byte(a).to_bits(),
                table_ws.switch_energy_pj_per_byte(a).to_bits()
            );
        }
    }
}

/// Regression (satellite): `prebuilt_workload` rejects a workload built
/// from a different *backend* — not just a different calibration of the
/// same backend, which is all the digest used to cover.
#[test]
fn prebuilt_workload_from_another_backend_is_rejected() {
    let kind = ScenarioKind::ArCall;
    let table = table_backend_for(kind);

    // Built by the table backend, handed to an analytical simulation.
    let table_ws = Arc::new(
        builder(kind)
            .cost_backend(Arc::clone(&table))
            .build_workload()
            .unwrap(),
    );
    let mut sched = DreamScheduler::new(DreamConfig::full());
    let err = builder(kind)
        .prebuilt_workload(Arc::clone(&table_ws))
        .run(&mut sched);
    assert!(
        matches!(err, Err(SimError::WorkloadMismatch { .. })),
        "analytical run accepted a table-built workload: {err:?}"
    );

    // Built analytically, handed to a table-backend simulation.
    let analytical_ws = Arc::new(builder(kind).build_workload().unwrap());
    let err = builder(kind)
        .cost_backend(Arc::clone(&table))
        .prebuilt_workload(analytical_ws)
        .run(&mut sched);
    assert!(
        matches!(err, Err(SimError::WorkloadMismatch { .. })),
        "table run accepted an analytically-built workload: {err:?}"
    );

    // The matching pairing still works, and a prebuilt table workload is
    // bit-identical to a fresh table build.
    let fresh = {
        let mut s = DreamScheduler::new(DreamConfig::full());
        builder(kind)
            .seed(7)
            .cost_backend(Arc::clone(&table))
            .run(&mut s)
            .unwrap()
            .into_metrics()
            .fingerprint()
    };
    let prebuilt = {
        let mut s = DreamScheduler::new(DreamConfig::full());
        builder(kind)
            .seed(7)
            .cost_backend(Arc::clone(&table))
            .prebuilt_workload(Arc::clone(&table_ws))
            .run(&mut s)
            .unwrap()
            .into_metrics()
            .fingerprint()
    };
    assert_eq!(fresh, prebuilt);
}

/// `WorkloadSet::build` surfaces a table that does not cover the workload
/// as a typed cost error, not a panic.
#[test]
fn incomplete_table_fails_workload_build_typed() {
    // A table exported for AR_Call cannot price VR_Gaming's layers.
    let table = table_backend_for(ScenarioKind::ArCall);
    let err = builder(ScenarioKind::VrGaming)
        .cost_backend(table)
        .build_workload();
    match err {
        Err(SimError::Cost(dream_cost::CostError::MissingEntry { .. })) => {}
        other => panic!("expected a typed MissingEntry, got {other:?}"),
    }
}
