//! detlint CLI.
//!
//! ```text
//! detlint [--root DIR] [--format text|json] [--out FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (every finding suppressed with a reason),
//! 1 unsuppressed findings, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: detlint [--root DIR] [--format text|json] [--out FILE] [--list-rules]\n\
     \n\
     Lints the workspace's deterministic crates for replay-invariant\n\
     violations. Exit 0 when clean, 1 on unsuppressed findings, 2 on\n\
     usage/IO errors."
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut out_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return fail_usage("--root needs a value"),
            },
            "--format" => match args.next() {
                Some(v) if v == "text" || v == "json" => format = v,
                _ => return fail_usage("--format must be `text` or `json`"),
            },
            "--out" => match args.next() {
                Some(v) => out_file = Some(PathBuf::from(v)),
                None => return fail_usage("--out needs a value"),
            },
            "--list-rules" => {
                print!("{}", detlint::report::list_rules());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail_usage(&format!("unknown argument `{other}`")),
        }
    }

    // When no root is given, find the workspace root by walking up to the
    // nearest directory containing a `crates/` tree (so the tool works
    // from the workspace root and from inside `tools/detlint` alike).
    let root = root.unwrap_or_else(|| {
        let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        loop {
            if cur.join("crates").is_dir() {
                break cur;
            }
            if !cur.pop() {
                break PathBuf::from(".");
            }
        }
    });

    let report = match detlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = if format == "json" {
        detlint::report::to_json(&report)
    } else {
        detlint::report::to_text(&report)
    };
    match &out_file {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("detlint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            // Keep the console summary even when the report goes to a file.
            eprint!("{}", detlint::report::to_text(&report));
        }
        None => print!("{rendered}"),
    }

    if report.unsuppressed().next().is_some() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}\n{}", usage());
    ExitCode::from(2)
}
