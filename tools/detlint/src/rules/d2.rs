//! D2 — float-fold discipline.
//!
//! Cached cost/to-go sums replay the *reference* fold bit-for-bit, which
//! only works if every float fold runs one canonical operation sequence:
//! a left-to-right fold seeded with `-0.0` (`<f64 as Sum>`'s identity).
//! `dream_sim::canonical_sum` is that sequence as a function; everything
//! else is an ad-hoc fold and gets flagged:
//!
//! * `.sum::<f64>()` / `.sum::<f32>()` turbofish sums;
//! * bare `.sum()` whose `let` ascription or enclosing fn return type is
//!   a float;
//! * `.fold(<float literal>, ...)`;
//! * manual accumulators: `let mut x = 0.0;` later fed by `x += ...`.
//!
//! A fold that *defines* a canonical sequence (the reference walk itself,
//! or an interleaved multi-accumulator fold that provably replays it) is
//! blessed in place with `// detlint: canonical-fold -- <reason>` on the
//! function; one-off justified folds carry `allow(float-fold)`.

use crate::lexer::TokKind;
use crate::rules::{Finding, RuleId};
use crate::scan::FileAnalysis;

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

pub fn run(a: &FileAnalysis, out: &mut Vec<Finding>) {
    let toks = a.toks();
    for i in 0..toks.len() {
        if a.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = toks[i].text.as_str();
        let dotted = i >= 1 && toks[i - 1].text == ".";
        if dotted && t == "sum" {
            if let Some(f) = check_sum(a, i) {
                out.push(f);
            }
            continue;
        }
        if dotted && t == "fold" && toks.get(i + 1).is_some_and(|t| t.text == "(") && {
            let mut j = i + 2;
            if toks.get(j).is_some_and(|t| t.text == "-") {
                j += 1;
            }
            toks.get(j).is_some_and(|t| t.kind == TokKind::FloatLit)
        } {
            out.push(Finding::new(
                RuleId::FloatFold,
                &a.name,
                toks[i].line,
                toks[i].col,
                "float-seeded `.fold(...)`; use dream_sim::canonical_sum or bless the site"
                    .to_string(),
                ".fold(float, ..)".to_string(),
            ));
            continue;
        }
    }
    manual_accumulators(a, out);
}

/// Classifies one `.sum` call site. Returns a finding when the fold is a
/// float fold outside any blessing.
fn check_sum(a: &FileAnalysis, i: usize) -> Option<Finding> {
    let toks = a.toks();
    let finding = |msg: &str| {
        Some(Finding::new(
            RuleId::FloatFold,
            &a.name,
            toks[i].line,
            toks[i].col,
            msg.to_string(),
            ".sum()".to_string(),
        ))
    };
    // Turbofish: `.sum::<T>()` — the type decides outright.
    if toks.get(i + 1).is_some_and(|t| t.text == ":")
        && toks.get(i + 2).is_some_and(|t| t.text == ":")
    {
        let mut j = i + 3;
        if toks.get(j).is_some_and(|t| t.text == "<") {
            j += 1;
        }
        let ty = toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
        return if ty == "f64" || ty == "f32" {
            finding("`.sum::<f64>()` is an ad-hoc float fold; use dream_sim::canonical_sum")
        } else {
            None
        };
    }
    // Bare `.sum()`: use the `let` ascription when the statement has one.
    if let Some(ty) = let_ascription(a, i) {
        if ty == "f64" || ty == "f32" {
            return finding("float `.sum()` (by `let` ascription); use dream_sim::canonical_sum");
        }
        if INT_TYPES.contains(&ty.as_str()) {
            return None;
        }
        // Non-primitive ascription: fall through to the fn return type.
    }
    // Otherwise: the enclosing fn's return type.
    let ret = a.enclosing_fn(i).map(|f| f.ret.clone()).unwrap_or_default();
    if ret.contains("f64") || ret.contains("f32") {
        return finding(
            "float `.sum()` (enclosing fn returns a float); use dream_sim::canonical_sum",
        );
    }
    None
}

/// The explicit type ascribed by the `let` statement containing token
/// `i`, if any: scans back to the statement boundary and extracts the
/// tokens between the pattern's `:` and the `=`.
fn let_ascription(a: &FileAnalysis, i: usize) -> Option<String> {
    let toks = a.toks();
    // Walk back to the nearest statement boundary.
    let mut j = i;
    let mut depth = 0i32;
    while j > 0 {
        let t = toks[j - 1].text.as_str();
        match t {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            // Any brace is a statement boundary for this purpose: a `}`
            // at depth 0 ends a preceding block, a `{` opens ours.
            "{" | "}" if depth == 0 => break,
            ";" if depth == 0 => break,
            _ => {}
        }
        j -= 1;
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    // Find the single `:` (not `::`) before the `=` sign.
    let mut k = j + 1;
    let mut colon = None;
    let mut eq = None;
    while k < i {
        match toks[k].text.as_str() {
            ":" => {
                if toks.get(k + 1).is_some_and(|t| t.text == ":")
                    || toks.get(k.wrapping_sub(1)).is_some_and(|t| t.text == ":")
                {
                    // path separator
                } else if colon.is_none() {
                    colon = Some(k);
                }
            }
            "=" if eq.is_none() && toks.get(k + 1).map(|t| t.text.as_str()) != Some("=") => {
                eq = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    let (c, e) = (colon?, eq?);
    if c >= e {
        return None;
    }
    let ty: Vec<&str> = toks[c + 1..e].iter().map(|t| t.text.as_str()).collect();
    Some(ty.join(" "))
}

/// `let mut x = <float literal>;` later fed by `x += ...` in the same fn.
fn manual_accumulators(a: &FileAnalysis, out: &mut Vec<Finding>) {
    let toks = a.toks();
    for f in &a.fns {
        let (lo, hi) = f.body;
        let mut i = lo;
        while i + 3 < hi {
            if a.in_test(i) {
                i += 1;
                continue;
            }
            if toks[i].text == "let" && toks[i + 1].text == "mut" {
                let name_idx = i + 2;
                let name = toks[name_idx].text.clone();
                // Skip an optional `: ty` ascription.
                let mut j = name_idx + 1;
                if toks.get(j).is_some_and(|t| t.text == ":") {
                    while j < hi && toks[j].text != "=" {
                        j += 1;
                    }
                }
                if toks.get(j).is_some_and(|t| t.text == "=") {
                    let mut v = j + 1;
                    if toks.get(v).is_some_and(|t| t.text == "-") {
                        v += 1;
                    }
                    let lit_init = toks.get(v).is_some_and(|t| t.kind == TokKind::FloatLit)
                        && toks.get(v + 1).is_some_and(|t| t.text == ";");
                    if lit_init {
                        // Any `name +=` later in the fn body?
                        let fed = (v + 2..hi).any(|k| {
                            toks[k].text == name
                                && toks.get(k + 1).is_some_and(|t| t.text == "+")
                                && toks.get(k + 2).is_some_and(|t| t.text == "=")
                        });
                        if fed {
                            out.push(Finding::new(
                                RuleId::FloatFold,
                                &a.name,
                                toks[i].line,
                                toks[i].col,
                                format!(
                                    "manual float-accumulator fold over `{name}`; use dream_sim::canonical_sum or bless the fn"
                                ),
                                format!("let mut {name} = ..; {name} += .."),
                            ));
                        }
                    }
                }
            }
            i += 1;
        }
    }
}
