//! D4 — fingerprint purity.
//!
//! `Metrics::fingerprint` is the replay oracle: two runs agree iff their
//! fingerprints agree. Any observable that is *excluded* from the
//! fingerprint (today: the sojourn-time series and its percentile
//! accessors) must therefore never feed a scheduling decision — a
//! decision keyed on an unfingerprinted value could diverge between runs
//! the oracle calls identical.
//!
//! The banned set is *derived*, not hard-coded: we parse the metrics
//! module, take every pub field of `ModelStats`/`Metrics` that the
//! `fingerprint` body never mentions, drop the scenario-pinned config
//! fields (`model_name`, `fps` — fixed per scenario before the run, so
//! they cannot diverge), and ban those fields plus any pub accessor
//! sharing their name stem. Decision crates are then scanned for member
//! accesses of banned names.

use crate::lexer::TokKind;
use crate::rules::{Finding, RuleId};
use crate::scan::FileAnalysis;

/// Fields excluded from the fingerprint that are still legal inputs to
/// decisions: pinned per scenario before the run, so they cannot diverge
/// between runs the fingerprint calls identical.
const SCENARIO_PINNED: &[&str] = &["model_name", "fps"];

const METRICS_STRUCTS: &[&str] = &["ModelStats", "Metrics"];

/// The banned-name set derived from the metrics module.
#[derive(Debug, Default)]
pub struct MetricsPolicy {
    /// Field and accessor names that may not appear as member accesses in
    /// decision code.
    pub banned: Vec<String>,
}

/// Derives the policy from the metrics module. `required` marks the
/// designated metrics file: structural drift (structs or `fingerprint`
/// missing) then produces a finding instead of silently disarming D4.
pub fn derive_policy(a: &FileAnalysis, required: bool, out: &mut Vec<Finding>) -> MetricsPolicy {
    let toks = a.toks();
    let mut fields: Vec<String> = Vec::new();
    let mut found_struct = false;
    for s in METRICS_STRUCTS {
        if let Some(fs) = struct_pub_fields(a, s) {
            found_struct = true;
            fields.extend(fs);
        }
    }
    let fingerprint = a.fns.iter().find(|f| f.name == "fingerprint");
    if required && (!found_struct || fingerprint.is_none()) {
        let what = if !found_struct {
            "struct ModelStats/Metrics"
        } else {
            "fn fingerprint"
        };
        out.push(Finding::new(
            RuleId::FingerprintPurity,
            &a.name,
            1,
            0,
            format!(
                "metrics module no longer declares `{what}`; update detlint's D4 anchor so fingerprint purity stays checked"
            ),
            what.to_string(),
        ));
        return MetricsPolicy::default();
    }
    let Some(f) = fingerprint else {
        return MetricsPolicy::default();
    };
    let (lo, hi) = f.body;
    let mentioned = |name: &str| (lo..=hi).any(|k| toks[k].text == name);
    let mut banned: Vec<String> = fields
        .into_iter()
        .filter(|f| !mentioned(f) && !SCENARIO_PINNED.contains(&f.as_str()))
        .collect();
    // Ban pub accessors sharing a banned field's name stem (the word
    // before the first `_`): `sojourn_ns` bans `sojourn_percentile_ms`.
    let stems: Vec<String> = banned
        .iter()
        .map(|f| f.split('_').next().unwrap_or(f).to_string())
        .collect();
    for f in &a.fns {
        if f.is_pub
            && stems
                .iter()
                .any(|s| f.name.starts_with(s.as_str()) && !banned.contains(&f.name))
        {
            banned.push(f.name.clone());
        }
    }
    banned.sort();
    banned.dedup();
    MetricsPolicy { banned }
}

/// Flags member accesses of banned names (`x.sojourn_ns`,
/// `m.sojourn_percentile_ms(...)`) in a decision-path file.
pub fn scan_decisions(a: &FileAnalysis, policy: &MetricsPolicy, out: &mut Vec<Finding>) {
    if policy.banned.is_empty() {
        return;
    }
    let toks = a.toks();
    for i in 1..toks.len() {
        if a.in_test(i) || toks[i].kind != TokKind::Ident || toks[i - 1].text != "." {
            continue;
        }
        let t = toks[i].text.as_str();
        if policy.banned.iter().any(|b| b == t) {
            out.push(Finding::new(
                RuleId::FingerprintPurity,
                &a.name,
                toks[i].line,
                toks[i].col,
                format!(
                    "`{t}` is excluded from Metrics::fingerprint and must not feed scheduling decisions"
                ),
                format!(".{t}"),
            ));
        }
    }
}

/// Pub field names of `struct <name> {{ ... }}`.
fn struct_pub_fields(a: &FileAnalysis, name: &str) -> Option<Vec<String>> {
    let toks = a.toks();
    let mut at = None;
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].text == "struct" && toks[i + 1].text == name && toks[i + 2].text == "{" {
            at = Some(i + 2);
            break;
        }
    }
    let open = at?;
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "{" | "(" | "[" | "<" => depth += 1,
            "}" | ")" | "]" | ">" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "pub" if depth == 1 => {
                let mut j = k + 1;
                // Skip a `pub(crate)`-style visibility group.
                if toks.get(j).is_some_and(|t| t.text == "(") {
                    let mut d = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "(" => d += 1,
                            ")" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 1).is_some_and(|t| t.text == ":")
                {
                    fields.push(toks[j].text.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    Some(fields)
}
