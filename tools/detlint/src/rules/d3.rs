//! D3 — event-rank exhaustiveness.
//!
//! Intra-instant event order is the replay contract's tiebreak of last
//! resort: `EventKind::rank` must give *every* variant an explicit rank,
//! and may not hide new variants behind a wildcard arm. This rule parses
//! the `EventKind` enum and the `rank` function from the event module and
//! cross-checks them; structural drift (enum or fn renamed/moved) is
//! itself a finding so the check can never silently stop checking.

use crate::lexer::TokKind;
use crate::rules::{Finding, RuleId};
use crate::scan::FileAnalysis;

/// Runs the check over `a`. `required` marks the designated event module:
/// when set, a missing `EventKind` enum or `rank` fn is config drift and
/// produces a finding instead of a silent pass.
pub fn run(a: &FileAnalysis, out: &mut Vec<Finding>, required: bool) {
    let toks = a.toks();
    let variants = enum_variants(a, "EventKind");
    let rank = a.fns.iter().find(|f| f.name == "rank");
    match (&variants, rank) {
        (Some((_, vs)), Some(f)) => {
            let (lo, hi) = f.body;
            for v in vs {
                let present = (lo..=hi).any(|k| toks[k].text == *v);
                if !present {
                    out.push(Finding::new(
                        RuleId::EventRank,
                        &a.name,
                        toks[f.kw_tok].line,
                        toks[f.kw_tok].col,
                        format!(
                            "`EventKind::{v}` has no explicit arm in the canonical rank function"
                        ),
                        format!("fn rank missing {v}"),
                    ));
                }
            }
            // Wildcard arms would let future variants slip through
            // unranked — ban them in `rank` specifically.
            for k in lo..hi {
                if toks[k].text == "_"
                    && toks[k].kind == TokKind::Ident
                    && toks.get(k + 1).is_some_and(|t| t.text == "=")
                    && toks.get(k + 2).is_some_and(|t| t.text == ">")
                {
                    out.push(Finding::new(
                        RuleId::EventRank,
                        &a.name,
                        toks[k].line,
                        toks[k].col,
                        "wildcard arm in the canonical rank function; every EventKind variant needs an explicit rank".to_string(),
                        "_ =>".to_string(),
                    ));
                }
            }
        }
        _ if required => {
            let what = match (&variants, rank) {
                (None, _) => "enum EventKind",
                (_, None) => "fn rank",
                _ => unreachable!(),
            };
            out.push(Finding::new(
                RuleId::EventRank,
                &a.name,
                1,
                0,
                format!(
                    "event module no longer declares `{what}`; update detlint's D3 anchor so rank exhaustiveness stays checked"
                ),
                what.to_string(),
            ));
        }
        _ => {}
    }
}

/// Extracts the variant names of `enum <name>`, with the token index of
/// the `enum` keyword. Skips `#[...]` attributes and nested field groups.
pub fn enum_variants(a: &FileAnalysis, name: &str) -> Option<(usize, Vec<String>)> {
    let toks = a.toks();
    let mut at = None;
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].text == "enum" && toks[i + 1].text == name && toks[i + 2].text == "{" {
            at = Some(i);
            break;
        }
    }
    let i = at?;
    let mut vs = Vec::new();
    let mut depth = 0i32;
    let mut k = i + 2;
    // True at positions where a variant name may start: right after the
    // enum's `{` or after a top-level `,`.
    let mut expecting = true;
    while k < toks.len() {
        let t = toks[k].text.as_str();
        match t {
            "{" | "(" | "[" => {
                depth += 1;
                if depth > 1 {
                    expecting = false;
                }
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => expecting = true,
            "#" if depth == 1 => {
                // Skip the attribute group `[...]`.
                if toks.get(k + 1).is_some_and(|t| t.text == "[") {
                    let mut d = 0i32;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            _ => {
                if depth == 1 && expecting && toks[k].kind == TokKind::Ident {
                    vs.push(toks[k].text.clone());
                    expecting = false;
                }
            }
        }
        k += 1;
    }
    Some((i, vs))
}
