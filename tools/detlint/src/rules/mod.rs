//! Rule registry and the [`Finding`] type.
//!
//! | family | rule | enforces |
//! |--------|------|----------|
//! | D1 | `unordered-map` | no `HashMap`/`HashSet` in deterministic crates |
//! | D1 | `wall-clock` | no `Instant::now` / `SystemTime` in deterministic crates |
//! | D1 | `ambient-rng` | no `thread_rng`/`rand` ambient randomness |
//! | D1 | `addr-order` | no thread-id / pointer-address ordering |
//! | D2 | `float-fold` | float folds go through blessed canonical-fold sites |
//! | D3 | `event-rank` | every `EventKind` variant has a canonical rank arm |
//! | D4 | `fingerprint-purity` | unfingerprinted metrics never feed decisions |
//! | meta | `bad-allow` | suppressions name known rules and carry a reason |
//! | meta | `unused-allow` | suppressions that match nothing are stale |

pub mod d1;
pub mod d2;
pub mod d3;
pub mod d4;

use crate::lexer::Tok;
use crate::scan::FnSpan;

/// Stable rule identifiers (the names used in `allow(...)` and the JSON
/// report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    UnorderedMap,
    WallClock,
    AmbientRng,
    AddrOrder,
    FloatFold,
    EventRank,
    FingerprintPurity,
    BadAllow,
    UnusedAllow,
}

impl RuleId {
    pub const ALL: [RuleId; 9] = [
        RuleId::UnorderedMap,
        RuleId::WallClock,
        RuleId::AmbientRng,
        RuleId::AddrOrder,
        RuleId::FloatFold,
        RuleId::EventRank,
        RuleId::FingerprintPurity,
        RuleId::BadAllow,
        RuleId::UnusedAllow,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedMap => "unordered-map",
            RuleId::WallClock => "wall-clock",
            RuleId::AmbientRng => "ambient-rng",
            RuleId::AddrOrder => "addr-order",
            RuleId::FloatFold => "float-fold",
            RuleId::EventRank => "event-rank",
            RuleId::FingerprintPurity => "fingerprint-purity",
            RuleId::BadAllow => "bad-allow",
            RuleId::UnusedAllow => "unused-allow",
        }
    }

    /// Rule family, for the report and catalog.
    pub fn family(self) -> &'static str {
        match self {
            RuleId::UnorderedMap | RuleId::WallClock | RuleId::AmbientRng | RuleId::AddrOrder => {
                "D1"
            }
            RuleId::FloatFold => "D2",
            RuleId::EventRank => "D3",
            RuleId::FingerprintPurity => "D4",
            RuleId::BadAllow | RuleId::UnusedAllow => "meta",
        }
    }

    pub fn describe(self) -> &'static str {
        match self {
            RuleId::UnorderedMap => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or an index-keyed Vec"
            }
            RuleId::WallClock => {
                "Instant/SystemTime reads tie behaviour to wall-clock time and break bit-identical replay"
            }
            RuleId::AmbientRng => {
                "ambient randomness is not seed-deterministic; use dream_sim::DeterministicCoin"
            }
            RuleId::AddrOrder => {
                "thread ids and pointer addresses vary across runs; never order or key by them"
            }
            RuleId::FloatFold => {
                "ad-hoc float fold; route it through dream_sim::canonical_sum or bless the site with `detlint: canonical-fold`"
            }
            RuleId::EventRank => {
                "every Event variant needs an explicit arm in the canonical rank function (no wildcard)"
            }
            RuleId::FingerprintPurity => {
                "fields excluded from Metrics::fingerprint must not feed back into scheduling decisions"
            }
            RuleId::BadAllow => "detlint directives must name known rules and carry a `-- reason`",
            RuleId::UnusedAllow => "stale suppression: the allow matched no finding",
        }
    }

    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Meta rules cannot themselves be suppressed.
    pub fn suppressible(self) -> bool {
        !matches!(self, RuleId::BadAllow | RuleId::UnusedAllow)
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// The offending token(s) or directive text, for the report.
    pub snippet: String,
    pub suppressed: bool,
    /// The allow reason, when suppressed.
    pub reason: Option<String>,
}

impl Finding {
    pub fn new(
        rule: RuleId,
        file: &str,
        line: u32,
        col: u32,
        message: String,
        snippet: String,
    ) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col,
            message,
            snippet,
            suppressed: false,
            reason: None,
        }
    }

    /// Whether this finding's line falls inside `span`'s body (used for
    /// fn-level `canonical-fold` blessing).
    pub fn line_within(&self, toks: &[Tok], span: &FnSpan) -> bool {
        let start = toks[span.body.0].line;
        let end = toks[span.body.1].line;
        self.line >= start && self.line <= end
    }
}
