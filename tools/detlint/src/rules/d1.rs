//! D1 — banned nondeterminism sources in the deterministic crates.
//!
//! Everything here is a *source* of cross-run variation: unordered
//! containers, wall clocks, ambient RNGs, and thread/address identity.
//! The simulation's replay contract (live == batch, cached == reference,
//! N threads == 1 thread) only holds if none of them can reach the
//! scheduling path.

use crate::lexer::TokKind;
use crate::rules::{Finding, RuleId};
use crate::scan::FileAnalysis;

const UNORDERED: &[&str] = &["HashMap", "HashSet", "hash_map", "hash_set"];
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "getrandom",
    "from_entropy",
];

pub fn run(a: &FileAnalysis, out: &mut Vec<Finding>) {
    let toks = a.toks();
    let mut push = |idx: usize, rule: RuleId, msg: String| {
        out.push(Finding::new(
            rule,
            &a.name,
            toks[idx].line,
            toks[idx].col,
            msg,
            toks[idx].text.clone(),
        ));
    };
    for i in 0..toks.len() {
        if a.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = toks[i].text.as_str();
        let is_path_sep = |j: usize| {
            toks.get(j).is_some_and(|t| t.text == ":")
                && toks.get(j + 1).is_some_and(|t| t.text == ":")
        };

        if UNORDERED.contains(&t) {
            push(
                i,
                RuleId::UnorderedMap,
                format!("`{t}` iterates in nondeterministic order; use BTreeMap/BTreeSet or an index-keyed Vec"),
            );
            continue;
        }
        if t == "Instant" && is_path_sep(i + 1) && toks.get(i + 3).is_some_and(|t| t.text == "now")
        {
            push(
                i,
                RuleId::WallClock,
                "`Instant::now` reads the wall clock; simulated time must come from SimTime".into(),
            );
            continue;
        }
        if t == "SystemTime" || t == "UNIX_EPOCH" {
            push(
                i,
                RuleId::WallClock,
                format!("`{t}` reads the wall clock; simulated time must come from SimTime"),
            );
            continue;
        }
        if RNG_IDENTS.contains(&t) || (t == "rand" && is_path_sep(i + 1)) {
            push(
                i,
                RuleId::AmbientRng,
                format!("`{t}` draws ambient randomness; use the seed-keyed DeterministicCoin"),
            );
            continue;
        }
        if t == "ThreadId"
            || (t == "thread"
                && is_path_sep(i + 1)
                && toks.get(i + 3).is_some_and(|t| t.text == "current"))
        {
            push(
                i,
                RuleId::AddrOrder,
                "thread identity varies across runs and schedulers; never key or order by it"
                    .into(),
            );
            continue;
        }
        // `.as_ptr() as usize` — pointer-address ordering.
        if t == "as_ptr"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 2).is_some_and(|t| t.text == ")")
            && toks.get(i + 3).is_some_and(|t| t.text == "as")
            && toks.get(i + 4).is_some_and(|t| t.text == "usize")
        {
            push(
                i,
                RuleId::AddrOrder,
                "pointer address cast to usize; allocation addresses vary across runs".into(),
            );
            continue;
        }
        // `as *const T as usize` / `as *mut T as usize`.
        if t == "as"
            && toks.get(i + 1).is_some_and(|t| t.text == "*")
            && toks
                .get(i + 2)
                .is_some_and(|t| t.text == "const" || t.text == "mut")
        {
            // Look a short distance ahead for `as usize`.
            for j in i + 3..(i + 8).min(toks.len().saturating_sub(1)) {
                if toks[j].text == "as" && toks.get(j + 1).is_some_and(|t| t.text == "usize") {
                    push(
                        i,
                        RuleId::AddrOrder,
                        "pointer address cast to usize; allocation addresses vary across runs"
                            .into(),
                    );
                    break;
                }
            }
        }
    }
}
