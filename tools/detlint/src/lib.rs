//! detlint — a workspace determinism lint.
//!
//! The replay contracts this repo depends on (live == batch replay,
//! cached sums == reference folds, N worker threads == 1 thread) are
//! invariants of the *code shape*, not just the tests: a single
//! `HashMap` iteration or ad-hoc float fold on the decision path can
//! break bit-identical fingerprints in ways no fixed test seed catches.
//! detlint turns those prose invariants into machine-checkable rules:
//!
//! * **D1** banned nondeterminism sources (`unordered-map`,
//!   `wall-clock`, `ambient-rng`, `addr-order`);
//! * **D2** float-fold discipline (`float-fold`);
//! * **D3** event-rank exhaustiveness (`event-rank`);
//! * **D4** fingerprint purity (`fingerprint-purity`).
//!
//! Suppression is scoped and justified: `// detlint: allow(<rule>) --
//! <reason>` on (or directly above) the offending line, or
//! `// detlint: canonical-fold -- <reason>` above a fn that *defines* a
//! reference fold. Directives without a reason, naming unknown rules, or
//! matching nothing are themselves findings (`bad-allow`,
//! `unused-allow`) and cannot be suppressed.
//!
//! The tool is dependency-free by design (hand-rolled lexer, hand-rolled
//! JSON) so it runs in the offline container and adds nothing to the
//! workspace's build graph.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{d1, d2, d3, d4, Finding};
use scan::FileAnalysis;

/// Crate source trees under the determinism contract (D1/D2 scope).
pub const DETERMINISTIC_SRC_DIRS: &[&str] = &[
    "crates/baselines/src",
    "crates/core/src",
    "crates/cost/src",
    "crates/models/src",
    "crates/sim/src",
    "crates/trace/src",
];

/// Source trees whose code makes scheduling decisions (D4 scope).
pub const DECISION_DIRS: &[&str] = &["crates/baselines/src", "crates/core/src"];

/// The module declaring `EventKind` and its canonical `rank` (D3 anchor).
pub const EVENT_FILE: &str = "crates/sim/src/event.rs";

/// The module declaring `Metrics` and `fingerprint` (D4 anchor).
pub const METRICS_FILE: &str = "crates/sim/src/metrics.rs";

/// The complete result of one lint run.
pub struct LintReport {
    pub root: String,
    /// All findings (suppressed and not), sorted by (file, line, col).
    pub findings: Vec<Finding>,
}

impl LintReport {
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }
}

/// Lints the workspace rooted at `root`. IO errors (unreadable tree)
/// surface as `Err`; an anchored file going missing is a *finding*, not
/// an error, so config drift cannot silently disarm a rule.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    for dir in DETERMINISTIC_SRC_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            collect_rs(&abs, &mut files, root)?;
        }
    }
    // Deterministic order regardless of directory-entry order.
    files.sort();

    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(rel, abs)| {
            let src = fs::read_to_string(abs).unwrap_or_default();
            FileAnalysis::new(rel, &src)
        })
        .collect();

    let mut findings = Vec::new();

    // Derive the D4 policy up front; its drift findings are merged into
    // the metrics file's batch below so suppression still applies.
    let metrics = analyses.iter().find(|a| a.name == METRICS_FILE);
    let mut policy_findings = Vec::new();
    let policy = match metrics {
        Some(a) => d4::derive_policy(a, true, &mut policy_findings),
        None => {
            findings.push(Finding::new(
                rules::RuleId::FingerprintPurity,
                METRICS_FILE,
                1,
                0,
                "metrics module not found; update detlint's D4 anchor so fingerprint purity stays checked".to_string(),
                "missing file".to_string(),
            ));
            d4::MetricsPolicy::default()
        }
    };
    if !analyses.iter().any(|a| a.name == EVENT_FILE) {
        findings.push(Finding::new(
            rules::RuleId::EventRank,
            EVENT_FILE,
            1,
            0,
            "event module not found; update detlint's D3 anchor so rank exhaustiveness stays checked".to_string(),
            "missing file".to_string(),
        ));
    }

    for a in &analyses {
        // Out-of-line test modules: the `#[cfg(test)] mod tests;` item in
        // the parent file is attribute-skipped, so skip the file here.
        if a.name.ends_with("/tests.rs") {
            continue;
        }
        let mut fs = Vec::new();
        d1::run(a, &mut fs);
        d2::run(a, &mut fs);
        if a.name == EVENT_FILE {
            d3::run(a, &mut fs, true);
        }
        if a.name == METRICS_FILE {
            fs.append(&mut policy_findings);
        }
        if DECISION_DIRS.iter().any(|d| a.name.starts_with(d)) {
            d4::scan_decisions(a, &policy, &mut fs);
        }
        a.apply_suppression(&mut fs);
        findings.extend(fs);
    }

    findings.sort_by(|x, y| {
        (x.file.as_str(), x.line, x.col, x.rule).cmp(&(y.file.as_str(), y.line, y.col, y.rule))
    });
    Ok(LintReport {
        root: root.display().to_string(),
        findings,
    })
}

/// Lints a single source string — the fixture entry point. Runs D1/D2
/// unconditionally, D3 when the source declares both `EventKind` and
/// `rank`, and D4 self-referentially (policy derived from and applied to
/// the same source), then suppression.
pub fn lint_source(name: &str, src: &str) -> Vec<Finding> {
    let a = FileAnalysis::new(name, src);
    let mut fs = Vec::new();
    d1::run(&a, &mut fs);
    d2::run(&a, &mut fs);
    d3::run(&a, &mut fs, false);
    let policy = d4::derive_policy(&a, false, &mut fs);
    d4::scan_decisions(&a, &policy, &mut fs);
    a.apply_suppression(&mut fs);
    fs.sort_by(|x, y| {
        (x.file.as_str(), x.line, x.col, x.rule).cmp(&(y.file.as_str(), y.line, y.col, y.rule))
    });
    fs
}

fn collect_rs(dir: &Path, out: &mut Vec<(String, PathBuf)>, root: &Path) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out, root)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}
