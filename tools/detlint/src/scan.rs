//! Per-file analysis shared by every rule: token stream, `#[cfg(test)]` /
//! `#[test]` span skipping, function spans (for enclosing-return-type
//! queries and `canonical-fold` blessing), and the suppression-directive
//! parser.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::rules::{Finding, RuleId};

/// A parsed `// detlint: ...` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    pub kind: DirectiveKind,
    pub reason: String,
    /// Line of the directive comment itself.
    pub line: u32,
    /// Line the directive applies to (own line for trailing comments, the
    /// next code line for standalone ones).
    pub anchor_line: u32,
    /// Index of the first token at/after the anchor (for fn blessing).
    pub anchor_tok: usize,
    /// Whether any finding was suppressed by this directive.
    pub used: std::cell::Cell<bool>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `detlint: allow(rule, ...) -- reason`
    Allow(Vec<RuleId>),
    /// `detlint: canonical-fold -- reason` — blesses the next `fn` for
    /// the float-fold rule (the function *is* a reference fold site).
    CanonicalFold,
}

/// One `fn` item's extent.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw_tok: usize,
    /// Return-type text (token texts joined), empty when `()`.
    pub ret: String,
    /// Token index range of the body `{ ... }`, inclusive of braces.
    pub body: (usize, usize),
    /// Whether the fn is declared `pub` (directly preceding modifier).
    pub is_pub: bool,
}

/// Everything the rules need to know about one file.
pub struct FileAnalysis {
    pub name: String,
    pub lexed: Lexed,
    /// Sorted, disjoint token-index ranges belonging to test code.
    pub test_spans: Vec<(usize, usize)>,
    pub fns: Vec<FnSpan>,
    pub directives: Vec<Directive>,
    /// Malformed directives discovered during parsing.
    pub directive_findings: Vec<Finding>,
}

impl FileAnalysis {
    pub fn new(name: &str, src: &str) -> Self {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.toks);
        let fns = find_fns(&lexed.toks);
        let mut analysis = FileAnalysis {
            name: name.to_string(),
            lexed,
            test_spans,
            fns,
            directives: Vec::new(),
            directive_findings: Vec::new(),
        };
        analysis.parse_directives();
        analysis
    }

    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    /// Whether token `idx` sits inside `#[cfg(test)]` / `#[test]` code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Innermost fn span whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| idx >= f.body.0 && idx <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// The first fn whose `fn` keyword is at/after token `anchor_tok`
    /// (used to resolve which fn a `canonical-fold` directive blesses).
    pub fn fn_at_or_after(&self, anchor_tok: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.kw_tok >= anchor_tok)
            .min_by_key(|f| f.kw_tok)
    }

    fn parse_directives(&mut self) {
        let comments = self.lexed.comments.clone();
        for c in &comments {
            let Some(pos) = c.text.find("detlint:") else {
                continue;
            };
            let body = c.text[pos + "detlint:".len()..].trim();
            let anchor_line = if c.trailing {
                c.line
            } else {
                // The next code line after the comment block.
                self.lexed
                    .toks
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > c.end_line)
                    .unwrap_or(c.end_line)
            };
            let anchor_tok = self
                .lexed
                .toks
                .iter()
                .position(|t| t.line >= anchor_line)
                .unwrap_or(self.lexed.toks.len());
            let mut bad = |msg: String| {
                self.directive_findings.push(Finding::new(
                    RuleId::BadAllow,
                    &self.name,
                    c.line,
                    0,
                    msg,
                    body.to_string(),
                ));
            };
            // Split `<head> -- <reason>`.
            let (head, reason) = match body.split_once("--") {
                Some((h, r)) => (h.trim(), r.trim()),
                None => (body, ""),
            };
            let kind = if let Some(rest) = head.strip_prefix("allow") {
                let rest = rest.trim();
                let inner = rest
                    .strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .map(str::trim);
                let Some(inner) = inner else {
                    bad("malformed allow: expected `allow(<rule>, ...) -- <reason>`".into());
                    continue;
                };
                let mut rules = Vec::new();
                let mut ok = true;
                for raw in inner.split(',') {
                    let raw = raw.trim();
                    match RuleId::parse(raw) {
                        Some(r) if r.suppressible() => rules.push(r),
                        Some(r) => {
                            bad(format!("rule `{}` cannot be suppressed", r.name()));
                            ok = false;
                        }
                        None => {
                            bad(format!("unknown rule `{raw}` in allow"));
                            ok = false;
                        }
                    }
                }
                if !ok || rules.is_empty() {
                    if rules.is_empty() && ok {
                        bad("allow names no rules".into());
                    }
                    continue;
                }
                DirectiveKind::Allow(rules)
            } else if head == "canonical-fold" {
                DirectiveKind::CanonicalFold
            } else {
                bad(format!(
                    "unknown directive `{head}` (expected `allow(...)` or `canonical-fold`)"
                ));
                continue;
            };
            if reason.is_empty() {
                bad("suppression without a reason: append ` -- <why this is sound>`".into());
                continue;
            }
            self.directives.push(Directive {
                kind,
                reason: reason.to_string(),
                line: c.line,
                anchor_line,
                anchor_tok,
                used: std::cell::Cell::new(false),
            });
        }
    }

    /// Applies suppression to `findings` in place, then appends
    /// `unused-allow` findings for directives that matched nothing.
    pub fn apply_suppression(&self, findings: &mut Vec<Finding>) {
        for f in findings.iter_mut() {
            if f.rule == RuleId::BadAllow || f.rule == RuleId::UnusedAllow {
                continue;
            }
            for d in &self.directives {
                let hit = match &d.kind {
                    DirectiveKind::Allow(rules) => {
                        rules.contains(&f.rule) && d.anchor_line == f.line
                    }
                    DirectiveKind::CanonicalFold => {
                        f.rule == RuleId::FloatFold
                            && self
                                .fn_at_or_after(d.anchor_tok)
                                .is_some_and(|span| f.line_within(self.toks(), span))
                    }
                };
                if hit {
                    f.suppressed = true;
                    f.reason = Some(d.reason.clone());
                    d.used.set(true);
                    break;
                }
            }
        }
        findings.extend(self.directive_findings.iter().cloned());
        for d in &self.directives {
            if !d.used.get() {
                findings.push(Finding::new(
                    RuleId::UnusedAllow,
                    &self.name,
                    d.line,
                    0,
                    "suppression matched no finding; delete it or fix the anchor".to_string(),
                    d.reason.clone(),
                ));
            }
        }
    }
}

/// Token-index ranges covered by `#[cfg(test)]` or `#[test]` items.
fn find_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test_attr = false;
            let mut saw_cfg = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" => saw_cfg = true,
                    "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]` all skip.
            let _ = saw_cfg;
            if is_test_attr {
                // Skip to the end of the annotated item: the matching `}`
                // of its first brace, or the first `;` before any brace
                // (e.g. `#[cfg(test)] mod tests;` — the out-of-line file
                // is handled by the tests.rs filename rule).
                let mut k = j;
                let mut body_depth = 0i32;
                let mut end = None;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => body_depth += 1,
                        "}" => {
                            body_depth -= 1;
                            if body_depth == 0 {
                                end = Some(k);
                                break;
                            }
                        }
                        ";" if body_depth == 0 => {
                            end = Some(k);
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let end = end.unwrap_or(toks.len() - 1);
                spans.push((i, end));
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// All `fn` items (including nested ones), with name, return type, and
/// body token range.
fn find_fns(toks: &[Tok]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && i + 1 < toks.len() {
            let kw_tok = i;
            let name = toks[i + 1].text.clone();
            let is_pub = i >= 1 && toks[i - 1].text == "pub"
                || (i >= 2 && toks[i - 2].text == "pub" && toks[i - 1].text == ")")
                || (i >= 4 && toks[i - 4].text == "pub" && toks[i - 3].text == "(");
            // Scan the signature to the body `{` or a terminating `;`,
            // capturing the return type after `->`. Parenthesis depth
            // guards against `Fn() -> T` bounds inside argument lists.
            let mut j = i + 2;
            let mut ret = String::new();
            let mut in_ret = false;
            let mut paren = 0i32;
            let mut angle = 0i32;
            let mut body_start = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "<" => angle += 1,
                    ">" if angle > 0 => angle -= 1,
                    "-" if paren == 0
                        && angle == 0
                        && j + 1 < toks.len()
                        && toks[j + 1].text == ">" =>
                    {
                        in_ret = true;
                        j += 2;
                        continue;
                    }
                    "{" => {
                        body_start = Some(j);
                        break;
                    }
                    ";" if paren == 0 => break,
                    "where" if paren == 0 => in_ret = false,
                    _ => {}
                }
                if in_ret {
                    if !ret.is_empty() {
                        ret.push(' ');
                    }
                    ret.push_str(&toks[j].text);
                }
                j += 1;
            }
            if let Some(start) = body_start {
                let mut depth = 0i32;
                let mut k = start;
                let mut end = toks.len() - 1;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                end = k;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                fns.push(FnSpan {
                    name,
                    kw_tok,
                    ret,
                    body: (start, end),
                    is_pub,
                });
            }
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mods_are_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn inner() { bad(); } }\n";
        let a = FileAnalysis::new("x.rs", src);
        let bad_idx = a.toks().iter().position(|t| t.text == "bad").unwrap();
        assert!(a.in_test(bad_idx));
        let live_idx = a.toks().iter().position(|t| t.text == "live").unwrap();
        assert!(!a.in_test(live_idx));
    }

    #[test]
    fn fn_return_types_are_captured() {
        let src = "pub fn a() -> f64 { 0.0 }\nfn b(x: u32) -> Option<f64> { None }\nfn c() {}\n";
        let a = FileAnalysis::new("x.rs", src);
        assert_eq!(a.fns.len(), 3);
        assert_eq!(a.fns[0].ret, "f64");
        assert!(a.fns[0].is_pub);
        assert!(a.fns[1].ret.contains("f64"));
        assert_eq!(a.fns[2].ret, "");
    }

    #[test]
    fn directive_without_reason_is_bad_allow() {
        let src = "// detlint: allow(wall-clock)\nfn x() {}\n";
        let a = FileAnalysis::new("x.rs", src);
        assert!(a.directives.is_empty());
        assert_eq!(a.directive_findings.len(), 1);
        assert_eq!(a.directive_findings[0].rule, RuleId::BadAllow);
    }

    #[test]
    fn unknown_rule_is_bad_allow() {
        let src = "// detlint: allow(no-such-rule) -- because\nfn x() {}\n";
        let a = FileAnalysis::new("x.rs", src);
        assert!(a.directives.is_empty());
        assert_eq!(a.directive_findings.len(), 1);
    }
}
