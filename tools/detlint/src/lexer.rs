//! A minimal hand-rolled Rust lexer: just enough to token-scan workspace
//! sources without being fooled by strings, char literals, lifetimes, or
//! comments. Comments are kept (separately) because suppression
//! directives live in them.
//!
//! This is deliberately *not* a full Rust lexer — no proc-macro fidelity,
//! no shebang/frontmatter handling — but it must never misclassify a
//! string or comment as code (that is what turns a lint into noise).

/// What a code token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// Integer literal (incl. suffixed, hex, octal, binary).
    IntLit,
    /// Float literal (has a fractional part, exponent, or f32/f64 suffix).
    FloatLit,
    /// String/char/byte/lifetime literal (contents are opaque).
    OtherLit,
}

/// One code token with its source position (1-based line, 0-based column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line or block), with the text after the comment marker.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// Whether a code token precedes the comment on its start line
    /// (a trailing comment anchors to its own line, a standalone one to
    /// the next code line).
    pub trailing: bool,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenises `src`. Never panics on malformed input (fixtures are allowed
/// to be invalid Rust); unterminated literals simply run to end of file.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 0;
    let mut last_tok_line: u32 = 0;

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
                col = 0;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);
        if c == '\n' || c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i + 2;
            while i < b.len() && b[i] != '\n' {
                bump!();
            }
            let text: String = b[start..i].iter().collect();
            out.comments.push(Comment {
                text,
                line: tline,
                end_line: tline,
                trailing: last_tok_line == tline,
            });
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i + 2;
            bump!();
            bump!();
            let mut depth = 1u32;
            let text_start = start;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            let text_end = i.saturating_sub(2).max(text_start);
            let text: String = b[text_start..text_end].iter().collect();
            out.comments.push(Comment {
                text,
                line: tline,
                end_line: line,
                trailing: last_tok_line == tline,
            });
            continue;
        }
        // Raw / byte strings: r"", r#""#, br"", b"".
        if (c == 'r' || c == 'b') && i + 1 < b.len() {
            let mut j = i;
            let mut is_raw = false;
            if b[j] == 'b' && j + 1 < b.len() && (b[j + 1] == 'r' || b[j + 1] == '"') {
                j += 1;
                is_raw = b[j] == 'r';
            } else if b[j] == 'r' && j + 1 < b.len() && (b[j + 1] == '"' || b[j + 1] == '#') {
                is_raw = true;
            }
            let raw_candidate = is_raw || (b[i] == 'b' && b[j] == '"');
            if raw_candidate {
                if is_raw {
                    j += 1; // past the 'r'
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    // Commit: consume up to the closing quote + hashes.
                    while i <= j {
                        bump!();
                    }
                    'raw: while i < b.len() {
                        if b[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0usize;
                            while k < b.len() && b[k] == '#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                while i < k {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        if !is_raw && b[i] == '\\' && i + 1 < b.len() {
                            bump!();
                        }
                        bump!();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::OtherLit,
                        text: String::new(),
                        line: tline,
                        col: tcol,
                    });
                    last_tok_line = line;
                    continue;
                }
            }
            // else: fall through, treat as ident.
        }
        if c == '"' {
            bump!();
            while i < b.len() && b[i] != '"' {
                if b[i] == '\\' && i + 1 < b.len() {
                    bump!();
                }
                bump!();
            }
            if i < b.len() {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::OtherLit,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            last_tok_line = line;
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
            let is_lifetime = i + 1 < b.len()
                && is_ident_start(b[i + 1])
                && !(i + 2 < b.len() && b[i + 2] == '\'');
            bump!();
            if is_lifetime {
                while i < b.len() && is_ident_continue(b[i]) {
                    bump!();
                }
            } else {
                while i < b.len() && b[i] != '\'' {
                    if b[i] == '\\' && i + 1 < b.len() {
                        bump!();
                    }
                    bump!();
                }
                if i < b.len() {
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::OtherLit,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            last_tok_line = line;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            last_tok_line = tline;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < b.len() && matches!(b[i + 1], 'x' | 'o' | 'b') {
                bump!();
                bump!();
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    bump!();
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == '_') {
                    bump!();
                }
                // Fractional part: `.` followed by a digit (so `0..10`
                // and `1.max(2)` stay integers + method calls).
                if i + 1 < b.len() && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    bump!();
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == '_') {
                        bump!();
                    }
                }
                // Exponent.
                if i < b.len()
                    && (b[i] == 'e' || b[i] == 'E')
                    && i + 1 < b.len()
                    && (b[i + 1].is_ascii_digit()
                        || ((b[i + 1] == '+' || b[i + 1] == '-')
                            && i + 2 < b.len()
                            && b[i + 2].is_ascii_digit()))
                {
                    is_float = true;
                    bump!();
                    if b[i] == '+' || b[i] == '-' {
                        bump!();
                    }
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == '_') {
                        bump!();
                    }
                }
                // Type suffix (`0.0f64`, `1u32`).
                let suffix_start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    bump!();
                }
                let suffix: String = b[suffix_start..i].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
            }
            out.toks.push(Tok {
                kind: if is_float {
                    TokKind::FloatLit
                } else {
                    TokKind::IntLit
                },
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            last_tok_line = tline;
            continue;
        }
        // Single punctuation character.
        bump!();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
        last_tok_line = tline;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in a block */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let c = 'H';
            fn real(h: HashMap<u32, u32>) {}
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
        assert!(!ids.iter().any(|s| s == "Instant" || s == "SystemTime"));
    }

    #[test]
    fn comments_are_captured_with_trailing_flag() {
        let src = "let x = 1; // detlint: allow(wall-clock) -- why\n// standalone\nlet y = 2;\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert!(l.comments[0].text.contains("detlint"));
    }

    #[test]
    fn float_vs_int_classification() {
        let l = lex("let a = -0.0f64; let b = 0.88; let c = 1e9; let d = 42; let r = 0..10;");
        let floats: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::FloatLit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["0.0f64", "0.88", "1e9"]);
        let ints: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::IntLit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ints, vec!["42", "0", "10"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        // No stray unterminated-literal swallowing: `str`, `x` both survive.
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.iter().filter(|s| *s == "str").count() >= 2);
        assert!(l.toks.iter().any(|t| t.text == "{"));
    }
}
