//! Report rendering: human text and a machine-readable JSON document.
//!
//! The JSON schema (version 1):
//!
//! ```json
//! {
//!   "detlint_version": 1,
//!   "root": "<workspace root>",
//!   "rules": [ {"rule": "...", "family": "D1", "description": "..."} ],
//!   "findings": [
//!     {"rule": "...", "family": "...", "file": "...", "line": 1,
//!      "col": 0, "message": "...", "snippet": "...",
//!      "suppressed": false, "reason": null}
//!   ],
//!   "summary": {"total": 0, "suppressed": 0, "unsuppressed": 0}
//! }
//! ```
//!
//! Hand-rolled writer (no serde in this dependency-free tool); key order
//! and finding order are deterministic, so the artifact diffs cleanly
//! across CI runs.

use crate::rules::RuleId;
use crate::LintReport;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub fn to_json(r: &LintReport) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"detlint_version\": 1,\n");
    s.push_str(&format!("  \"root\": \"{}\",\n", esc(&r.root)));
    s.push_str("  \"rules\": [\n");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"family\": \"{}\", \"description\": \"{}\"}}{}\n",
            rule.name(),
            rule.family(),
            esc(rule.describe()),
            if i + 1 < RuleId::ALL.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in r.findings.iter().enumerate() {
        let reason = match &f.reason {
            Some(why) => format!("\"{}\"", esc(why)),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"family\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"snippet\": \"{}\", \"suppressed\": {}, \"reason\": {}}}{}\n",
            f.rule.name(),
            f.rule.family(),
            esc(&f.file),
            f.line,
            f.col,
            esc(&f.message),
            esc(&f.snippet),
            f.suppressed,
            reason,
            if i + 1 < r.findings.len() { "," } else { "" }
        ));
    }
    let total = r.findings.len();
    let suppressed = r.findings.iter().filter(|f| f.suppressed).count();
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"summary\": {{\"total\": {}, \"suppressed\": {}, \"unsuppressed\": {}}}\n}}\n",
        total,
        suppressed,
        total - suppressed
    ));
    s
}

pub fn to_text(r: &LintReport) -> String {
    let mut s = String::new();
    for f in &r.findings {
        if f.suppressed {
            s.push_str(&format!(
                "allowed  {}:{}:{} [{}] {} (reason: {})\n",
                f.file,
                f.line,
                f.col,
                f.rule.name(),
                f.message,
                f.reason.as_deref().unwrap_or("")
            ));
        } else {
            s.push_str(&format!(
                "FINDING  {}:{}:{} [{}/{}] {}\n",
                f.file,
                f.line,
                f.col,
                f.rule.family(),
                f.rule.name(),
                f.message
            ));
        }
    }
    let total = r.findings.len();
    let bad = r.unsuppressed().count();
    s.push_str(&format!(
        "detlint: {} finding(s), {} suppressed, {} unsuppressed\n",
        total,
        total - bad,
        bad
    ));
    s
}

pub fn list_rules() -> String {
    let mut s = String::from("rule                 family  description\n");
    for rule in RuleId::ALL {
        s.push_str(&format!(
            "{:<20} {:<7} {}\n",
            rule.name(),
            rule.family(),
            rule.describe()
        ));
    }
    s
}
