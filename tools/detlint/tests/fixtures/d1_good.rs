// D1 fixture: deterministic equivalents, plus every exemption context —
// strings, comments, and test code must not trip the rule.
use std::collections::BTreeMap;

fn ordered(m: &BTreeMap<u32, u32>) -> u32 {
    // HashMap mentioned in a comment is fine.
    let s = "HashMap::new() in a string is fine";
    let _ = s;
    m.values().copied().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        let t = std::time::Instant::now();
        let _ = (m, t);
    }
}
