// D2 fixture: one of each ad-hoc float-fold shape.

fn turbofish(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn ascribed(xs: &[f64]) {
    let total: f64 = xs.iter().copied().sum();
    let _ = total;
}

fn by_return_type(xs: &[f64]) -> f64 {
    xs.iter().copied().sum()
}

fn seeded_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b)
}

fn manual(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}
