// D2 fixture: folds that must NOT trip — integer sums, non-sum
// accumulators, blessed reference folds, and justified allows.

fn int_sum(xs: &[u64]) -> u64 {
    xs.iter().sum()
}

fn int_ascribed(xs: &[u64]) -> f64 {
    let total: u64 = xs.iter().sum();
    total as f64
}

// detlint: canonical-fold -- fixture: this fn IS a reference fold
fn blessed(xs: &[f64]) -> f64 {
    let mut acc = -0.0f64;
    for x in xs {
        acc += x;
    }
    acc
}

fn allowed(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() // detlint: allow(float-fold) -- fixture: justified one-off
}

fn non_literal_init(pair: (f64, f64)) -> f64 {
    let (mut a, b) = pair;
    a += b;
    a
}
