// D4 fixture: `sojourn_ns` is a pub field the fingerprint never mixes,
// so the scheduling decision below must not read it (nor the pub
// accessor sharing its stem).
pub struct Metrics {
    pub completed: u64,
    pub sojourn_ns: Vec<u64>,
}

impl Metrics {
    pub fn fingerprint(&self) -> u64 {
        self.completed
    }

    pub fn sojourn_percentile_ms(&self, q: f64) -> f64 {
        let _ = q;
        0.0
    }
}

fn decide(m: &Metrics) -> bool {
    m.sojourn_ns.len() > 4 && m.sojourn_percentile_ms(0.99) > 1.0
}
