// D3 fixture: a wildcard arm hides future variants from the rank order.
pub enum EventKind {
    FrameArrival { frame: u64 },
    End,
}

impl EventKind {
    fn rank(&self) -> u8 {
        match self {
            EventKind::FrameArrival { .. } => 3,
            EventKind::End => 1,
            _ => 0,
        }
    }
}
