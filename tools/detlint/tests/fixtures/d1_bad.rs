// D1 fixture: every banned nondeterminism source, one per line group.
use std::collections::HashMap;

fn clock() -> u64 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    0
}

fn randomness() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn identity(xs: &[u32]) -> usize {
    let tid = std::thread::current().id();
    xs.as_ptr() as usize
}
