// D3 fixture: every variant explicitly ranked, no wildcard.
pub enum EventKind {
    FrameArrival { frame: u64 },
    LayerDone { task: u64 },
    PhaseStart { phase: usize },
    End,
}

impl EventKind {
    fn rank(&self) -> u8 {
        match self {
            EventKind::PhaseStart { .. } => 0,
            EventKind::End => 1,
            EventKind::LayerDone { .. } => 2,
            EventKind::FrameArrival { .. } => 3,
        }
    }
}
