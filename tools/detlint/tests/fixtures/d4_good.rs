// D4 fixture: decisions reading fingerprinted fields (and test code
// reading excluded ones) are fine.
pub struct Metrics {
    pub completed: u64,
    pub sojourn_ns: Vec<u64>,
}

impl Metrics {
    pub fn fingerprint(&self) -> u64 {
        self.completed
    }
}

fn decide(m: &Metrics) -> bool {
    m.completed > 4
}

#[cfg(test)]
mod tests {
    #[test]
    fn assertions_may_read_excluded_fields() {
        let m = super::Metrics {
            completed: 1,
            sojourn_ns: vec![5],
        };
        assert_eq!(m.sojourn_ns.len(), 1);
    }
}
