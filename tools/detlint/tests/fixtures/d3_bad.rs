// D3 fixture: `LayerDone` has no arm in `rank`.
pub enum EventKind {
    FrameArrival { frame: u64 },
    LayerDone { task: u64 },
    PhaseStart { phase: usize },
    End,
}

impl EventKind {
    fn rank(&self) -> u8 {
        match self {
            EventKind::PhaseStart { .. } => 0,
            EventKind::End => 1,
            EventKind::FrameArrival { .. } => 3,
        }
    }
}
