//! Fixture corpus: each rule family has at least one snippet that trips
//! it and one that must stay clean, plus the suppression-grammar cases.

use detlint::lint_source;
use detlint::rules::{Finding, RuleId};

fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.suppressed).collect()
}

fn rules_hit(findings: &[Finding]) -> Vec<RuleId> {
    let mut rs: Vec<RuleId> = unsuppressed(findings).iter().map(|f| f.rule).collect();
    rs.sort();
    rs.dedup();
    rs
}

#[test]
fn d1_bad_trips_every_banned_source() {
    let fs = lint_source("d1_bad.rs", include_str!("fixtures/d1_bad.rs"));
    let rules = rules_hit(&fs);
    assert!(rules.contains(&RuleId::UnorderedMap), "{fs:?}");
    assert!(rules.contains(&RuleId::WallClock), "{fs:?}");
    assert!(rules.contains(&RuleId::AmbientRng), "{fs:?}");
    assert!(rules.contains(&RuleId::AddrOrder), "{fs:?}");
}

#[test]
fn d1_good_is_clean() {
    let fs = lint_source("d1_good.rs", include_str!("fixtures/d1_good.rs"));
    assert!(unsuppressed(&fs).is_empty(), "{fs:?}");
}

#[test]
fn d2_bad_trips_every_fold_shape() {
    let fs = lint_source("d2_bad.rs", include_str!("fixtures/d2_bad.rs"));
    let hits = unsuppressed(&fs);
    assert_eq!(hits.len(), 5, "one per fn: {fs:?}");
    assert!(hits.iter().all(|f| f.rule == RuleId::FloatFold));
}

#[test]
fn d2_good_is_clean_and_both_directives_are_used() {
    let fs = lint_source("d2_good.rs", include_str!("fixtures/d2_good.rs"));
    assert!(unsuppressed(&fs).is_empty(), "{fs:?}");
    // The blessed fn and the allowed line each suppressed one finding.
    assert_eq!(fs.iter().filter(|f| f.suppressed).count(), 2, "{fs:?}");
}

#[test]
fn d3_missing_arm_is_flagged() {
    let fs = lint_source("d3_bad.rs", include_str!("fixtures/d3_bad.rs"));
    let hits = unsuppressed(&fs);
    assert_eq!(hits.len(), 1, "{fs:?}");
    assert_eq!(hits[0].rule, RuleId::EventRank);
    assert!(hits[0].message.contains("LayerDone"), "{}", hits[0].message);
}

#[test]
fn d3_wildcard_arm_is_flagged() {
    let fs = lint_source("d3_wildcard.rs", include_str!("fixtures/d3_wildcard.rs"));
    let hits = unsuppressed(&fs);
    assert_eq!(hits.len(), 1, "{fs:?}");
    assert_eq!(hits[0].rule, RuleId::EventRank);
    assert!(hits[0].message.contains("wildcard"), "{}", hits[0].message);
}

#[test]
fn d3_good_is_clean() {
    let fs = lint_source("d3_good.rs", include_str!("fixtures/d3_good.rs"));
    assert!(unsuppressed(&fs).is_empty(), "{fs:?}");
}

#[test]
fn d4_excluded_field_and_stem_accessor_are_flagged() {
    let fs = lint_source("d4_bad.rs", include_str!("fixtures/d4_bad.rs"));
    let hits = unsuppressed(&fs);
    assert_eq!(hits.len(), 2, "{fs:?}");
    assert!(hits.iter().all(|f| f.rule == RuleId::FingerprintPurity));
    assert!(hits.iter().any(|f| f.snippet.contains("sojourn_ns")));
    assert!(hits
        .iter()
        .any(|f| f.snippet.contains("sojourn_percentile_ms")));
}

#[test]
fn d4_good_is_clean() {
    let fs = lint_source("d4_good.rs", include_str!("fixtures/d4_good.rs"));
    assert!(unsuppressed(&fs).is_empty(), "{fs:?}");
}

// --- suppression grammar ---

#[test]
fn allow_without_reason_is_rejected() {
    let src =
        "fn f(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>() // detlint: allow(float-fold)\n}\n";
    let fs = lint_source("x.rs", src);
    // The finding stays unsuppressed AND the directive itself is flagged.
    let rules = rules_hit(&fs);
    assert!(rules.contains(&RuleId::FloatFold), "{fs:?}");
    assert!(rules.contains(&RuleId::BadAllow), "{fs:?}");
}

#[test]
fn allow_with_empty_reason_is_rejected() {
    let src = "fn f(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>() // detlint: allow(float-fold) --\n}\n";
    let fs = lint_source("x.rs", src);
    assert!(rules_hit(&fs).contains(&RuleId::BadAllow), "{fs:?}");
}

#[test]
fn allow_naming_unknown_rule_is_rejected() {
    let src = "// detlint: allow(no-such-rule) -- because\nfn f() {}\n";
    let fs = lint_source("x.rs", src);
    assert!(rules_hit(&fs).contains(&RuleId::BadAllow), "{fs:?}");
}

#[test]
fn meta_rules_cannot_be_suppressed() {
    let src = "// detlint: allow(bad-allow) -- nice try\nfn f() {}\n";
    let fs = lint_source("x.rs", src);
    assert!(rules_hit(&fs).contains(&RuleId::BadAllow), "{fs:?}");
}

#[test]
fn stale_allow_is_flagged_unused() {
    let src = "fn f(xs: &[u64]) -> u64 {\n    xs.iter().sum() // detlint: allow(float-fold) -- stale: integer sum\n}\n";
    let fs = lint_source("x.rs", src);
    assert!(rules_hit(&fs).contains(&RuleId::UnusedAllow), "{fs:?}");
}

#[test]
fn standalone_allow_anchors_to_next_code_line() {
    let src = "fn f(xs: &[f64]) -> f64 {\n    // detlint: allow(float-fold) -- fixture: standalone anchor\n    xs.iter().sum::<f64>()\n}\n";
    let fs = lint_source("x.rs", src);
    assert!(unsuppressed(&fs).is_empty(), "{fs:?}");
}

#[test]
fn allow_for_one_rule_does_not_cover_another() {
    let src = "fn f(xs: &[f64]) -> f64 {\n    let m = std::collections::HashMap::<u32, u32>::new(); // detlint: allow(float-fold) -- wrong rule\n    let _ = m;\n    xs.iter().sum::<f64>()\n}\n";
    let fs = lint_source("x.rs", src);
    let rules = rules_hit(&fs);
    assert!(rules.contains(&RuleId::UnorderedMap), "{fs:?}");
    assert!(rules.contains(&RuleId::UnusedAllow), "{fs:?}");
}
