//! Workspace-level checks: the real tree lints clean, every suppression
//! carries a reason, and the D3 anchor actually has teeth — deleting any
//! variant's arm from the real `rank` function must produce a finding.

use std::path::PathBuf;

use detlint::rules::RuleId;
use detlint::{lint_source, lint_workspace, EVENT_FILE};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn real_tree_is_clean_and_every_allow_has_a_reason() {
    let report = lint_workspace(&workspace_root()).expect("scan");
    let bad: Vec<_> = report.unsuppressed().collect();
    assert!(
        bad.is_empty(),
        "unsuppressed findings in the workspace:\n{bad:#?}"
    );
    for f in &report.findings {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "suppressed finding without a reason: {f:?}"
        );
    }
    // The lint is not vacuously clean: the blessed reference folds are
    // suppressed findings, so the scan demonstrably ran.
    assert!(
        report.findings.iter().any(|f| f.suppressed),
        "expected at least one suppressed finding as proof of scan"
    );
}

#[test]
fn deleting_any_rank_arm_from_real_event_module_trips_d3() {
    let src = std::fs::read_to_string(workspace_root().join(EVENT_FILE)).expect("event.rs");
    // Baseline: the real module passes D3.
    let clean: Vec<_> = lint_source(EVENT_FILE, &src)
        .into_iter()
        .filter(|f| f.rule == RuleId::EventRank && !f.suppressed)
        .collect();
    assert!(clean.is_empty(), "real event.rs should pass D3: {clean:?}");

    for variant in ["FrameArrival", "LayerDone", "PhaseStart", "End"] {
        // Drop the variant's arm from `rank` (the line mentioning both the
        // variant and `=>` inside the fn), keeping the enum intact.
        let mut in_rank = false;
        let mutated: String = src
            .lines()
            .filter(|l| {
                if l.contains("fn rank") {
                    in_rank = true;
                }
                let is_arm = in_rank && l.contains(variant) && l.contains("=>");
                if is_arm {
                    in_rank = false; // one arm per variant; stop after the hit
                }
                !is_arm
            })
            .map(|l| format!("{l}\n"))
            .collect();
        assert_ne!(mutated, src, "no arm removed for {variant}");
        let hits: Vec<_> = lint_source(EVENT_FILE, &mutated)
            .into_iter()
            .filter(|f| f.rule == RuleId::EventRank && !f.suppressed)
            .collect();
        assert!(
            hits.iter().any(|f| f.message.contains(variant)),
            "deleting {variant}'s arm should trip D3, got {hits:?}"
        );
    }
}

#[test]
fn json_report_is_well_formed_enough_to_grep() {
    let report = lint_workspace(&workspace_root()).expect("scan");
    let json = detlint::report::to_json(&report);
    assert!(json.contains("\"detlint_version\": 1"));
    assert!(json.contains("\"summary\""));
    assert!(json.contains("\"unsuppressed\": 0"));
    // Every rule appears in the catalog.
    for r in RuleId::ALL {
        assert!(
            json.contains(&format!("\"rule\": \"{}\"", r.name())),
            "{r:?}"
        );
    }
}
