//! Smoke: does DREAM beat the baselines on a stressed platform?
use dream_bench::*;
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

fn main() {
    let t0 = std::time::Instant::now();
    for preset in [PlatformPreset::Hetero4kWs1Os2, PlatformPreset::Hetero4kOs1Ws2] {
        for kind in [ScenarioKind::ArSocial, ScenarioKind::DroneOutdoor, ScenarioKind::ArCall] {
            println!("== {} / {} ==", preset.name(), kind.name());
            for sched in SchedulerKind::figure7_set() {
                let r = run_spec(&RunSpec::new(sched, kind, preset));
                println!("  {:18} uxcost={:8.4} dlv={:.3} energyN={:.3} drops={} sw={}",
                    r.scheduler_name, r.uxcost, r.mean_violation_rate, r.mean_norm_energy,
                    r.drops, r.context_switches);
            }
        }
    }
    println!("elapsed: {:?}", t0.elapsed());
}
