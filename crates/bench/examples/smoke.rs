//! Smoke: does DREAM beat the baselines on a stressed platform?
//! The whole grid fans out across the thread pool in one go.
// Benchmarks measure wall time by definition; exempt from the
// workspace determinism lint on wall-clock reads.
#![allow(clippy::disallowed_methods)]
use dream_bench::*;
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

fn main() {
    let t0 = std::time::Instant::now();
    let mut grid = ExperimentGrid::new();
    grid.add_product(
        &[
            PlatformPreset::Hetero4kWs1Os2,
            PlatformPreset::Hetero4kOs1Ws2,
        ],
        &[
            ScenarioKind::ArSocial,
            ScenarioKind::DroneOutdoor,
            ScenarioKind::ArCall,
        ],
        &SchedulerKind::figure7_set(),
        1,
    );
    let results = grid.run();
    let mut last_cell = String::new();
    for r in results.runs() {
        let cell = format!(
            "== {} / {} ==",
            r.spec.preset.name(),
            r.spec.scenario.name()
        );
        if cell != last_cell {
            println!("{cell}");
            last_cell = cell;
        }
        println!(
            "  {:18} uxcost={:8.4} dlv={:.3} energyN={:.3} drops={} sw={}",
            r.scheduler_name,
            r.uxcost,
            r.mean_violation_rate,
            r.mean_norm_energy,
            r.drops,
            r.context_switches
        );
    }
    println!("elapsed: {:?}", t0.elapsed());
}
