//! **Figure 7** — the headline evaluation: UXCost, deadline-violation rate,
//! and normalised energy for every scheduler on the four *heterogeneous*
//! platforms across all five scenarios (plus Table 4's DREAM ablations).
//!
//! Paper result: DREAM reduces geomean UXCost by 32.1% vs Planaria and
//! 50.0% vs Veltair; the largest wins are AR_Social on 4K 1WS+2OS (−80.8%
//! vs Planaria) and Drone_Outdoor on 4K 1WS+2OS (−97.6% vs Veltair).

use dream_bench::{geomean, write_csv, ExperimentGrid, SchedulerKind, Table};
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

const SEEDS: u64 = 3;

fn main() {
    // The whole (platform × scenario × scheduler × seed) grid fans out
    // across the thread pool at once; results come back in grid order.
    let mut grid = ExperimentGrid::new();
    grid.add_product(
        &PlatformPreset::heterogeneous(),
        &ScenarioKind::all(),
        &SchedulerKind::figure7_set(),
        SEEDS,
    );
    let results = grid.run();

    let mut table = Table::new(
        "Figure 7: UXCost / DLV / energy on heterogeneous platforms",
        &[
            "platform",
            "scenario",
            "scheduler",
            "uxcost",
            "dlv_rate",
            "norm_energy",
            "drops",
        ],
    );
    // Geomean accumulator per scheduler.
    let mut per_scheduler: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for r in results.averaged() {
        let spec = &r.runs[0].spec;
        per_scheduler
            .entry(r.scheduler_name.clone())
            .or_default()
            .push(r.uxcost);
        table.row([
            spec.preset.name().to_string(),
            spec.scenario.name().to_string(),
            r.scheduler_name.clone(),
            format!("{:.4}", r.uxcost),
            format!("{:.4}", r.mean_violation_rate),
            format!("{:.4}", r.mean_norm_energy),
            format!("{:.1}", r.drops),
        ]);
    }
    table.print();

    let mut summary = Table::new(
        "Figure 7 summary: geomean UXCost across heterogeneous platforms × scenarios",
        &["scheduler", "geomean_uxcost", "DREAM-Full_improvement_%"],
    );
    let dream_geo = geomean(&per_scheduler["DREAM-Full"]);
    for (name, costs) in &per_scheduler {
        let g = geomean(costs);
        let improvement = 100.0 * (1.0 - dream_geo / g);
        summary.row([name.clone(), format!("{g:.4}"), format!("{improvement:.1}")]);
    }
    summary.print();
    println!("paper: DREAM reduces UXCost by 32.1% vs Planaria and 50.0% vs Veltair (geomean)");
    let p1 = write_csv("fig07_heterogeneous", &table);
    let p2 = write_csv("fig07_summary", &summary);
    println!("csv: {} and {}", p1.display(), p2.display());
}
