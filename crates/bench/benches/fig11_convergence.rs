//! **Figure 11** — convergence of the MapScore parameter optimisation:
//! best-so-far UXCost per step, compared against the global optimum found
//! by a dense grid search over the [0, 2]² box.
//!
//! Paper result: >25% UXCost improvement within two steps; within five
//! steps the parameters land within 2% of the global minimum.

use dream_bench::{parallel_map, write_csv, Table, DEFAULT_SEED};
use dream_core::{DreamConfig, DreamScheduler, ObjectiveKind, ParamOptimizer, ScoreParams};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, SimulationBuilder};

const PRESET: PlatformPreset = PlatformPreset::Hetero4kOs1Ws2;
const GRID: usize = 9; // 9×9 grid over [0,2]²

fn eval(scenario: ScenarioKind, params: ScoreParams) -> f64 {
    let platform = Platform::preset(PRESET);
    let workload = Scenario::new(scenario, CascadeProbability::default_paper());
    let mut sched = DreamScheduler::new(DreamConfig::mapscore().with_params(params));
    let m = SimulationBuilder::new(platform, workload)
        .duration(Millis::new(800))
        .seed(DEFAULT_SEED ^ 0xA5A5)
        .run(&mut sched)
        .expect("tuning sims are valid")
        .into_metrics();
    ObjectiveKind::UxCost.evaluate(&m)
}

fn main() {
    let mut table = Table::new(
        "Figure 11: optimiser convergence vs grid-search optimum",
        &[
            "scenario",
            "step",
            "best_uxcost_so_far",
            "grid_optimum",
            "gap_%",
        ],
    );
    for scenario in [
        ScenarioKind::VrGaming,
        ScenarioKind::ArSocial,
        ScenarioKind::DroneIndoor,
    ] {
        // Grid-search reference (the paper's "global optimum" heat map).
        let grid_points: Vec<ScoreParams> = (0..GRID)
            .flat_map(|i| {
                (0..GRID).map(move |j| {
                    ScoreParams::clamped(
                        2.0 * i as f64 / (GRID - 1) as f64,
                        2.0 * j as f64 / (GRID - 1) as f64,
                    )
                })
            })
            .collect();
        let grid_costs = parallel_map(grid_points, |p| eval(scenario, *p));
        let grid_opt = grid_costs.iter().copied().fold(f64::INFINITY, f64::min);

        let trace = ParamOptimizer::new(ScoreParams::clamped(1.7, 0.3))
            .run_batched(|cands| parallel_map(cands.to_vec(), |&p| eval(scenario, p)));
        for (step, best) in trace.best_cost_per_step().iter().enumerate() {
            let gap = 100.0 * (best / grid_opt - 1.0);
            table.row([
                scenario.name().to_string(),
                (step + 1).to_string(),
                format!("{best:.4}"),
                format!("{grid_opt:.4}"),
                format!("{gap:.1}"),
            ]);
        }
        let final_gap = 100.0 * (trace.final_cost / grid_opt - 1.0);
        println!(
            "{}: converged to {:.4} vs grid optimum {:.4} ({:+.1}% gap) in {} steps",
            scenario.name(),
            trace.final_cost,
            grid_opt,
            final_gap,
            trace.steps.len()
        );
    }
    table.print();
    println!("paper: >25% improvement in 2 steps; within 2% of global optimum in 5 steps");
    let path = write_csv("fig11_convergence", &table);
    println!("csv: {}", path.display());
}
