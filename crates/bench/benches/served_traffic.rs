//! **Served traffic** — beyond the paper's fixed-FPS pipelines: request
//! latency (p50/p95/p99 sojourn) and deadline violations as open-loop
//! arrival intensity sweeps across DREAM and the five baselines, plus a
//! replay of a recorded bursty request trace.
//!
//! Violation rate alone is meaningless for open-loop traffic (an
//! overloaded scheduler can violate every deadline while queues grow
//! without bound), so this bench reports the sojourn-time distribution —
//! what a user of a served system actually experiences.

use std::sync::Arc;

use dream_bench::{
    write_csv, ArrivalConfig, DreamVariant, ExperimentGrid, RunSpec, SchedulerKind, Table,
};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{ArrivalTrace, Millis, MmppArrivals, SimTime, SimulationBuilder};

const SEEDS: u64 = 3;
const PRESET: PlatformPreset = PlatformPreset::Hetero4kWs1Os2;
const SCENARIO: ScenarioKind = ScenarioKind::ArCall;

/// DREAM plus all five baselines.
fn schedulers() -> [SchedulerKind; 6] {
    [
        SchedulerKind::Fcfs,
        SchedulerKind::Static,
        SchedulerKind::Edf,
        SchedulerKind::Veltair,
        SchedulerKind::Planaria,
        SchedulerKind::DreamTuned(DreamVariant::Full),
    ]
}

/// Records a bursty MMPP request log against the bench workload, once,
/// offline — the "recorded trace" the trace-driven cells replay.
fn recorded_trace() -> Arc<ArrivalTrace> {
    let horizon = SimTime::from(Millis::new(dream_bench::DEFAULT_DURATION_MS));
    let ws = SimulationBuilder::new(
        Platform::preset(PRESET),
        Scenario::new(SCENARIO, CascadeProbability::default_paper()),
    )
    .duration(horizon)
    .build_workload()
    .expect("bench workload is valid");
    let mut source = MmppArrivals::new(0.7, 2.5, 0.2, 0.25);
    Arc::new(ArrivalTrace::record(
        "mmpp-recorded",
        &ws,
        horizon,
        dream_bench::DEFAULT_SEED,
        &mut source,
    ))
}

fn main() {
    let trace = recorded_trace();
    let mut arrivals: Vec<ArrivalConfig> = vec![ArrivalConfig::Periodic];
    for intensity in [0.5, 1.0, 1.5] {
        arrivals.push(ArrivalConfig::Poisson { intensity });
    }
    arrivals.push(ArrivalConfig::Trace(trace));

    let mut grid = ExperimentGrid::new();
    for arrival in &arrivals {
        for kind in schedulers() {
            grid.add_seed_sweep(
                RunSpec::new(kind, SCENARIO, PRESET).with_arrivals(arrival.clone()),
                SEEDS,
            );
        }
    }
    let results = grid.run();

    let mut table = Table::new(
        "Served traffic: request latency under open-loop arrivals (AR_Call, 4K 1WS+2OS)",
        &[
            "arrivals",
            "scheduler",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "dlv_rate",
            "drops",
            "uxcost",
        ],
    );
    let fmt_ms = |v: Option<f64>| v.map_or_else(|| "-".into(), |ms| format!("{ms:.3}"));
    for r in results.averaged() {
        let spec = &r.runs[0].spec;
        table.row([
            spec.arrival.label(),
            r.scheduler_name.clone(),
            fmt_ms(r.sojourn_p50_ms),
            fmt_ms(r.sojourn_p95_ms),
            fmt_ms(r.sojourn_p99_ms),
            format!("{:.4}", r.mean_violation_rate),
            format!("{:.1}", r.drops),
            format!("{:.4}", r.uxcost),
        ]);
    }
    table.print();
    println!("open-loop traffic: tail latency separates schedulers that violation rate ties");
    let path = write_csv("served_traffic", &table);
    println!("csv: {}", path.display());
}
