//! **Table 1 / Table 5** — which RTMM challenges each scheduler addresses.
//!
//! Rather than hard-coding the paper's matrix, this prints the capability
//! flags each scheduler implementation *reports about itself*, so the table
//! stays in sync with the code.

use dream_baselines::{
    EdfScheduler, FcfsScheduler, PlanariaScheduler, StaticScheduler, VeltairScheduler,
};
use dream_bench::{write_csv, Table};
use dream_core::{DreamConfig, DreamScheduler};
use dream_sim::Scheduler;

fn main() {
    let fcfs = FcfsScheduler::new();
    let statik = StaticScheduler::new();
    let edf = EdfScheduler::new();
    let veltair = VeltairScheduler::new();
    let planaria = PlanariaScheduler::new();
    let dream = DreamScheduler::new(DreamConfig::full());
    let schedulers: Vec<(&str, &dyn Scheduler)> = vec![
        ("Static", &statik),
        ("FCFS", &fcfs),
        ("EDF", &edf),
        ("Veltair", &veltair),
        ("Planaria", &planaria),
        ("DREAM (this work)", &dream),
    ];

    let mut table = Table::new(
        "Table 1/5: RTMM challenge coverage per scheduler",
        &[
            "scheduler",
            "cascade",
            "concurrent",
            "real-time",
            "task-dyn",
            "model-dyn",
            "energy",
            "hetero",
        ],
    );
    let mark = |b: bool| {
        if b {
            "yes".to_string()
        } else {
            "-".to_string()
        }
    };
    for (name, s) in schedulers {
        let c = s.capabilities();
        table.row([
            name.to_string(),
            mark(c.cascade),
            mark(c.concurrent),
            mark(c.realtime),
            mark(c.task_dynamicity),
            mark(c.model_dynamicity),
            mark(c.energy_aware),
            mark(c.heterogeneity_aware),
        ]);
    }
    table.print();
    println!("paper: only DREAM covers workload dynamicity and energy (Tables 1 and 5)");
    let path = write_csv("tab01_challenges", &table);
    println!("csv: {}", path.display());
}
