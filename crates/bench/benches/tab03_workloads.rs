//! **Table 3** — the five RTMM workload scenarios: models, FPS targets,
//! dependencies, and derived per-model work (validates the zoo against the
//! paper's inventory).

use dream_bench::{write_csv, Table};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};

fn main() {
    let mut table = Table::new(
        "Table 3: evaluated real-time workload scenarios",
        &[
            "scenario", "pipeline", "model", "FPS", "dep", "GMACs", "layers", "dynamic",
        ],
    );
    for kind in ScenarioKind::all() {
        let s = Scenario::new(kind, CascadeProbability::default_paper());
        for pipeline in s.pipelines() {
            for node in pipeline.nodes() {
                let graph = node.model.default_variant();
                let dynamic = if node.model.is_supernet() {
                    format!("supernet×{}", node.model.variant_count())
                } else if !graph.skip_blocks().is_empty() {
                    format!("skip×{}", graph.skip_blocks().len())
                } else if !graph.exit_points().is_empty() {
                    format!("exit×{}", graph.exit_points().len())
                } else {
                    "-".to_string()
                };
                table.row([
                    kind.name().to_string(),
                    pipeline.name().to_string(),
                    node.model.name().to_string(),
                    format!("{}", node.rate.as_fps()),
                    node.parent
                        .map(|p| pipeline.nodes()[p.0].model.name().to_string())
                        .unwrap_or_else(|| "-".to_string()),
                    format!("{:.2}", graph.total_macs() as f64 / 1e9),
                    graph.len().to_string(),
                    dynamic,
                ]);
            }
        }
        println!(
            "{}: expected demand ≈ {:.1} G ops/s across {} models",
            kind.name(),
            s.expected_ops_per_second() / 1e9,
            s.node_count()
        );
    }
    table.print();
    let path = write_csv("tab03_workloads", &table);
    println!("csv: {}", path.display());
}
