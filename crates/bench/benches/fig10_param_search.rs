//! **Figure 10** — the MapScore parameter search on four workload-change
//! cases in the 4K 1OS+2WS setting:
//!
//! * (a) IDLE → VR_Gaming, (b) IDLE → AR_Social, (c) IDLE → Drone_Indoor
//!   (random initial parameters = system boot), and
//! * (d) VR_Gaming → AR_Social (search restarts from (a)'s locked
//!   parameters).
//!
//! Prints each step's center, radius, and best candidate — the trajectory
//! the paper plots over the UXCost heat map. Each step's candidate ring is
//! evaluated in parallel (the steps themselves are inherently sequential).

use dream_bench::{parallel_map, write_csv, Table, DEFAULT_SEED};
use dream_core::{DreamConfig, DreamScheduler, ObjectiveKind, ParamOptimizer, ScoreParams};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, SimulationBuilder};

const PRESET: PlatformPreset = PlatformPreset::Hetero4kOs1Ws2;

fn eval(scenario: ScenarioKind, params: ScoreParams) -> f64 {
    let platform = Platform::preset(PRESET);
    let workload = Scenario::new(scenario, CascadeProbability::default_paper());
    let mut sched = DreamScheduler::new(DreamConfig::mapscore().with_params(params));
    let m = SimulationBuilder::new(platform, workload)
        .duration(Millis::new(800))
        .seed(DEFAULT_SEED ^ 0xA5A5)
        .run(&mut sched)
        .expect("tuning sims are valid")
        .into_metrics();
    ObjectiveKind::UxCost.evaluate(&m)
}

fn main() {
    // "Random" boot parameters, fixed for reproducibility (the paper boots
    // from IDLE with random α, β).
    let boot = ScoreParams::clamped(1.7, 0.3);
    let mut table = Table::new(
        "Figure 10: MapScore parameter search trajectories (4K 1OS+2WS)",
        &[
            "case",
            "step",
            "center_alpha",
            "center_beta",
            "radius",
            "best_alpha",
            "best_beta",
            "best_uxcost",
        ],
    );

    let mut locked_vr = ScoreParams::neutral();
    let cases: [(&str, ScenarioKind, Option<ScoreParams>); 4] = [
        ("(a) IDLE->VR_Gaming", ScenarioKind::VrGaming, Some(boot)),
        ("(b) IDLE->AR_Social", ScenarioKind::ArSocial, Some(boot)),
        (
            "(c) IDLE->Drone_Indoor",
            ScenarioKind::DroneIndoor,
            Some(boot),
        ),
        ("(d) VR_Gaming->AR_Social", ScenarioKind::ArSocial, None),
    ];
    for (label, scenario, start) in cases {
        let start = start.unwrap_or(locked_vr);
        let trace = ParamOptimizer::new(start)
            .run_batched(|candidates| parallel_map(candidates.to_vec(), |&p| eval(scenario, p)));
        for step in &trace.steps {
            table.row([
                label.to_string(),
                step.index.to_string(),
                format!("{:.3}", step.center.alpha()),
                format!("{:.3}", step.center.beta()),
                format!("{:.3}", step.radius),
                format!("{:.3}", step.best.0.alpha()),
                format!("{:.3}", step.best.0.beta()),
                format!("{:.4}", step.best.1),
            ]);
        }
        println!(
            "{label}: start {start} -> final {} (UXCost {:.4}) in {} steps / {} evaluations",
            trace.final_params,
            trace.final_cost,
            trace.steps.len(),
            trace.evaluations()
        );
        if label.starts_with("(a)") {
            locked_vr = trace.final_params;
        }
    }
    table.print();
    println!("paper: all cases converge within 2% of the global optimum (Figure 10)");
    let path = write_csv("fig10_param_search", &table);
    println!("csv: {}", path.display());
}
