//! **Table 2** — the evaluated accelerator platforms, with derived peak
//! throughput and resource shares (validates the preset definitions).

use dream_bench::{write_csv, Table};
use dream_cost::{Platform, PlatformPreset};

fn main() {
    let mut table = Table::new(
        "Table 2: evaluated accelerator hardware settings",
        &[
            "platform",
            "total_PEs",
            "style",
            "sub-accelerators",
            "peak_TMAC/s",
            "SRAM_MiB",
            "DRAM_GB/s",
        ],
    );
    for preset in PlatformPreset::all() {
        let p = Platform::preset(preset);
        let subs: Vec<String> = p
            .accelerators()
            .iter()
            .map(|a| format!("{}({})", a.dataflow().short_name(), a.pe_count()))
            .collect();
        let sram: u64 = p.accelerators().iter().map(|a| a.sram_bytes()).sum();
        let bw: f64 = p.accelerators().iter().map(|a| a.dram_gbps()).sum();
        table.row([
            preset.name().to_string(),
            p.total_pes().to_string(),
            if p.is_heterogeneous() {
                "heterogeneous".to_string()
            } else {
                "homogeneous".to_string()
            },
            subs.join("+"),
            format!("{:.2}", p.peak_macs_per_ns() / 1_000.0),
            format!("{:.1}", sram as f64 / (1 << 20) as f64),
            format!("{bw:.0}"),
        ]);
    }
    table.print();
    println!("paper: 8 MiB shared SRAM, 90 GB/s off-chip, 700 MHz for all platforms");
    let path = write_csv("tab02_hardware", &table);
    println!("csv: {}", path.display());
}
