//! Chaos soak: a fleet of live sessions driven under seeded fault
//! storms, proving graceful degradation at scale.
//!
//! 64 full-scheduler sessions are stepped round-robin on one shard
//! ([`dream_sim::MultiSession`]), each fed its root pipelines at their
//! native periods while a per-session [`FaultPlan::storm`] injects
//! stalls, slowdowns, and permanent failures *through the live
//! `admit_fault` seam* (the same path the serve runtime's `fault` wire
//! command takes). The acceptance bar:
//!
//! * **no panics** — the fleet survives every storm, including sessions
//!   whose accelerators all die;
//! * **bounded backlog** — the shared event queue never balloons;
//! * **bit-identical replay** — every session's record, storms and all,
//!   replays through the batch `FaultPlan` path to the same fingerprint;
//! * **degradation is measured** — `deadline_miss_under_faults`
//!   (fingerprint-excluded) is reported for DREAM vs the baselines on
//!   identical storms.

// Benchmarks measure wall time by definition; exempt from the
// workspace determinism lint on wall-clock reads.
#![allow(clippy::disallowed_methods)]
use std::time::Instant;

use dream_baselines::{FcfsScheduler, PlanariaScheduler};
use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{
    FaultEvent, FaultPlan, LiveError, Millis, MultiSessionBuilder, Scheduler, SimTime, StormConfig,
};

const SESSIONS: usize = 64;
const HORIZON_MS: u64 = 200;
const SEED_BASE: u64 = 9_000;
const MAX_EVENT_BACKLOG: usize = 200_000;

/// The per-session storm, time-sorted for incremental live admission
/// (the generator emits per-accelerator timelines).
fn storm_for(session: usize, accs: usize, horizon: SimTime) -> Vec<FaultEvent> {
    let plan = FaultPlan::storm(
        SEED_BASE + session as u64,
        accs,
        horizon,
        StormConfig::default(),
    );
    let mut events = plan.events().to_vec();
    events.sort_by_key(|e| (e.at, e.acc.0));
    events
}

struct FleetOutcome {
    misses_under_faults: u64,
    faults_injected: u64,
    fault_requeues: u64,
    max_backlog: usize,
    wall_s: f64,
}

/// Drives the whole fleet under storms with `make` schedulers, verifies
/// bit-identical replay of every record, and returns the degradation
/// counters.
fn run_fleet(name: &str, make: &dyn Fn(usize) -> Box<dyn Scheduler>) -> FleetOutcome {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let accs = platform.len();
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let horizon = SimTime::from(Millis::new(HORIZON_MS));
    let start = Instant::now();
    let mut multi = MultiSessionBuilder::new(platform, scenario)
        .seed_base(SEED_BASE)
        .horizon_cap(SimTime::from(Millis::new(HORIZON_MS + 100)))
        .start(SESSIONS, make)
        .expect("chaos soak config is valid");
    let roots: Vec<(dream_sim::ModelKey, u64)> = multi
        .workload()
        .nodes()
        .filter(|n| n.key().phase == 0 && n.parent().is_none())
        .map(|n| (n.key(), n.period().as_ns()))
        .collect();
    let storms: Vec<Vec<FaultEvent>> = (0..SESSIONS).map(|s| storm_for(s, accs, horizon)).collect();
    let mut next_fault = vec![0usize; SESSIONS];
    let mut next_arrival: Vec<Vec<u64>> = (0..SESSIONS)
        .map(|s| vec![s as u64 * 1_000; roots.len()])
        .collect();

    let slice = SimTime::from(Millis::new(10));
    let mut frontier = SimTime::ZERO;
    let mut max_backlog = 0usize;
    while frontier < horizon {
        let end = (frontier + slice).min(horizon);
        for s in 0..SESSIONS {
            for (r, stamp) in next_arrival[s].iter_mut().enumerate() {
                let (key, period) = roots[r];
                while *stamp < end.as_ns() {
                    multi
                        .admit(s, key.pipeline, key.node, SimTime::from_ns(*stamp))
                        .expect("soak admission is valid");
                    *stamp += period;
                }
            }
            // Inject this slice's storm window through the live seam.
            while next_fault[s] < storms[s].len() && storms[s][next_fault[s]].at < end {
                let ev = storms[s][next_fault[s]];
                match multi.session_mut(s).admit_fault(ev.acc, ev.kind, ev.at) {
                    Ok(_) | Err(LiveError::PastHorizon { .. }) => {}
                    Err(e) => panic!("fault admission failed: {e}"),
                }
                next_fault[s] += 1;
            }
        }
        multi.step_until(end);
        max_backlog = max_backlog.max(multi.event_queue_depth());
        frontier = end;
    }
    let outcomes = multi.finish().expect("chaos soak sessions finish");
    let wall_s = start.elapsed().as_secs_f64();

    // Every faulted record must replay bit-identically through the
    // batch FaultPlan path.
    for (i, (outcome, record)) in outcomes.iter().enumerate() {
        let mut fresh = make(i);
        let batch = record
            .replay(fresh.as_mut())
            .expect("faulted record replays");
        assert_eq!(
            outcome.metrics().fingerprint(),
            batch.metrics().fingerprint(),
            "{name} session {i} must replay bit-identically under its storm"
        );
        assert_eq!(outcome.final_time(), batch.final_time());
    }

    FleetOutcome {
        misses_under_faults: outcomes
            .iter()
            .map(|(o, _)| o.metrics().deadline_miss_under_faults)
            .sum(),
        faults_injected: outcomes
            .iter()
            .map(|(o, _)| o.metrics().faults_injected)
            .sum(),
        fault_requeues: outcomes
            .iter()
            .map(|(o, _)| o.metrics().fault_requeues)
            .sum(),
        max_backlog,
        wall_s,
    }
}

type MakeScheduler = Box<dyn Fn(usize) -> Box<dyn Scheduler>>;

fn main() {
    let fleets: Vec<(&str, MakeScheduler)> = vec![
        (
            "DREAM",
            Box::new(|_| Box::new(DreamScheduler::new(DreamConfig::full())) as Box<dyn Scheduler>),
        ),
        (
            "FCFS",
            Box::new(|_| Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>),
        ),
        (
            "Planaria",
            Box::new(|_| Box::new(PlanariaScheduler::new()) as Box<dyn Scheduler>),
        ),
    ];

    println!(
        "chaos soak: {SESSIONS} sessions × {HORIZON_MS} ms, seeded storms \
         (seed base {SEED_BASE}), identical faults per scheduler"
    );
    for (name, make) in &fleets {
        let fleet = run_fleet(name, make.as_ref());
        println!(
            "  {name:>8}: {} faults injected, {} requeues, \
             deadline_miss_under_faults {}, max event backlog {}, {:.2} s wall",
            fleet.faults_injected,
            fleet.fault_requeues,
            fleet.misses_under_faults,
            fleet.max_backlog,
            fleet.wall_s,
        );
        assert!(
            fleet.faults_injected > 0,
            "{name}: storms must actually inject faults"
        );
        assert!(
            fleet.max_backlog <= MAX_EVENT_BACKLOG,
            "{name}: event backlog must stay bounded under chaos \
             ({} > {MAX_EVENT_BACKLOG})",
            fleet.max_backlog
        );
    }
    println!(
        "chaos_soak ok: no panics, backlog bounded, every session replayed \
         bit-identically under its storm"
    );
}
