//! **Figure 9** — ablation: geomean UXCost improvement of each DREAM
//! optimisation over the fixed α = β = 1 MapScore baseline, for VR_Gaming
//! and AR_Social (the supernet-bearing scenarios) on 4K and 8K platforms.
//!
//! Paper result: parameter optimisation alone −49.2% (4K) / −21.0% (8K);
//! smart frame drop adds ~16.5% / 13.8%; supernet switching another 6–9%.

use dream_bench::{
    geomean, write_csv, DreamVariant, ExperimentGrid, RunSpec, SchedulerKind, Table,
};
use dream_core::ScoreParams;
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

const SEEDS: u64 = 3;

fn main() {
    let scenarios = [ScenarioKind::VrGaming, ScenarioKind::ArSocial];
    let classes: [(&str, [PlatformPreset; 2]); 2] = [
        (
            "4K",
            [
                PlatformPreset::Hetero4kWs1Os2,
                PlatformPreset::Hetero4kOs1Ws2,
            ],
        ),
        (
            "8K",
            [
                PlatformPreset::Hetero8kWs1Os2,
                PlatformPreset::Hetero8kOs1Ws2,
            ],
        ),
    ];
    let configs: Vec<(&str, SchedulerKind)> = vec![
        (
            "fixed α=β=1",
            SchedulerKind::DreamFixed(DreamVariant::MapScore, ScoreParams::neutral()),
        ),
        (
            "DREAM-MapScore (+param opt)",
            SchedulerKind::DreamTuned(DreamVariant::MapScore),
        ),
        (
            "DREAM-SmartDrop (+frame drop)",
            SchedulerKind::DreamTuned(DreamVariant::SmartDrop),
        ),
        (
            "DREAM-Full (+supernet switch)",
            SchedulerKind::DreamTuned(DreamVariant::Full),
        ),
    ];

    // Every (class × config × scenario × platform × seed) cell in one grid.
    let mut grid = ExperimentGrid::new();
    for (_, presets) in &classes {
        for (_, kind) in &configs {
            for &scenario in &scenarios {
                for &preset in presets {
                    grid.add_seed_sweep(RunSpec::new(*kind, scenario, preset), SEEDS);
                }
            }
        }
    }
    let results = grid.run();

    let mut table = Table::new(
        "Figure 9: UXCost improvement breakdown vs fixed α=β=1 (geomean over VR_Gaming + AR_Social)",
        &["platform_class", "configuration", "geomean_uxcost", "improvement_%"],
    );
    for (class, presets) in &classes {
        let mut base = None;
        for (label, kind) in &configs {
            let costs: Vec<f64> = scenarios
                .iter()
                .flat_map(|&s| presets.iter().map(move |&p| (s, p)))
                .map(|(s, p)| {
                    results
                        .averaged_for(&RunSpec::new(*kind, s, p))
                        .expect("cell ran in the grid")
                        .uxcost
                })
                .collect();
            let g = geomean(&costs);
            let base_g = *base.get_or_insert(g);
            table.row([
                class.to_string(),
                label.to_string(),
                format!("{g:.4}"),
                format!("{:.1}", 100.0 * (1.0 - g / base_g)),
            ]);
        }
    }
    table.print();
    println!(
        "paper: param opt −49.2% (4K) / −21.0% (8K); +smart drop ~16.5%/13.8%; +supernet 6–9%"
    );
    let path = write_csv("fig09_breakdown", &table);
    println!("csv: {}", path.display());
}
