//! **Figure 13** — is UXCost the right optimisation target? Tunes (α, β)
//! against three objectives — deadline-violation rate only, energy only,
//! and UXCost — and reports all three metrics for each, normalised to the
//! UXCost-optimised run.
//!
//! Paper result: single-metric optimisation degrades the other metric
//! (e.g. energy-only tuning raises VR_Gaming's violation rate by 34.2%,
//! and UXCost by 28.7%); UXCost tuning balances both.

use dream_bench::{
    tune_params, write_csv, DreamVariant, ExperimentGrid, RunSpec, SchedulerKind, Table,
};
use dream_core::{ObjectiveKind, ScoreParams};
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

fn main() {
    let preset = PlatformPreset::Hetero4kWs1Os2;
    let objectives = [
        ObjectiveKind::UxCost,
        ObjectiveKind::DeadlineOnly,
        ObjectiveKind::EnergyOnly,
    ];

    // Stage 1: tune every (scenario, cascade, objective) cell. Each tuning
    // search parallelises its candidate evaluations internally.
    let mut cells: Vec<(ScenarioKind, f64, ObjectiveKind, ScoreParams)> = Vec::new();
    for scenario in [ScenarioKind::VrGaming, ScenarioKind::ArSocial] {
        for cascade in [0.5, 0.9] {
            for &obj in &objectives {
                let params = tune_params(
                    scenario,
                    preset,
                    cascade,
                    DreamVariant::MapScore,
                    obj,
                    &dream_bench::CostConfig::Analytical,
                );
                cells.push((scenario, cascade, obj, params));
            }
        }
    }

    // Stage 2: one measurement grid over every tuned cell.
    let mut grid = ExperimentGrid::new();
    for &(scenario, cascade, _, params) in &cells {
        grid.push(
            RunSpec::new(
                SchedulerKind::DreamFixed(DreamVariant::MapScore, params),
                scenario,
                preset,
            )
            .with_cascade(cascade),
        );
    }
    let results = grid.run();

    let mut table = Table::new(
        "Figure 13: tuning objective ablation (values normalised to UXCost-tuned run)",
        &[
            "scenario",
            "cascade_%",
            "objective",
            "alpha",
            "beta",
            "uxcost_rel",
            "dlv_rel",
            "energy_rel",
        ],
    );
    let rel = |x: f64, b: f64| if b > 0.0 { x / b } else { 1.0 };
    for (group, runs) in cells
        .chunks(objectives.len())
        .zip(results.runs().chunks(objectives.len()))
    {
        let base = &runs[0];
        for ((scenario, cascade, obj, params), r) in group.iter().zip(runs) {
            table.row([
                scenario.name().to_string(),
                format!("{:.0}", cascade * 100.0),
                obj.name().to_string(),
                format!("{:.2}", params.alpha()),
                format!("{:.2}", params.beta()),
                format!("{:.3}", rel(r.uxcost, base.uxcost)),
                format!("{:.3}", rel(r.overall_rate_dlv, base.overall_rate_dlv)),
                format!(
                    "{:.3}",
                    rel(r.overall_norm_energy, base.overall_norm_energy)
                ),
            ]);
        }
    }
    table.print();
    println!("paper: DLV-only tuning costs energy; energy-only tuning costs deadlines;");
    println!("       UXCost balances both (all relative values ≥ 1 mean degradation)");
    let path = write_csv("fig13_metric_ablation", &table);
    println!("csv: {}", path.display());
}
