//! **Figure 13** — is UXCost the right optimisation target? Tunes (α, β)
//! against three objectives — deadline-violation rate only, energy only,
//! and UXCost — and reports all three metrics for each, normalised to the
//! UXCost-optimised run.
//!
//! Paper result: single-metric optimisation degrades the other metric
//! (e.g. energy-only tuning raises VR_Gaming's violation rate by 34.2%,
//! and UXCost by 28.7%); UXCost tuning balances both.

use dream_bench::{
    run_spec, tune_params, write_csv, DreamVariant, RunSpec, SchedulerKind, Table,
};
use dream_core::ObjectiveKind;
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

fn main() {
    let preset = PlatformPreset::Hetero4kWs1Os2;
    let mut table = Table::new(
        "Figure 13: tuning objective ablation (values normalised to UXCost-tuned run)",
        &[
            "scenario", "cascade_%", "objective", "alpha", "beta", "uxcost_rel", "dlv_rel",
            "energy_rel",
        ],
    );
    for scenario in [ScenarioKind::VrGaming, ScenarioKind::ArSocial] {
        for cascade in [0.5, 0.9] {
            // Baseline: UXCost-optimised.
            let objectives = [
                ObjectiveKind::UxCost,
                ObjectiveKind::DeadlineOnly,
                ObjectiveKind::EnergyOnly,
            ];
            let runs: Vec<_> = objectives
                .iter()
                .map(|&obj| {
                    let params = tune_params(scenario, preset, cascade, DreamVariant::MapScore, obj);
                    let spec = RunSpec::new(
                        SchedulerKind::DreamFixed(DreamVariant::MapScore, params),
                        scenario,
                        preset,
                    )
                    .with_cascade(cascade);
                    (obj, params, run_spec(&spec))
                })
                .collect();
            let base = &runs[0].2;
            let rel = |x: f64, b: f64| if b > 0.0 { x / b } else { 1.0 };
            for (obj, params, r) in &runs {
                table.row([
                    scenario.name().to_string(),
                    format!("{:.0}", cascade * 100.0),
                    obj.name().to_string(),
                    format!("{:.2}", params.alpha()),
                    format!("{:.2}", params.beta()),
                    format!("{:.3}", rel(r.uxcost, base.uxcost)),
                    format!(
                        "{:.3}",
                        rel(r.overall_rate_dlv, base.overall_rate_dlv)
                    ),
                    format!(
                        "{:.3}",
                        rel(r.overall_norm_energy, base.overall_norm_energy)
                    ),
                ]);
            }
        }
    }
    table.print();
    println!("paper: DLV-only tuning costs energy; energy-only tuning costs deadlines;");
    println!("       UXCost balances both (all relative values ≥ 1 mean degradation)");
    let path = write_csv("fig13_metric_ablation", &table);
    println!("csv: {}", path.display());
}
