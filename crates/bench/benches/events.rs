//! Engine-stepping micro-benchmark: raw events/sec through the staged
//! executor, and the wide multi-session variant.
//!
//! The hotpath bench measures the *decision* path (DreamScheduler's
//! per-invocation cost); this one isolates the *executor* — the
//! time-bucketed event queue, instant draining, and the pooled task/gang
//! scratch — by driving the same AR_Call configuration under a trivial
//! first-ready→first-idle scheduler, so virtually all the per-event time
//! is engine stepping.
//!
//! Writes `BENCH_events.json` at the workspace root (schema in
//! `crates/bench/README.md`); `scripts/check_events.sh` gates CI on the
//! single-session `events_per_sec` field. The `multi` block steps many
//! live sessions round-robin against one shared workload store
//! (`dream_sim::MultiSession`) and reports aggregate throughput plus
//! sessions/core — the shard-sizing figure.

// Benchmarks measure wall time by definition; exempt from the
// workspace determinism lint on wall-clock reads.
#![allow(clippy::disallowed_methods)]
use std::path::PathBuf;
use std::time::Instant;

use dream_bench::shared_workload;
use dream_cost::{CostModel, Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{
    Assignment, Decision, Millis, MultiSessionBuilder, Scheduler, SimTime, SimulationBuilder,
    SystemView,
};

const HORIZON_MS: u64 = 20_000;
const REPS: u32 = 5;
/// Batch runs folded into one rep so the timed region is long enough to
/// measure (one AR_Call horizon alone is only tens of thousands of
/// events) while per-run engine setup stays amortized.
const RUNS_PER_REP: u32 = 20;
const MULTI_SESSIONS: usize = 64;
const MULTI_HORIZON_MS: u64 = 200;

/// First ready task onto the first idle accelerator — the cheapest
/// deterministic scheduler, so the measurement is engine-dominated.
#[derive(Debug, Default)]
struct FirstFit;

impl Scheduler for FirstFit {
    fn name(&self) -> &str {
        "first-fit"
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut d = Decision::none();
        let mut idle = view.idle_ids().iter();
        for &task in view.ready_ids() {
            let Some(&acc) = idle.next() else { break };
            d.assignments.push(Assignment::single(task, acc));
        }
        d
    }
}

fn single_session_rep() -> (u64, f64) {
    let tables = shared_workload(
        ScenarioKind::ArCall,
        PlatformPreset::Hetero4kWs1Os2,
        CascadeProbability::default_paper().value(),
        HORIZON_MS,
        std::sync::Arc::new(CostModel::paper_default()),
    );
    let mut events = 0u64;
    let start = Instant::now();
    for run in 0..RUNS_PER_REP {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut sched = FirstFit;
        let metrics = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(HORIZON_MS))
            .seed(u64::from(run))
            .prebuilt_workload(std::sync::Arc::clone(&tables))
            .run(&mut sched)
            .expect("events bench sim is valid")
            .into_metrics();
        events += metrics.events_processed;
    }
    (events, start.elapsed().as_secs_f64())
}

/// Steps `MULTI_SESSIONS` live sessions round-robin on one shard, each
/// fed its root pipelines at their native periods, in 10 ms frontier
/// slices. Returns (total events, wall seconds, virtual seconds
/// simulated across all sessions).
fn multi_session_run() -> (u64, f64, f64) {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let horizon = SimTime::from(Millis::new(MULTI_HORIZON_MS));

    let start = Instant::now();
    let mut multi = MultiSessionBuilder::new(platform, scenario)
        .horizon_cap(SimTime::from(Millis::new(MULTI_HORIZON_MS + 100)))
        .start(MULTI_SESSIONS, |_| Box::new(FirstFit))
        .expect("multi-session bench config is valid");

    // Each session's root nodes at their native periods, staggered a
    // little per session so the shard's instants don't all coincide.
    let roots: Vec<(dream_sim::ModelKey, u64)> = multi
        .workload()
        .nodes()
        .filter(|n| n.key().phase == 0 && n.parent().is_none())
        .map(|n| (n.key(), n.period().as_ns()))
        .collect();
    let slice = SimTime::from(Millis::new(10));
    let mut frontier = SimTime::ZERO;
    let mut next: Vec<Vec<u64>> = (0..MULTI_SESSIONS)
        .map(|s| vec![s as u64 * 1_000; roots.len()])
        .collect();
    while frontier < horizon {
        let end = (frontier + slice).min(horizon);
        for (s, stamps) in next.iter_mut().enumerate() {
            for (r, stamp) in stamps.iter_mut().enumerate() {
                let (key, period) = roots[r];
                while *stamp < end.as_ns() {
                    multi
                        .admit(s, key.pipeline, key.node, SimTime::from_ns(*stamp))
                        .expect("bench admission is valid");
                    *stamp += period;
                }
            }
        }
        multi.step_until(end);
        frontier = end;
    }
    let outcomes = multi.finish().expect("bench sessions finish");
    let wall_s = start.elapsed().as_secs_f64();
    let events: u64 = outcomes
        .iter()
        .map(|(o, _)| o.metrics().events_processed)
        .sum();
    let virtual_s: f64 = outcomes
        .iter()
        .map(|(o, _)| o.final_time().as_ns_f64() / 1e9)
        .sum();
    (events, wall_s, virtual_s)
}

fn main() {
    // Warm up the allocator and the shared cost tables before timing.
    let _ = single_session_rep();

    let mut best_events = 0u64;
    let mut best_wall = f64::INFINITY;
    let mut best_eps = 0.0f64;
    for rep in 0..REPS {
        let (events, wall_s) = single_session_rep();
        let eps = events as f64 / wall_s;
        println!(
            "rep {rep}: {events} events over {RUNS_PER_REP} runs in {:.1} ms  →  {:.0} events/s ({:.1} ns/event)",
            wall_s * 1e3,
            eps,
            1e9 / eps,
        );
        if eps > best_eps {
            best_eps = eps;
            best_events = events;
            best_wall = wall_s;
        }
    }
    let ns_per_event = 1e9 / best_eps;
    println!(
        "events: engine stepping on AR_Call — best {best_eps:.0} events/s ({ns_per_event:.1} ns/event)",
    );

    let (multi_events, multi_wall, virtual_s) = multi_session_run();
    let multi_eps = multi_events as f64 / multi_wall;
    // Virtual seconds simulated per wall-clock second on this one core:
    // how many always-on sessions a single core sustains in real time.
    let sessions_per_core = virtual_s / multi_wall;
    println!(
        "multi: {MULTI_SESSIONS} sessions × {MULTI_HORIZON_MS} ms on one shard — \
         {multi_eps:.0} events/s aggregate, {sessions_per_core:.0} sessions/core",
    );

    let json = format!(
        "{{\n  \"bench\": \"events\",\n  \"scenario\": \"AR_Call\",\n  \"scheduler\": \"first-fit\",\n  \"horizon_ms\": {HORIZON_MS},\n  \"runs\": {RUNS_PER_REP},\n  \"events\": {best_events},\n  \"wall_ms\": {:.1},\n  \"events_per_sec\": {best_eps:.0},\n  \"ns_per_event\": {ns_per_event:.1},\n  \"multi\": {{\n    \"sessions\": {MULTI_SESSIONS},\n    \"session_horizon_ms\": {MULTI_HORIZON_MS},\n    \"events\": {multi_events},\n    \"aggregate_events_per_sec\": {multi_eps:.0},\n    \"sessions_per_core\": {sessions_per_core:.0}\n  }}\n}}\n",
        best_wall * 1e3,
    );
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_events.json"]
        .iter()
        .collect();
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
