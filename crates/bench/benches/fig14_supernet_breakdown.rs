//! **Figure 14** — which Once-for-All subnetworks DREAM's supernet
//! switching actually deploys, per scenario, platform, and load level.
//!
//! Paper result: under light load (50% cascade) mostly the Original subnet
//! runs (100% for AR_Social on 1WS+2OS); under heavy load the lighter
//! variants take over (>60% for AR_Social).

use dream_bench::{write_csv, DreamVariant, ExperimentGrid, RunSpec, SchedulerKind, Table};
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

const SEEDS: u64 = 3;

fn main() {
    let mut grid = ExperimentGrid::new();
    for preset in [
        PlatformPreset::Hetero4kWs1Os2,
        PlatformPreset::Hetero4kOs1Ws2,
    ] {
        for scenario in [ScenarioKind::VrGaming, ScenarioKind::ArSocial] {
            for cascade in [0.5, 0.9, 0.99] {
                grid.add_seed_sweep(
                    RunSpec::new(
                        SchedulerKind::DreamTuned(DreamVariant::Full),
                        scenario,
                        preset,
                    )
                    .with_cascade(cascade),
                    SEEDS,
                );
            }
        }
    }
    let results = grid.run();

    let mut table = Table::new(
        "Figure 14: executed OFA subnet shares under DREAM-Full (4K heterogeneous)",
        &[
            "platform",
            "scenario",
            "cascade_%",
            "original_%",
            "lg_%",
            "md_%",
            "sm_%",
        ],
    );
    for r in results.averaged() {
        let spec = &r.runs[0].spec;
        let shares = if r.variant_shares.len() == 4 {
            r.variant_shares.clone()
        } else {
            vec![0.0; 4]
        };
        table.row([
            spec.preset.name().to_string(),
            spec.scenario.name().to_string(),
            format!("{:.0}", spec.cascade * 100.0),
            format!("{:.1}", shares[0] * 100.0),
            format!("{:.1}", shares[1] * 100.0),
            format!("{:.1}", shares[2] * 100.0),
            format!("{:.1}", shares[3] * 100.0),
        ]);
    }
    table.print();
    println!("paper: Original dominates at 50% load; lighter variants exceed 60% under heavy load");
    let path = write_csv("fig14_supernet_breakdown", &table);
    println!("csv: {}", path.display());
}
