//! **Figure 2** — motivation: deadline-violation rate of a *static*
//! offline scheduler vs *dynamic* FCFS on the AR_Call workload, across four
//! accelerator styles.
//!
//! Paper result: dynamic FCFS decreases the violation rate by 52.9% on
//! average. We reproduce the direction and report our measured reduction.

use dream_bench::{write_csv, ExperimentGrid, RunSpec, SchedulerKind, Table};
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

const SEEDS: u64 = 3;

fn main() {
    let presets = [
        PlatformPreset::Hetero4kWs1Os2,
        PlatformPreset::Hetero4kOs1Ws2,
        PlatformPreset::Hetero8kWs1Os2,
        PlatformPreset::Hetero8kOs1Ws2,
    ];
    let mut grid = ExperimentGrid::new();
    grid.add_product(
        &presets,
        &[ScenarioKind::ArCall],
        &[SchedulerKind::Static, SchedulerKind::Fcfs],
        SEEDS,
    );
    let results = grid.run();

    let mut table = Table::new(
        "Figure 2: deadline violation rate on AR_Call (static vs dynamic FCFS)",
        &["platform", "static_dlv", "dynamic_fcfs_dlv", "reduction_%"],
    );
    let mut reductions = Vec::new();
    for preset in presets {
        let cell = |kind: SchedulerKind| {
            results
                .averaged_for(&RunSpec::new(kind, ScenarioKind::ArCall, preset))
                .expect("cell ran in the grid")
        };
        let statik = cell(SchedulerKind::Static);
        let fcfs = cell(SchedulerKind::Fcfs);
        let reduction = if statik.mean_violation_rate > 0.0 {
            100.0 * (1.0 - fcfs.mean_violation_rate / statik.mean_violation_rate)
        } else {
            0.0
        };
        reductions.push(reduction);
        table.row([
            preset.name().to_string(),
            format!("{:.4}", statik.mean_violation_rate),
            format!("{:.4}", fcfs.mean_violation_rate),
            format!("{reduction:.1}"),
        ]);
    }
    table.print();
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("mean violation-rate reduction of dynamic over static: {mean:.1}%");
    println!("paper reports: 52.9% average reduction (§2.3)");
    let path = write_csv("fig02_static_vs_dynamic", &table);
    println!("csv: {}", path.display());
}
