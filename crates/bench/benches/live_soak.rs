//! Live-ingress soak: how much request traffic the serving runtime
//! sustains with *bounded* queues.
//!
//! Three phases:
//!
//! 1. **Channel soak** — several producer threads blast the in-process
//!    [`ChannelClient`] for a fixed wall window against a shed-oldest
//!    queue and a per-tick admission budget. The floor asserted here
//!    (≥ 50k requests/s through the ingress) is the acceptance bar; the
//!    overload is absorbed as observable `shed` counters, never as
//!    unbounded queue growth (ingress backlog ≤ capacity, engine ready
//!    depth bounded by the admission budget).
//! 2. **Socket soak** — one TCP peer streams `r` lines through the wire
//!    protocol as fast as it can write them.
//! 3. **Multi-session soak** — many full-scheduler live sessions stepped
//!    round-robin on one shard ([`dream_sim::MultiSession`]), each fed
//!    its root pipelines at their native periods. Reports virtual
//!    seconds simulated per wall second — how many always-on sessions
//!    one core sustains in real time — with a conservative floor.
//!
//! Virtual time runs 1000× wall so the admitted trickle stays inside the
//! scenario's service capacity — the soak stresses the *ingress*, not
//! the simulator's overload behavior (that is `served_traffic`'s job).

// Benchmarks measure wall time by definition; exempt from the
// workspace determinism lint on wall-clock reads.
#![allow(clippy::disallowed_methods)]
use std::io::{BufWriter, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_serve::{listen_tcp, AdmissionPolicy, ServeConfig, ServeEngine, WallClock};
use dream_sim::{Millis, MultiSessionBuilder, SimTime};

const CHANNEL_PRODUCERS: usize = 4;
const CHANNEL_SOAK: Duration = Duration::from_millis(1200);
const SOCKET_LINES: usize = 100_000;
const REQUIRED_CHANNEL_RPS: f64 = 50_000.0;
const MULTI_SESSIONS: usize = 64;
const MULTI_HORIZON_MS: u64 = 200;
const REQUIRED_SESSIONS_PER_CORE: f64 = 100.0;

fn main() {
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut config = ServeConfig::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario);
    config.seed = 2024;
    config.clock = Arc::new(WallClock::accelerated(1000.0));
    config.tick = Duration::from_millis(1);
    config.queue_capacity = 4096;
    config.policy = AdmissionPolicy::ShedOldest;
    config.max_admissions_per_tick = 64;
    config.snapshot_every = 16;
    let (engine, handle) =
        ServeEngine::new(config, Box::new(DreamScheduler::new(DreamConfig::full())))
            .expect("soak config is valid");
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());

    // ---- Phase 1: channel soak ----
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let producers: Vec<_> = (0..CHANNEL_PRODUCERS)
        .map(|p| {
            let client = handle.client(format!("channel:soak-{p}"));
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // ShedOldest never blocks: the queue absorbs or sheds.
                    client
                        .submit(PipelineId((sent % 2) as usize), NodeId(0))
                        .expect("ingress open during the soak");
                    sent += 1;
                }
                sent
            })
        })
        .collect();
    std::thread::sleep(CHANNEL_SOAK);
    stop.store(true, Ordering::Relaxed);
    let submitted: u64 = producers
        .into_iter()
        .map(|p| p.join().expect("producer"))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    let channel_rps = submitted as f64 / elapsed;

    let snap = snapshots
        .wait_for_update(Duration::from_secs(5))
        .expect("serving loop publishes snapshots");
    println!(
        "channel soak: {submitted} submitted in {elapsed:.2} s  →  {channel_rps:.0} req/s \
         (admitted {}, shed {}, backlog {} ≤ cap 4096, ready {}, running {})",
        snap.admitted, snap.shed, snap.ingress_backlog, snap.ready_tasks, snap.running_layers,
    );
    assert!(
        channel_rps >= REQUIRED_CHANNEL_RPS,
        "channel ingress must sustain ≥ {REQUIRED_CHANNEL_RPS:.0} req/s, measured {channel_rps:.0}"
    );
    assert!(snap.ingress_backlog <= 4096, "ingress queue stays bounded");
    assert!(
        snap.shed > 0,
        "overload must surface as observable shed counters"
    );
    assert!(
        snap.ready_tasks < 20_000,
        "engine queues stay bounded under overload (ready = {})",
        snap.ready_tasks
    );

    // ---- Phase 2: socket soak ----
    let (addr, socket_server) = listen_tcp(&handle, "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = BufWriter::new(stream);
    let start = Instant::now();
    for i in 0..SOCKET_LINES {
        writeln!(writer, "r {} 0", i % 2).expect("write");
    }
    writer.flush().expect("flush");
    let write_elapsed = start.elapsed().as_secs_f64();
    // Wait until the connection thread has parsed and forwarded the lines.
    let deadline = Instant::now() + Duration::from_secs(30);
    let socket_submitted = loop {
        let sources = snapshots
            .wait_for_update(Duration::from_millis(500))
            .map(|s| s.sources.clone())
            .unwrap_or_default();
        let n: u64 = sources
            .iter()
            .filter(|s| s.label.starts_with("tcp:"))
            .map(|s| s.submitted)
            .sum();
        if n >= SOCKET_LINES as u64 || Instant::now() > deadline {
            break n;
        }
    };
    let parse_elapsed = start.elapsed().as_secs_f64();
    println!(
        "socket soak: {SOCKET_LINES} lines written in {write_elapsed:.2} s \
         ({:.0} lines/s), {socket_submitted} parsed+queued in {parse_elapsed:.2} s \
         ({:.0} req/s)",
        SOCKET_LINES as f64 / write_elapsed,
        socket_submitted as f64 / parse_elapsed,
    );
    assert!(
        socket_submitted >= SOCKET_LINES as u64,
        "every socket line must reach the ingress"
    );

    // ---- Drain and report ----
    handle.drain();
    let report = server
        .join()
        .expect("server thread")
        .expect("session completes");
    socket_server.shutdown();
    let total_shed: u64 = report.sources.iter().map(|s| s.shed).sum();
    let total_admitted: u64 = report.sources.iter().map(|s| s.admitted).sum();
    let total_rejected: u64 = report
        .sources
        .iter()
        .map(|s| s.rejected_capacity + s.rejected_invalid + s.rejected_closed)
        .sum();
    println!(
        "drained after {} ticks: admitted {total_admitted}, shed {total_shed}, rejected {total_rejected}, \
         {} arrivals recorded, {} layers executed",
        report.ticks,
        report.record.trace().len(),
        report.outcome.metrics().layer_executions,
    );
    assert_eq!(total_admitted, report.record.trace().len() as u64);
    assert!(report.outcome.metrics().layer_executions > 0);

    // ---- Phase 3: multi-session stepping soak ----
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let horizon = SimTime::from(Millis::new(MULTI_HORIZON_MS));
    let start = Instant::now();
    let mut multi =
        MultiSessionBuilder::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario)
            .horizon_cap(SimTime::from(Millis::new(MULTI_HORIZON_MS + 100)))
            .start(MULTI_SESSIONS, |_| {
                Box::new(DreamScheduler::new(DreamConfig::full()))
            })
            .expect("multi-session soak config is valid");
    let roots: Vec<(dream_sim::ModelKey, u64)> = multi
        .workload()
        .nodes()
        .filter(|n| n.key().phase == 0 && n.parent().is_none())
        .map(|n| (n.key(), n.period().as_ns()))
        .collect();
    let slice = SimTime::from(Millis::new(10));
    let mut frontier = SimTime::ZERO;
    let mut next: Vec<Vec<u64>> = (0..MULTI_SESSIONS)
        .map(|s| vec![s as u64 * 1_000; roots.len()])
        .collect();
    while frontier < horizon {
        let end = (frontier + slice).min(horizon);
        for (s, stamps) in next.iter_mut().enumerate() {
            for (r, stamp) in stamps.iter_mut().enumerate() {
                let (key, period) = roots[r];
                while *stamp < end.as_ns() {
                    multi
                        .admit(s, key.pipeline, key.node, SimTime::from_ns(*stamp))
                        .expect("soak admission is valid");
                    *stamp += period;
                }
            }
        }
        multi.step_until(end);
        frontier = end;
    }
    let outcomes = multi.finish().expect("soak sessions finish");
    let wall_s = start.elapsed().as_secs_f64();
    let events: u64 = outcomes
        .iter()
        .map(|(o, _)| o.metrics().events_processed)
        .sum();
    let virtual_s: f64 = outcomes
        .iter()
        .map(|(o, _)| o.final_time().as_ns_f64() / 1e9)
        .sum();
    let sessions_per_core = virtual_s / wall_s;
    println!(
        "multi-session soak: {MULTI_SESSIONS} DREAM sessions × {MULTI_HORIZON_MS} ms on one \
         shard — {events} events in {wall_s:.2} s ({:.0} events/s aggregate), \
         {sessions_per_core:.0} sessions/core",
        events as f64 / wall_s,
    );
    assert!(
        sessions_per_core >= REQUIRED_SESSIONS_PER_CORE,
        "one core must sustain ≥ {REQUIRED_SESSIONS_PER_CORE:.0} always-on sessions, \
         measured {sessions_per_core:.0}"
    );

    println!(
        "live_soak ok: channel {channel_rps:.0} req/s (floor {REQUIRED_CHANNEL_RPS:.0}), \
         shed/reject observable, queues bounded, \
         {sessions_per_core:.0} sessions/core (floor {REQUIRED_SESSIONS_PER_CORE:.0})"
    );
}
