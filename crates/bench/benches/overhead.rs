//! **§5.2 (scheduler overhead)** — criterion micro-benchmarks backing the
//! paper's claim that DREAM's machinery is lightweight: MapScore
//! computation, full scheduling decisions, cost-model queries, and
//! end-to-end simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dream_baselines::{FcfsScheduler, PlanariaScheduler, VeltairScheduler};
use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{CostModel, Platform, PlatformPreset};
use dream_models::{zoo, CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, Scheduler, SimulationBuilder};
use std::hint::black_box;

fn bench_cost_model(c: &mut Criterion) {
    let model = CostModel::paper_default();
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let net = zoo::ssd_mobilenet_v2("bench");
    let layers = net.default_variant().layers();
    c.bench_function("cost_model/ssd_all_layers_one_acc", |b| {
        b.iter(|| {
            let acc = &platform.accelerators()[0];
            let total: f64 = layers
                .iter()
                .map(|l| model.layer_cost(black_box(l), acc).latency_ns)
                .sum();
            black_box(total)
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_250ms_ar_social");
    group.sample_size(20);
    let run = |scheduler: &mut dyn Scheduler| {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(ScenarioKind::ArSocial, CascadeProbability::default_paper());
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(250))
            .seed(1)
            .run(scheduler)
            .expect("bench sims are valid")
            .into_metrics()
            .layer_executions
    };
    group.bench_function("dream_full", |b| {
        b.iter(|| {
            let mut s = DreamScheduler::new(DreamConfig::full());
            black_box(run(&mut s))
        })
    });
    group.bench_function("fcfs", |b| {
        b.iter(|| {
            let mut s = FcfsScheduler::new();
            black_box(run(&mut s))
        })
    });
    group.bench_function("veltair", |b| {
        b.iter(|| {
            let mut s = VeltairScheduler::new();
            black_box(run(&mut s))
        })
    });
    group.bench_function("planaria", |b| {
        b.iter(|| {
            let mut s = PlanariaScheduler::new();
            black_box(run(&mut s))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model, bench_simulation);
criterion_main!(benches);
