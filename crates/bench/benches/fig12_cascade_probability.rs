//! **Figure 12** — UXCost as the ML-cascade probability sweeps from 50% to
//! 99% for VR_Gaming and AR_Social on the 4K heterogeneous platforms.
//!
//! Paper result: DREAM consistently beats the baselines and the gap widens
//! under heavy load; smart frame drop and supernet switching contribute
//! most at 99%.

use dream_bench::{write_csv, DreamVariant, ExperimentGrid, RunSpec, SchedulerKind, Table};
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

const SEEDS: u64 = 3;

fn main() {
    let schedulers = [
        SchedulerKind::Fcfs,
        SchedulerKind::Veltair,
        SchedulerKind::Planaria,
        SchedulerKind::DreamTuned(DreamVariant::MapScore),
        SchedulerKind::DreamTuned(DreamVariant::SmartDrop),
        SchedulerKind::DreamTuned(DreamVariant::Full),
    ];
    // The full sweep — including per-(scenario, platform, cascade) offline
    // tuning for the DREAM rows — fans out across the thread pool at once.
    let mut grid = ExperimentGrid::new();
    for preset in [
        PlatformPreset::Hetero4kWs1Os2,
        PlatformPreset::Hetero4kOs1Ws2,
    ] {
        for scenario in [ScenarioKind::VrGaming, ScenarioKind::ArSocial] {
            for cascade in [0.5, 0.7, 0.9, 0.99] {
                for kind in schedulers {
                    grid.add_seed_sweep(
                        RunSpec::new(kind, scenario, preset).with_cascade(cascade),
                        SEEDS,
                    );
                }
            }
        }
    }
    let results = grid.run();

    let mut table = Table::new(
        "Figure 12: UXCost vs cascade probability (4K heterogeneous)",
        &[
            "platform",
            "scenario",
            "cascade_%",
            "scheduler",
            "uxcost",
            "dlv_rate",
            "drops",
        ],
    );
    for r in results.averaged() {
        let spec = &r.runs[0].spec;
        table.row([
            spec.preset.name().to_string(),
            spec.scenario.name().to_string(),
            format!("{:.0}", spec.cascade * 100.0),
            r.scheduler_name.clone(),
            format!("{:.4}", r.uxcost),
            format!("{:.4}", r.mean_violation_rate),
            format!("{:.1}", r.drops),
        ]);
    }
    table.print();
    println!("paper: DREAM cuts UXCost by up to ~90% vs baselines at 99% cascade probability");
    let path = write_csv("fig12_cascade_probability", &table);
    println!("csv: {}", path.display());
}
