//! **Figure 8** — UXCost on the four *homogeneous* platforms.
//!
//! Paper results reproduced here: (a/b) DREAM still wins on constrained 4K
//! homogeneous platforms, (c) with abundant 8K resources the DREAM variants
//! coincide (smart drop and supernet switching cost nothing when unneeded)
//! and the scheduler gap narrows.

use dream_bench::{geomean, write_csv, ExperimentGrid, SchedulerKind, Table};
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;

const SEEDS: u64 = 3;

fn main() {
    let mut grid = ExperimentGrid::new();
    grid.add_product(
        &PlatformPreset::homogeneous(),
        &ScenarioKind::all(),
        &SchedulerKind::figure7_set(),
        SEEDS,
    );
    let results = grid.run();

    let mut table = Table::new(
        "Figure 8: UXCost on homogeneous platforms",
        &[
            "platform",
            "scenario",
            "scheduler",
            "uxcost",
            "dlv_rate",
            "norm_energy",
        ],
    );
    let mut hetero_gap: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    let mut dream_variants_8k: Vec<(String, f64)> = Vec::new();
    for r in results.averaged() {
        let spec = &r.runs[0].spec;
        hetero_gap
            .entry(r.scheduler_name.clone())
            .or_default()
            .push(r.uxcost);
        if spec.preset.total_pes() == 8192 && r.scheduler_name.starts_with("DREAM") {
            dream_variants_8k.push((r.scheduler_name.clone(), r.uxcost));
        }
        table.row([
            spec.preset.name().to_string(),
            spec.scenario.name().to_string(),
            r.scheduler_name.clone(),
            format!("{:.4}", r.uxcost),
            format!("{:.4}", r.mean_violation_rate),
            format!("{:.4}", r.mean_norm_energy),
        ]);
    }
    table.print();

    let mut summary = Table::new(
        "Figure 8 summary: geomean UXCost across homogeneous platforms × scenarios",
        &["scheduler", "geomean_uxcost"],
    );
    for (name, costs) in &hetero_gap {
        summary.row([name.clone(), format!("{:.4}", geomean(costs))]);
    }
    summary.print();

    // Figure 8(c) claim: on 8K platforms the three DREAM variants coincide.
    let mut by_cell: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for (name, v) in &dream_variants_8k {
        by_cell.entry(name.clone()).or_default().push(*v);
    }
    if let (Some(ms), Some(full)) = (by_cell.get("DREAM-MapScore"), by_cell.get("DREAM-Full")) {
        let g_ms = geomean(ms);
        let g_full = geomean(full);
        println!(
            "8K DREAM-MapScore geomean {:.4} vs DREAM-Full {:.4} (paper Fig 8c: no difference)",
            g_ms, g_full
        );
    }
    let path = write_csv("fig08_homogeneous", &table);
    println!("csv: {}", path.display());
}
