//! Scheduler-decision hot-path micro-benchmark: events/sec through
//! `DreamScheduler::schedule` under the AR-call scenario, the loop the
//! DREAM paper requires to be cheap enough to run per event (§4,
//! Algorithm 1).
//!
//! Writes `BENCH_hotpath.json` at the workspace root so successive PRs
//! can track the perf trajectory of the hot path (schema documented in
//! `crates/bench/README.md`; `scripts/check_hotpath.sh` gates CI on the
//! `decisions_per_sec` field). The gated decision rate comes from the
//! best uninstrumented rep; one extra instrumented rep records the
//! per-stage split (MapScore table build vs. greedy matching vs. engine
//! stepping) and supplies `events_per_sec` from that same timed region,
//! so the event rate and the stage numbers always describe one run.

// Benchmarks measure wall time by definition; exempt from the
// workspace determinism lint on wall-clock reads.
#![allow(clippy::disallowed_methods)]
use std::path::PathBuf;
use std::time::Instant;

use dream_bench::shared_workload;
use dream_core::{DreamConfig, DreamScheduler, StageTimings};
use dream_cost::{CostModel, Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, SimulationBuilder};

const HORIZON_MS: u64 = 2_000;
const REPS: u32 = 5;

struct Sample {
    events: u64,
    decisions: u64,
    layers: u64,
    wall_s: f64,
    timings: Option<StageTimings>,
}

fn run_once(seed: u64, instrument: bool) -> Sample {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    // Reps share the offline tables through the process-wide cache, the
    // way experiment-grid cells now do; the timed section covers engine
    // setup + the full event loop, not the one-time table build.
    let tables = shared_workload(
        ScenarioKind::ArCall,
        PlatformPreset::Hetero4kWs1Os2,
        CascadeProbability::default_paper().value(),
        HORIZON_MS,
        std::sync::Arc::new(CostModel::paper_default()),
    );
    let mut sched = DreamScheduler::new(DreamConfig::mapscore());
    if instrument {
        sched.enable_stage_timing();
    }
    let start = Instant::now();
    let metrics = SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(HORIZON_MS))
        .seed(seed)
        .prebuilt_workload(tables)
        .run(&mut sched)
        .expect("hot-path bench sim is valid")
        .into_metrics();
    Sample {
        events: metrics.events_processed,
        decisions: metrics.scheduler_invocations,
        layers: metrics.layer_executions,
        wall_s: start.elapsed().as_secs_f64(),
        timings: sched.stage_timings(),
    }
}

fn main() {
    // Warm up allocator + cost tables once before timing.
    let _ = run_once(0, false);

    // Keep the recorded counts and rates from the same (best) rep so the
    // JSON numbers are mutually consistent across PR-to-PR comparisons.
    let mut best: Option<Sample> = None;
    for rep in 0..REPS {
        let s = run_once(u64::from(rep), false);
        let dps = s.decisions as f64 / s.wall_s;
        println!(
            "rep {rep}: {} events, {} decisions, {} layers in {:.1} ms  →  {:.0} events/s, {:.0} decisions/s",
            s.events,
            s.decisions,
            s.layers,
            s.wall_s * 1e3,
            s.events as f64 / s.wall_s,
            dps,
        );
        if best
            .as_ref()
            .map(|b| dps > b.decisions as f64 / b.wall_s)
            .unwrap_or(true)
        {
            best = Some(s);
        }
    }
    let best = best.expect("at least one rep ran");
    let decisions_per_sec = best.decisions as f64 / best.wall_s;
    println!(
        "hotpath: DreamScheduler::schedule on AR_Call — best {decisions_per_sec:.0} decisions/s",
    );

    // One instrumented rep for the stage split. Timer reads add overhead,
    // so this rep never contributes to the gated decision rate; the
    // engine share is the wall time minus the measured scheduler time.
    // `events_per_sec` is derived from this same timed region so it and
    // the `stages` block always describe one run (they used to come from
    // different reps and could drift apart).
    let probe = run_once(0, true);
    let t = probe.timings.expect("instrumentation was enabled");
    let per = |ns: u64| ns as f64 / t.invocations.max(1) as f64;
    let wall_ns = probe.wall_s * 1e9;
    let engine_ns_total = (wall_ns - t.total_ns() as f64).max(0.0);
    let engine_ns_per_event = engine_ns_total / probe.events.max(1) as f64;
    let events_per_sec = probe.events as f64 / probe.wall_s;
    println!(
        "instrumented rep: {:.0} events/s (same timed region as the stage split)",
        events_per_sec,
    );
    println!(
        "stages (instrumented rep): score build {:.0} ns/decision, matching {:.0} ns/decision, \
         scheduler other {:.0} ns/decision, engine stepping {:.0} ns/event",
        per(t.score_build_ns),
        per(t.matching_ns),
        per(t.other_ns),
        engine_ns_per_event,
    );

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"scenario\": \"AR_Call\",\n  \"scheduler\": \"DREAM-MapScore\",\n  \"horizon_ms\": {HORIZON_MS},\n  \"events\": {},\n  \"decisions\": {},\n  \"layer_executions\": {},\n  \"events_per_sec\": {events_per_sec:.0},\n  \"decisions_per_sec\": {decisions_per_sec:.0},\n  \"stages\": {{\n    \"score_build_ns_per_decision\": {:.1},\n    \"matching_ns_per_decision\": {:.1},\n    \"scheduler_other_ns_per_decision\": {:.1},\n    \"engine_stepping_ns_per_event\": {:.1}\n  }}\n}}\n",
        probe.events,
        best.decisions,
        best.layers,
        per(t.score_build_ns),
        per(t.matching_ns),
        per(t.other_ns),
        engine_ns_per_event,
    );
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_hotpath.json"]
        .iter()
        .collect();
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
