//! Scheduler-decision hot-path micro-benchmark: events/sec through
//! `DreamScheduler::schedule` under the AR-call scenario, the loop the
//! DREAM paper requires to be cheap enough to run per event (§4,
//! Algorithm 1).
//!
//! Writes `BENCH_hotpath.json` at the workspace root so successive PRs
//! can track the perf trajectory of the hot path.

use std::path::PathBuf;
use std::time::Instant;

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, SimulationBuilder};

const HORIZON_MS: u64 = 2_000;
const REPS: u32 = 5;

struct Sample {
    events: u64,
    decisions: u64,
    layers: u64,
    wall_s: f64,
}

fn run_once(seed: u64) -> Sample {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut sched = DreamScheduler::new(DreamConfig::mapscore());
    let start = Instant::now();
    let metrics = SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(HORIZON_MS))
        .seed(seed)
        .run(&mut sched)
        .expect("hot-path bench sim is valid")
        .into_metrics();
    Sample {
        events: metrics.events_processed,
        decisions: metrics.scheduler_invocations,
        layers: metrics.layer_executions,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    // Warm up allocator + cost tables once before timing.
    let _ = run_once(0);

    // Keep the recorded counts and rates from the same (best) rep so the
    // JSON numbers are mutually consistent across PR-to-PR comparisons.
    let mut best: Option<Sample> = None;
    for rep in 0..REPS {
        let s = run_once(u64::from(rep));
        let eps = s.events as f64 / s.wall_s;
        println!(
            "rep {rep}: {} events, {} decisions, {} layers in {:.1} ms  →  {:.0} events/s, {:.0} decisions/s",
            s.events,
            s.decisions,
            s.layers,
            s.wall_s * 1e3,
            eps,
            s.decisions as f64 / s.wall_s
        );
        if best
            .as_ref()
            .map(|b| eps > b.events as f64 / b.wall_s)
            .unwrap_or(true)
        {
            best = Some(s);
        }
    }
    let best = best.expect("at least one rep ran");
    let events_per_sec = best.events as f64 / best.wall_s;
    let decisions_per_sec = best.decisions as f64 / best.wall_s;
    println!(
        "hotpath: DreamScheduler::schedule on AR_Call — best {events_per_sec:.0} events/s, {decisions_per_sec:.0} decisions/s",
    );

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"scenario\": \"AR_Call\",\n  \"scheduler\": \"DREAM-MapScore\",\n  \"horizon_ms\": {HORIZON_MS},\n  \"events\": {},\n  \"decisions\": {},\n  \"layer_executions\": {},\n  \"events_per_sec\": {events_per_sec:.0},\n  \"decisions_per_sec\": {decisions_per_sec:.0}\n}}\n",
        best.events, best.decisions, best.layers
    );
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_hotpath.json"]
        .iter()
        .collect();
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
