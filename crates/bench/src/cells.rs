//! Wire-shippable experiment cells: the bridge between
//! [`RunSpec`](crate::RunSpec) and `dream-serve`'s protocol-schema
//! [`CellSpec`], plus the [`CellRunner`] a worker node plugs into its
//! listener so a coordinator can ship it grid cells over protocol v1.
//!
//! The conversion is deliberately *partial*: recorded-trace arrivals
//! and custom cost backends carry process-local state (an
//! `Arc<ArrivalTrace>`, an `Arc<dyn CostBackend>`) that does not travel
//! over the wire, so specs using them are refused at conversion time
//! rather than silently approximated — a worker must never run a cell
//! that is not bit-identical to what the coordinator would run locally.

use dream_core::ScoreParams;
use dream_cost::PlatformPreset;
use dream_serve::{
    parse_scenario_kind, CellArrival, CellDreamVariant, CellOutcome, CellRunner, CellScheduler,
    CellSpec,
};
use dream_sim::{ArrivalTrace, SimTime};

use crate::runner::{run_spec, ArrivalConfig, CostConfig, DreamVariant, RunSpec, SchedulerKind};

/// Converts a local [`RunSpec`] into its wire form, tagged with the
/// cell's global grid `index` (the merge identity).
///
/// # Errors
///
/// A human-readable reason when the spec is not wire-shippable
/// (recorded-trace arrivals, custom cost backends).
pub fn to_cell_spec(index: u64, spec: &RunSpec) -> Result<CellSpec, String> {
    let scheduler = match &spec.scheduler {
        SchedulerKind::Fcfs => CellScheduler::Fcfs,
        SchedulerKind::Static => CellScheduler::Static,
        SchedulerKind::Edf => CellScheduler::Edf,
        SchedulerKind::Veltair => CellScheduler::Veltair,
        SchedulerKind::Planaria => CellScheduler::Planaria,
        SchedulerKind::DreamFixed(variant, params) => CellScheduler::DreamFixed {
            variant: variant_to_wire(*variant),
            alpha: params.alpha(),
            beta: params.beta(),
        },
        SchedulerKind::DreamTuned(variant) => CellScheduler::DreamTuned {
            variant: variant_to_wire(*variant),
        },
    };
    let arrival = match &spec.arrival {
        ArrivalConfig::Periodic => CellArrival::Periodic,
        ArrivalConfig::Poisson { intensity } => CellArrival::Poisson {
            intensity: *intensity,
        },
        ArrivalConfig::Mmpp {
            calm,
            burst,
            p_enter,
            p_exit,
        } => CellArrival::Mmpp {
            calm: *calm,
            burst: *burst,
            p_enter: *p_enter,
            p_exit: *p_exit,
        },
        ArrivalConfig::Trace(t) => {
            return Err(format!(
                "recorded-trace arrivals ({}) are not wire-shippable",
                t.name()
            ))
        }
    };
    if !matches!(spec.cost, CostConfig::Analytical) {
        return Err("custom cost backends are not wire-shippable".into());
    }
    Ok(CellSpec {
        index,
        scheduler,
        scenario: spec.scenario.name().to_string(),
        preset: spec.preset.name().to_string(),
        cascade: spec.cascade,
        duration_ms: spec.duration_ms,
        seed: spec.seed,
        arrival,
    })
}

/// Reconstructs the local [`RunSpec`] a wire [`CellSpec`] denotes —
/// the inverse of [`to_cell_spec`] (bit-exact: every float travels by
/// bit pattern).
///
/// # Errors
///
/// A human-readable reason when a name or parameter does not resolve.
pub fn from_cell_spec(cell: &CellSpec) -> Result<RunSpec, String> {
    let scenario = parse_scenario_kind(&cell.scenario)
        .ok_or_else(|| format!("unknown scenario {:?}", cell.scenario))?;
    let preset = PlatformPreset::all()
        .into_iter()
        .find(|p| p.name() == cell.preset)
        .ok_or_else(|| format!("unknown platform preset {:?}", cell.preset))?;
    let scheduler = match cell.scheduler {
        CellScheduler::Fcfs => SchedulerKind::Fcfs,
        CellScheduler::Static => SchedulerKind::Static,
        CellScheduler::Edf => SchedulerKind::Edf,
        CellScheduler::Veltair => SchedulerKind::Veltair,
        CellScheduler::Planaria => SchedulerKind::Planaria,
        CellScheduler::DreamFixed {
            variant,
            alpha,
            beta,
        } => SchedulerKind::DreamFixed(
            variant_from_wire(variant),
            ScoreParams::new(alpha, beta).map_err(|e| format!("bad score params: {e}"))?,
        ),
        CellScheduler::DreamTuned { variant } => {
            SchedulerKind::DreamTuned(variant_from_wire(variant))
        }
    };
    let arrival = match cell.arrival {
        CellArrival::Periodic => ArrivalConfig::Periodic,
        CellArrival::Poisson { intensity } => ArrivalConfig::Poisson { intensity },
        CellArrival::Mmpp {
            calm,
            burst,
            p_enter,
            p_exit,
        } => ArrivalConfig::Mmpp {
            calm,
            burst,
            p_enter,
            p_exit,
        },
    };
    Ok(RunSpec {
        scheduler,
        scenario,
        preset,
        cascade: cell.cascade,
        duration_ms: cell.duration_ms,
        seed: cell.seed,
        arrival,
        cost: CostConfig::Analytical,
    })
}

fn variant_to_wire(v: DreamVariant) -> CellDreamVariant {
    match v {
        DreamVariant::MapScore => CellDreamVariant::MapScore,
        DreamVariant::SmartDrop => CellDreamVariant::SmartDrop,
        DreamVariant::Full => CellDreamVariant::Full,
    }
}

fn variant_from_wire(v: CellDreamVariant) -> DreamVariant {
    match v {
        CellDreamVariant::MapScore => DreamVariant::MapScore,
        CellDreamVariant::SmartDrop => DreamVariant::SmartDrop,
        CellDreamVariant::Full => DreamVariant::Full,
    }
}

/// Runs one wire cell to its outcome. When `record_trace` is set, the
/// cell's arrival stream is additionally materialized offline
/// ([`ArrivalTrace::record`]) and shipped back as CSV for merged-trace
/// auditing.
///
/// # Errors
///
/// Conversion failures from [`from_cell_spec`].
pub fn run_cell(cell: &CellSpec, record_trace: bool) -> Result<CellOutcome, String> {
    let spec = from_cell_spec(cell)?;
    dream_models::CascadeProbability::new(spec.cascade)
        .map_err(|e| format!("invalid cascade: {e}"))?;
    let result = run_spec(&spec);
    let trace_csv = if record_trace {
        let workload = crate::shared_workload(
            spec.scenario,
            spec.preset,
            spec.cascade,
            spec.duration_ms,
            spec.cost.backend(),
        );
        let mut source = spec.arrival.source();
        ArrivalTrace::record(
            format!("cell{}", cell.index),
            workload.as_ref(),
            SimTime::from_ns(spec.duration_ms.saturating_mul(1_000_000)),
            spec.seed,
            source.as_mut(),
        )
        .to_csv()
    } else {
        String::new()
    };
    Ok(CellOutcome {
        index: cell.index,
        fingerprint: result.metrics.fingerprint(),
        uxcost: result.uxcost,
        mean_violation_rate: result.mean_violation_rate,
        mean_norm_energy: result.mean_norm_energy,
        trace_csv,
    })
}

/// The [`CellRunner`] worker nodes plug into their listener: executes
/// each shipped cell through the same [`run_spec`] path as the local
/// [`ExperimentGrid`](crate::ExperimentGrid), so a worker's
/// fingerprints are bit-identical to a single-process run of the same
/// cells.
#[derive(Debug, Default, Clone, Copy)]
pub struct GridCellRunner;

impl CellRunner for GridCellRunner {
    fn run_cells(
        &self,
        cells: &[CellSpec],
        record_traces: bool,
    ) -> Result<Vec<CellOutcome>, String> {
        cells
            .iter()
            .map(|cell| run_cell(cell, record_traces))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::PlatformPreset;
    use dream_models::ScenarioKind;

    #[test]
    fn cell_spec_round_trips_bit_exactly() {
        let spec = RunSpec::new(
            SchedulerKind::DreamFixed(DreamVariant::Full, ScoreParams::new(0.7, 0.3).unwrap()),
            ScenarioKind::VrGaming,
            PlatformPreset::Hetero4kWs1Os2,
        )
        .with_cascade(0.25)
        .with_duration_ms(300)
        .with_seed(7)
        .with_arrivals(ArrivalConfig::Mmpp {
            calm: 0.8,
            burst: 2.5,
            p_enter: 0.1,
            p_exit: 0.4,
        });
        let cell = to_cell_spec(42, &spec).unwrap();
        assert_eq!(cell.index, 42);
        let back = from_cell_spec(&cell).unwrap();
        assert_eq!(back, spec);
        // And the wire round trip of the round trip is stable too.
        assert_eq!(to_cell_spec(42, &back).unwrap(), cell);
    }

    #[test]
    fn local_state_is_refused_not_approximated() {
        let spec = RunSpec::new(
            SchedulerKind::Fcfs,
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
        )
        .with_arrivals(ArrivalConfig::Trace(std::sync::Arc::new(
            ArrivalTrace::from_events("t", Vec::new()),
        )));
        assert!(to_cell_spec(0, &spec).unwrap_err().contains("trace"));
    }

    #[test]
    fn run_cell_matches_local_run_spec() {
        let spec = RunSpec::new(
            SchedulerKind::Fcfs,
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
        )
        .with_duration_ms(200);
        let cell = to_cell_spec(0, &spec).unwrap();
        let outcome = run_cell(&cell, false).unwrap();
        let local = run_spec(&spec);
        assert_eq!(outcome.fingerprint, local.metrics.fingerprint());
        assert_eq!(outcome.uxcost.to_bits(), local.uxcost.to_bits());
    }
}
