use std::sync::Arc;

use dream_baselines::{
    EdfScheduler, FcfsScheduler, PlanariaScheduler, StaticScheduler, VeltairScheduler,
};
use dream_core::{DreamConfig, DreamScheduler, ScoreParams, UxCostReport};
use dream_cost::{CostBackend, CostModel, Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{
    ArrivalSource, ArrivalTrace, Metrics, Millis, MmppArrivals, PeriodicArrivals, PoissonArrivals,
    Scheduler, SimulationBuilder, TraceArrivals,
};

/// Which DREAM ablation level to run (the paper's Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DreamVariant {
    /// Score-driven dispatch with tuned (α, β).
    MapScore,
    /// MapScore + smart frame drop.
    SmartDrop,
    /// MapScore + smart frame drop + supernet switching.
    Full,
}

impl DreamVariant {
    /// Builds the matching [`DreamConfig`].
    pub fn config(self) -> DreamConfig {
        match self {
            DreamVariant::MapScore => DreamConfig::mapscore(),
            DreamVariant::SmartDrop => DreamConfig::smart_drop(),
            DreamVariant::Full => DreamConfig::full(),
        }
    }

    /// Table 4 name.
    pub fn name(self) -> &'static str {
        match self {
            DreamVariant::MapScore => "DREAM-MapScore",
            DreamVariant::SmartDrop => "DREAM-SmartDrop",
            DreamVariant::Full => "DREAM-Full",
        }
    }
}

/// Which scheduler a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Dynamic first-come-first-served (model granularity).
    Fcfs,
    /// Offline worst-case static scheduler (Figure 2).
    Static,
    /// Plain earliest-deadline-first (extra reference point).
    Edf,
    /// Veltair-style layer-block scheduler.
    Veltair,
    /// Planaria-style spatial-fission scheduler.
    Planaria,
    /// DREAM with explicit fixed parameters (no offline tuning).
    DreamFixed(DreamVariant, ScoreParams),
    /// DREAM with offline-tuned parameters (tuned per scenario × platform
    /// × cascade, cached within the process).
    DreamTuned(DreamVariant),
}

impl SchedulerKind {
    /// Display name used in tables.
    pub fn name(&self) -> String {
        match self {
            SchedulerKind::Fcfs => "FCFS".into(),
            SchedulerKind::Static => "Static".into(),
            SchedulerKind::Edf => "EDF".into(),
            SchedulerKind::Veltair => "Veltair".into(),
            SchedulerKind::Planaria => "Planaria".into(),
            SchedulerKind::DreamFixed(v, p) => format!("{}{}", v.name(), p),
            SchedulerKind::DreamTuned(v) => v.name().into(),
        }
    }

    /// The paper's three baselines plus the three DREAM levels — the
    /// scheduler set of Figures 7 and 8.
    pub fn figure7_set() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Fcfs,
            SchedulerKind::Veltair,
            SchedulerKind::Planaria,
            SchedulerKind::DreamTuned(DreamVariant::MapScore),
            SchedulerKind::DreamTuned(DreamVariant::SmartDrop),
            SchedulerKind::DreamTuned(DreamVariant::Full),
        ]
    }
}

/// Which cost backend prices a run's layers and context switches — the
/// experiment-level face of the [`CostBackend`] seam.
///
/// Cell grouping and the shared-workload cache key compare configs by
/// [`digest`](Self::digest), which mixes the backend kind: an analytical
/// run and a table-import run never merge or alias, even when the table
/// is a bit-exact export of the analytical model.
#[derive(Debug, Clone, Default)]
pub enum CostConfig {
    /// The analytical model with the paper-default calibration.
    #[default]
    Analytical,
    /// An explicit backend — a re-calibrated [`CostModel`] or a loaded
    /// [`TableBackend`](dream_cost::TableBackend).
    Backend(Arc<dyn CostBackend>),
}

impl CostConfig {
    /// The backend this config resolves to.
    pub fn backend(&self) -> Arc<dyn CostBackend> {
        match self {
            CostConfig::Analytical => Arc::new(CostModel::paper_default()),
            CostConfig::Backend(b) => Arc::clone(b),
        }
    }

    /// The backend's calibration digest — the identity cache keys and
    /// cell grouping use.
    pub fn digest(&self) -> u64 {
        match self {
            CostConfig::Analytical => CostModel::paper_default().calibration_digest(),
            CostConfig::Backend(b) => b.calibration_digest(),
        }
    }
}

impl PartialEq for CostConfig {
    fn eq(&self, other: &Self) -> bool {
        self.digest() == other.digest()
    }
}

/// How a run's root frames arrive — the experiment-level face of the
/// simulator's [`ArrivalSource`](dream_sim::ArrivalSource) seam.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ArrivalConfig {
    /// The paper's fixed-FPS pipelines (the default).
    #[default]
    Periodic,
    /// Open-loop Poisson traffic at `intensity` × the nominal rate.
    Poisson {
        /// Rate multiplier (1.0 = nominal load in expectation).
        intensity: f64,
    },
    /// Bursty two-state MMPP traffic (see
    /// [`MmppArrivals`](dream_sim::MmppArrivals)).
    Mmpp {
        /// Calm-state intensity multiplier.
        calm: f64,
        /// Burst-state intensity multiplier.
        burst: f64,
        /// Per-frame probability of entering a burst.
        p_enter: f64,
        /// Per-frame probability of leaving a burst.
        p_exit: f64,
    },
    /// Replay of a recorded request trace.
    Trace(Arc<ArrivalTrace>),
}

impl ArrivalConfig {
    /// A short human-readable label for tables. Lossy (floats are
    /// rounded) — cell grouping uses [`group_key`](Self::group_key).
    pub fn label(&self) -> String {
        match self {
            ArrivalConfig::Periodic => "periodic".into(),
            ArrivalConfig::Poisson { intensity } => format!("poisson x{intensity:.2}"),
            ArrivalConfig::Mmpp { calm, burst, .. } => format!("mmpp {calm:.2}/{burst:.2}"),
            ArrivalConfig::Trace(t) => {
                format!("trace:{}#{}@{:08x}", t.name(), t.len(), t.digest() as u32)
            }
        }
    }

    /// An exact grouping key: every parameter by bit pattern (traces by
    /// content digest), so two configs that merely *format* identically
    /// never merge into one averaged cell.
    pub fn group_key(&self) -> String {
        match self {
            ArrivalConfig::Periodic => "periodic".into(),
            ArrivalConfig::Poisson { intensity } => {
                format!("poisson:{:016x}", intensity.to_bits())
            }
            ArrivalConfig::Mmpp {
                calm,
                burst,
                p_enter,
                p_exit,
            } => format!(
                "mmpp:{:016x}:{:016x}:{:016x}:{:016x}",
                calm.to_bits(),
                burst.to_bits(),
                p_enter.to_bits(),
                p_exit.to_bits()
            ),
            ArrivalConfig::Trace(t) => format!("trace:{:016x}:{}", t.digest(), t.len()),
        }
    }

    /// Builds a fresh arrival source equivalent to this config — the
    /// seam offline trace recording ([`ArrivalTrace::record`]) and the
    /// distributed cell runner use to materialize a run's stream.
    pub fn source(&self) -> Box<dyn ArrivalSource> {
        match self {
            ArrivalConfig::Periodic => Box::new(PeriodicArrivals),
            ArrivalConfig::Poisson { intensity } => Box::new(PoissonArrivals::new(*intensity)),
            ArrivalConfig::Mmpp {
                calm,
                burst,
                p_enter,
                p_exit,
            } => Box::new(MmppArrivals::new(*calm, *burst, *p_enter, *p_exit)),
            ArrivalConfig::Trace(trace) => Box::new(TraceArrivals::new(trace.clone())),
        }
    }

    /// Applies this config to a simulation builder.
    fn apply(&self, builder: SimulationBuilder) -> SimulationBuilder {
        match self {
            ArrivalConfig::Periodic => builder,
            ArrivalConfig::Poisson { intensity } => {
                builder.arrivals(PoissonArrivals::new(*intensity))
            }
            ArrivalConfig::Mmpp {
                calm,
                burst,
                p_enter,
                p_exit,
            } => builder.arrivals(MmppArrivals::new(*calm, *burst, *p_enter, *p_exit)),
            ArrivalConfig::Trace(trace) => builder.arrivals(TraceArrivals::new(trace.clone())),
        }
    }
}

/// A fully specified simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Workload scenario.
    pub scenario: ScenarioKind,
    /// Hardware platform.
    pub preset: PlatformPreset,
    /// Cascade probability on control-dependent edges.
    pub cascade: f64,
    /// Measurement horizon in milliseconds.
    pub duration_ms: u64,
    /// Workload-realization seed.
    pub seed: u64,
    /// Arrival stream feeding the run.
    pub arrival: ArrivalConfig,
    /// Cost backend pricing the run.
    pub cost: CostConfig,
}

impl RunSpec {
    /// A spec with the paper's defaults (50% cascade, 2 s window).
    pub fn new(scheduler: SchedulerKind, scenario: ScenarioKind, preset: PlatformPreset) -> Self {
        RunSpec {
            scheduler,
            scenario,
            preset,
            cascade: 0.5,
            duration_ms: crate::DEFAULT_DURATION_MS,
            seed: crate::DEFAULT_SEED,
            arrival: ArrivalConfig::Periodic,
            cost: CostConfig::Analytical,
        }
    }

    /// Overrides the arrival stream (default: periodic).
    pub fn with_arrivals(mut self, arrival: ArrivalConfig) -> Self {
        self.arrival = arrival;
        self
    }

    /// Overrides the cost backend (default: the analytical model with
    /// paper calibration).
    pub fn with_cost_backend(mut self, backend: Arc<dyn CostBackend>) -> Self {
        self.cost = CostConfig::Backend(backend);
        self
    }

    /// Overrides the cascade probability.
    pub fn with_cascade(mut self, p: f64) -> Self {
        self.cascade = p;
        self
    }

    /// Overrides the duration.
    pub fn with_duration_ms(mut self, ms: u64) -> Self {
        self.duration_ms = ms;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that produced this result.
    pub spec: RunSpec,
    /// Scheduler display name.
    pub scheduler_name: String,
    /// UXCost (Algorithm 2).
    pub uxcost: f64,
    /// Σ per-model deadline-violation rates (with floor).
    pub overall_rate_dlv: f64,
    /// Σ per-model normalised energies.
    pub overall_norm_energy: f64,
    /// Mean raw violation rate in `[0, 1]` (Figure 2/7 violation axis).
    pub mean_violation_rate: f64,
    /// Mean normalised energy in `[0, 1]` (Figure 7 energy axis).
    pub mean_norm_energy: f64,
    /// Mean accelerator utilisation.
    pub utilization: f64,
    /// Frames dropped by the scheduler.
    pub drops: u64,
    /// Supernet variant execution histogram (empty when no supernet ran).
    pub variant_runs: Vec<u64>,
    /// Context switches charged.
    pub context_switches: u64,
    /// Median per-request sojourn time (ms); `None` when nothing completed.
    pub sojourn_p50_ms: Option<f64>,
    /// 95th-percentile per-request sojourn time (ms).
    pub sojourn_p95_ms: Option<f64>,
    /// 99th-percentile per-request sojourn time (ms).
    pub sojourn_p99_ms: Option<f64>,
    /// Full metrics for custom analyses.
    pub metrics: Metrics,
}

/// Runs one spec to completion.
///
/// # Panics
///
/// Panics if the spec is internally inconsistent (invalid cascade
/// probability) — experiment code treats that as a programming error.
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let cascade =
        CascadeProbability::new(spec.cascade).expect("experiment cascade probabilities are valid");
    let platform = Platform::preset(spec.preset);
    let scenario = Scenario::new(spec.scenario, cascade);
    // Cells sharing (scenario, platform, cascade, duration, cost backend)
    // — every seed of a sweep, every scheduler of a row — share one built
    // workload instead of rebuilding the offline tables per cell.
    let backend = spec.cost.backend();
    let workload = crate::shared_workload(
        spec.scenario,
        spec.preset,
        spec.cascade,
        spec.duration_ms,
        Arc::clone(&backend),
    );
    let builder = spec.arrival.apply(
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(spec.duration_ms))
            .seed(spec.seed)
            .cost_backend(backend)
            .prebuilt_workload(workload),
    );

    let mut fcfs;
    let mut statik;
    let mut edf;
    let mut veltair;
    let mut planaria;
    let mut dream;
    let scheduler: &mut dyn Scheduler = match &spec.scheduler {
        SchedulerKind::Fcfs => {
            fcfs = FcfsScheduler::new();
            &mut fcfs
        }
        SchedulerKind::Static => {
            statik = StaticScheduler::new();
            &mut statik
        }
        SchedulerKind::Edf => {
            edf = EdfScheduler::new();
            &mut edf
        }
        SchedulerKind::Veltair => {
            veltair = VeltairScheduler::new();
            &mut veltair
        }
        SchedulerKind::Planaria => {
            planaria = PlanariaScheduler::new();
            &mut planaria
        }
        SchedulerKind::DreamFixed(variant, params) => {
            dream = DreamScheduler::new(variant.config().with_params(*params));
            &mut dream
        }
        SchedulerKind::DreamTuned(variant) => {
            let params = crate::tuned_params_cached(
                spec.scenario,
                spec.preset,
                spec.cascade,
                *variant,
                &spec.cost,
            );
            dream = DreamScheduler::new(variant.config().with_params(params));
            &mut dream
        }
    };

    let name = scheduler.name().to_string();
    let metrics = builder
        .run(scheduler)
        .expect("experiment specs are valid simulations")
        .into_metrics();
    let report = UxCostReport::from_metrics(&metrics);
    let sojourn = metrics.sojourn_percentiles_ms(&[0.50, 0.95, 0.99]);
    let variant_runs = metrics
        .models()
        .find(|(_, s)| s.variant_runs.len() > 1)
        .map(|(_, s)| s.variant_runs.clone())
        .unwrap_or_default();
    RunResult {
        spec: spec.clone(),
        scheduler_name: name,
        uxcost: report.uxcost(),
        overall_rate_dlv: report.overall_rate_dlv(),
        overall_norm_energy: report.overall_norm_energy(),
        mean_violation_rate: metrics.mean_violation_rate(),
        mean_norm_energy: metrics.mean_normalized_energy(),
        utilization: metrics.mean_utilization(),
        drops: metrics.models().map(|(_, s)| s.dropped).sum(),
        variant_runs,
        context_switches: metrics.context_switches,
        sojourn_p50_ms: sojourn[0],
        sojourn_p95_ms: sojourn[1],
        sojourn_p99_ms: sojourn[2],
        metrics,
    }
}

/// Maps `f` over `items` with scoped threads (one per available core),
/// preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_threads(items, 0, f)
}

/// [`parallel_map`] with an explicit worker count (0 = one per available
/// core). Output order is the input order regardless of `workers`.
pub fn parallel_map_threads<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
    } else {
        workers
    }
    .min(items.len().max(1));
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every item was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_produces_consistent_report() {
        let spec = RunSpec::new(
            SchedulerKind::Fcfs,
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
        )
        .with_duration_ms(300);
        let r = run_spec(&spec);
        assert!((r.uxcost - r.overall_rate_dlv * r.overall_norm_energy).abs() < 1e-12);
        assert_eq!(r.scheduler_name, "FCFS");
        assert!(r.utilization > 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn arrival_group_key_is_exact_where_label_is_lossy() {
        let a = ArrivalConfig::Poisson { intensity: 1.001 };
        let b = ArrivalConfig::Poisson { intensity: 1.004 };
        assert_eq!(a.label(), b.label(), "labels round for display");
        assert_ne!(a.group_key(), b.group_key(), "grouping must not merge");
        let m1 = ArrivalConfig::Mmpp {
            calm: 0.8,
            burst: 2.5,
            p_enter: 0.1,
            p_exit: 0.4,
        };
        let m2 = ArrivalConfig::Mmpp {
            calm: 0.8,
            burst: 2.5,
            p_enter: 0.5,
            p_exit: 0.1,
        };
        assert_eq!(m1.label(), m2.label());
        assert_ne!(m1.group_key(), m2.group_key());
        assert_eq!(ArrivalConfig::Periodic.group_key(), "periodic");
    }

    #[test]
    fn scheduler_kind_names() {
        assert_eq!(SchedulerKind::Fcfs.name(), "FCFS");
        assert_eq!(
            SchedulerKind::DreamTuned(DreamVariant::Full).name(),
            "DREAM-Full"
        );
        assert_eq!(SchedulerKind::figure7_set().len(), 6);
    }
}

/// Seed-averaged results: the per-seed [`RunResult`]s plus the means the
/// figures report. Averaging over workload realizations smooths the
/// lock-in effects that make single 2-second windows volatile.
#[derive(Debug, Clone)]
pub struct AveragedResult {
    /// Scheduler display name.
    pub scheduler_name: String,
    /// Mean UXCost across seeds.
    pub uxcost: f64,
    /// Mean raw violation rate across seeds.
    pub mean_violation_rate: f64,
    /// Mean normalised energy across seeds.
    pub mean_norm_energy: f64,
    /// Mean drops across seeds.
    pub drops: f64,
    /// Mean p50 sojourn (ms) across the seeds that completed frames.
    pub sojourn_p50_ms: Option<f64>,
    /// Mean p95 sojourn (ms) across the seeds that completed frames.
    pub sojourn_p95_ms: Option<f64>,
    /// Mean p99 sojourn (ms) across the seeds that completed frames.
    pub sojourn_p99_ms: Option<f64>,
    /// Element-wise mean of the supernet variant histogram (empty when no
    /// supernet ran).
    pub variant_shares: Vec<f64>,
    /// The per-seed results.
    pub runs: Vec<RunResult>,
}

/// Runs `spec` under `n_seeds` consecutive seeds (spec.seed, spec.seed+1, …)
/// and averages the headline numbers.
///
/// Implemented on top of [`ExperimentGrid`](crate::ExperimentGrid); prefer
/// building one grid for a whole figure so every cell fans out together.
///
/// # Panics
///
/// Panics if `n_seeds` is zero.
pub fn run_averaged(spec: &RunSpec, n_seeds: u64) -> AveragedResult {
    assert!(n_seeds > 0, "need at least one seed");
    let mut grid = crate::ExperimentGrid::new();
    grid.add_seed_sweep(spec.clone(), n_seeds);
    grid.run()
        .averaged()
        .pop()
        .expect("a non-empty grid yields one group")
}

/// Averages a group of per-seed runs into the numbers the figures report.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub(crate) fn average_runs(runs: Vec<RunResult>) -> AveragedResult {
    assert!(!runs.is_empty(), "need at least one run to average");
    let n = runs.len() as f64;
    let uxcost = runs.iter().map(|r| r.uxcost).sum::<f64>() / n;
    let mean_violation_rate = runs.iter().map(|r| r.mean_violation_rate).sum::<f64>() / n;
    let mean_norm_energy = runs.iter().map(|r| r.mean_norm_energy).sum::<f64>() / n;
    let drops = runs.iter().map(|r| r.drops as f64).sum::<f64>() / n;
    let mean_opt = |f: fn(&RunResult) -> Option<f64>| {
        let vals: Vec<f64> = runs.iter().filter_map(f).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    let sojourn_p50_ms = mean_opt(|r| r.sojourn_p50_ms);
    let sojourn_p95_ms = mean_opt(|r| r.sojourn_p95_ms);
    let sojourn_p99_ms = mean_opt(|r| r.sojourn_p99_ms);
    let hist_len = runs.iter().map(|r| r.variant_runs.len()).max().unwrap_or(0);
    let mut variant_shares = vec![0.0; hist_len];
    for r in &runs {
        let total: u64 = r.variant_runs.iter().sum();
        if total == 0 {
            continue;
        }
        for (i, &v) in r.variant_runs.iter().enumerate() {
            variant_shares[i] += v as f64 / total as f64 / n;
        }
    }
    AveragedResult {
        scheduler_name: runs[0].scheduler_name.clone(),
        uxcost,
        mean_violation_rate,
        mean_norm_energy,
        drops,
        sojourn_p50_ms,
        sojourn_p95_ms,
        sojourn_p99_ms,
        variant_shares,
        runs,
    }
}
