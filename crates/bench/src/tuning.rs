use std::collections::BTreeMap;
use std::sync::Mutex;

use dream_core::{DreamScheduler, ObjectiveKind, ParamOptimizer, ScoreParams};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, SimulationBuilder};

use crate::DreamVariant;

/// Offline (α, β) tuning: runs the §3.6 radius-shrinking search where each
/// candidate is evaluated by a full (shorter-horizon) simulation of the
/// same scenario/platform under the *target* DREAM configuration,
/// minimising `objective`. Tuning against the deployed configuration
/// matters: the frame-drop and supernet engines change the dynamics the
/// parameters must match.
///
/// The tuning simulations use a different seed than the measurement runs so
/// parameters are not fitted to the evaluated realization.
pub fn tune_params(
    scenario: ScenarioKind,
    preset: PlatformPreset,
    cascade: f64,
    variant: DreamVariant,
    objective: ObjectiveKind,
) -> ScoreParams {
    let evaluate_seed = |params: ScoreParams, seed: u64| {
        let platform = Platform::preset(preset);
        let workload = Scenario::new(
            scenario,
            CascadeProbability::new(cascade).expect("tuning cascade is valid"),
        );
        let mut sched = DreamScheduler::new(variant.config().with_params(params));
        let metrics = SimulationBuilder::new(platform, workload)
            .duration(Millis::new(800))
            .seed(seed)
            .run(&mut sched)
            .expect("tuning simulations are valid")
            .into_metrics();
        objective.evaluate(&metrics)
    };
    // Two workload realizations per candidate halve the variance the sharp
    // UXCost landscape induces; tuning seeds are disjoint from measurement
    // seeds.
    let trace = ParamOptimizer::new(ScoreParams::neutral()).run(|params| {
        0.5 * (evaluate_seed(params, crate::DEFAULT_SEED ^ 0xA5A5)
            + evaluate_seed(params, crate::DEFAULT_SEED ^ 0x5A5A))
    });
    trace.final_params
}

type TuneKey = (ScenarioKind, PlatformPreset, u64, DreamVariant);

static CACHE: Mutex<BTreeMap<TuneKey, ScoreParams>> = Mutex::new(BTreeMap::new());

/// [`tune_params`] with a process-wide cache (UXCost objective), so sweeps
/// that revisit the same (scenario, platform, cascade, variant) key tune
/// only once.
pub fn tuned_params_cached(
    scenario: ScenarioKind,
    preset: PlatformPreset,
    cascade: f64,
    variant: DreamVariant,
) -> ScoreParams {
    let key = (
        scenario,
        preset,
        (cascade * 1.0e6).round() as u64,
        variant,
    );
    if let Some(p) = CACHE.lock().expect("tuning cache poisoned").get(&key) {
        return *p;
    }
    let params = tune_params(scenario, preset, cascade, variant, ObjectiveKind::UxCost);
    CACHE
        .lock()
        .expect("tuning cache poisoned")
        .insert(key, params);
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_identical_params() {
        let a = tuned_params_cached(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            DreamVariant::MapScore,
        );
        let b = tuned_params_cached(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            DreamVariant::MapScore,
        );
        assert_eq!(a, b);
        assert!((0.0..=2.0).contains(&a.alpha()));
        assert!((0.0..=2.0).contains(&a.beta()));
    }
}
