use std::collections::BTreeMap;
use std::sync::Mutex;

use dream_core::{DreamScheduler, ObjectiveKind, ParamOptimizer, ScoreParams};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, SimulationBuilder};

use crate::{CostConfig, DreamVariant};

/// Offline (α, β) tuning: runs the §3.6 radius-shrinking search where each
/// candidate is evaluated by a full (shorter-horizon) simulation of the
/// same scenario/platform under the *target* DREAM configuration,
/// minimising `objective`. Tuning against the deployed configuration
/// matters: the frame-drop and supernet engines change the dynamics the
/// parameters must match — and the tuning simulations price with the
/// *deployment's* cost backend (`cost`), so parameters fitted for a
/// table-imported calibration track that table, not the analytical model
/// it may have diverged from.
///
/// The tuning simulations use a different seed than the measurement runs so
/// parameters are not fitted to the evaluated realization.
pub fn tune_params(
    scenario: ScenarioKind,
    preset: PlatformPreset,
    cascade: f64,
    variant: DreamVariant,
    objective: ObjectiveKind,
    cost: &CostConfig,
) -> ScoreParams {
    const TUNING_HORIZON_MS: u64 = 800;
    let evaluate_seed = |params: ScoreParams, seed: u64| {
        let platform = Platform::preset(preset);
        let workload = Scenario::new(
            scenario,
            CascadeProbability::new(cascade).expect("tuning cascade is valid"),
        );
        let backend = cost.backend();
        let tables = crate::shared_workload(
            scenario,
            preset,
            cascade,
            TUNING_HORIZON_MS,
            std::sync::Arc::clone(&backend),
        );
        let mut sched = DreamScheduler::new(variant.config().with_params(params));
        let metrics = SimulationBuilder::new(platform, workload)
            .duration(Millis::new(TUNING_HORIZON_MS))
            .seed(seed)
            .cost_backend(backend)
            .prebuilt_workload(tables)
            .run(&mut sched)
            .expect("tuning simulations are valid")
            .into_metrics();
        objective.evaluate(&metrics)
    };
    // Two workload realizations per candidate halve the variance the sharp
    // UXCost landscape induces; tuning seeds are disjoint from measurement
    // seeds. Each step's (candidate × seed) evaluations are independent
    // simulations, so they fan out across the thread pool together.
    let seeds = [crate::DEFAULT_SEED ^ 0xA5A5, crate::DEFAULT_SEED ^ 0x5A5A];
    let trace = ParamOptimizer::new(ScoreParams::neutral()).run_batched(|candidates| {
        let jobs: Vec<(ScoreParams, u64)> = candidates
            .iter()
            .flat_map(|&p| seeds.iter().map(move |&s| (p, s)))
            .collect();
        let costs = crate::parallel_map(jobs, |&(p, seed)| evaluate_seed(p, seed));
        costs
            .chunks(seeds.len())
            .map(|c| c.iter().sum::<f64>() / seeds.len() as f64)
            .collect()
    });
    trace.final_params
}

/// The cache key: everything the tuned parameters depend on, including
/// the backend's calibration digest — an analytical deployment and a
/// table import never share a tuning entry, even when the table is a
/// bit-exact export (the digest mixes the backend kind).
type TuneKey = (ScenarioKind, PlatformPreset, u64, DreamVariant, u64);

/// Canonical integer key for a cascade probability, shared by the tuning
/// cache and the grid's tune-dedup/cell grouping so the two can never
/// disagree about which cells are "the same".
pub(crate) fn cascade_key(cascade: f64) -> u64 {
    (cascade * 1.0e6).round() as u64
}

static CACHE: Mutex<BTreeMap<TuneKey, ScoreParams>> = Mutex::new(BTreeMap::new());

/// [`tune_params`] with a process-wide cache (UXCost objective), so sweeps
/// that revisit the same (scenario, platform, cascade, variant, backend)
/// key tune only once.
pub fn tuned_params_cached(
    scenario: ScenarioKind,
    preset: PlatformPreset,
    cascade: f64,
    variant: DreamVariant,
    cost: &CostConfig,
) -> ScoreParams {
    let key = (
        scenario,
        preset,
        cascade_key(cascade),
        variant,
        cost.digest(),
    );
    if let Some(p) = CACHE.lock().expect("tuning cache poisoned").get(&key) {
        return *p;
    }
    let params = tune_params(
        scenario,
        preset,
        cascade,
        variant,
        ObjectiveKind::UxCost,
        cost,
    );
    CACHE
        .lock()
        .expect("tuning cache poisoned")
        .insert(key, params);
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_identical_params() {
        let a = tuned_params_cached(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            DreamVariant::MapScore,
            &CostConfig::Analytical,
        );
        let b = tuned_params_cached(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            DreamVariant::MapScore,
            &CostConfig::Analytical,
        );
        assert_eq!(a, b);
        assert!((0.0..=2.0).contains(&a.alpha()));
        assert!((0.0..=2.0).contains(&a.beta()));
    }

    /// Backends occupy distinct tuning-cache entries (keyed by
    /// calibration digest), and a bit-exact table export tunes to the
    /// *identical* parameters — the tuning simulations under the imported
    /// table are bit-identical to the analytical ones, so the radius
    /// search walks the same path.
    #[test]
    fn table_backend_tunes_separately_but_bit_identically() {
        use dream_cost::{CostModel, TableBackend};
        use dream_sim::Millis;

        let scenario = ScenarioKind::ArCall;
        let preset = PlatformPreset::Homo4kWs2;
        let analytical = CostModel::paper_default();
        let platform = Platform::preset(preset);
        let ws = SimulationBuilder::new(
            platform.clone(),
            Scenario::new(scenario, CascadeProbability::new(0.5).unwrap()),
        )
        .duration(Millis::new(100))
        .build_workload()
        .unwrap();
        let table =
            TableBackend::derive("tuning-test", &analytical, &platform, ws.layers()).unwrap();
        let table_cfg = CostConfig::Backend(std::sync::Arc::new(table));
        assert_ne!(
            table_cfg.digest(),
            CostConfig::Analytical.digest(),
            "export must not impersonate its source backend"
        );
        let tuned_analytical = tuned_params_cached(
            scenario,
            preset,
            0.5,
            DreamVariant::MapScore,
            &CostConfig::Analytical,
        );
        let tuned_table =
            tuned_params_cached(scenario, preset, 0.5, DreamVariant::MapScore, &table_cfg);
        assert_eq!(
            tuned_analytical, tuned_table,
            "a bit-exact table import must tune to the identical (α, β)"
        );
    }
}
