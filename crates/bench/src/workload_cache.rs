//! Process-wide cache of built [`WorkloadSet`]s.
//!
//! Building a workload resolves every (layer, accelerator) cost pair plus
//! the precomputed MapScore tables — identical work for every
//! [`ExperimentGrid`](crate::ExperimentGrid) cell that shares a
//! (scenario, platform, cascade, duration, cost backend) tuple, which
//! is *every seed* of a seed sweep and every scheduler of a comparison
//! row. Sharing one `Arc<WorkloadSet>` across those cells makes per-cell
//! setup O(1) and is behaviourally invisible: a built workload is a pure
//! function of the key, so prebuilt and fresh runs are bit-identical
//! (asserted by the determinism tests).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dream_cost::{CostBackend, Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Millis, SimulationBuilder, WorkloadSet};

/// Everything the offline tables depend on: scenario realization inputs
/// (cascade by exact bit pattern — rounding would alias nearby
/// probabilities onto one realization), the platform, and the backend's
/// calibration digest — which mixes the backend *kind*, so an analytical
/// model and a table import can never alias one cache entry even if
/// their parameter bits coincide. The engine validates prebuilt
/// workloads against the same digest
/// ([`dream_cost::CostBackend::calibration_digest`]).
type WsKey = (ScenarioKind, PlatformPreset, u64, u64, u64);

static CACHE: Mutex<BTreeMap<WsKey, Arc<WorkloadSet>>> = Mutex::new(BTreeMap::new());

/// The shared offline tables for a single-phase run of `scenario` on
/// `preset` over `duration_ms` with the given cascade probability and
/// cost backend — built once per process and shared by reference.
///
/// # Panics
///
/// Panics on an invalid cascade probability or an unbuildable workload
/// (including a table backend that does not cover the scenario's
/// layers); experiment code treats both as programming errors.
pub fn shared_workload(
    scenario: ScenarioKind,
    preset: PlatformPreset,
    cascade: f64,
    duration_ms: u64,
    cost: Arc<dyn CostBackend>,
) -> Arc<WorkloadSet> {
    let key = (
        scenario,
        preset,
        cascade.to_bits(),
        duration_ms,
        cost.calibration_digest(),
    );
    if let Some(ws) = CACHE.lock().expect("workload cache poisoned").get(&key) {
        return Arc::clone(ws);
    }
    let platform = Platform::preset(preset);
    let realization = Scenario::new(
        scenario,
        CascadeProbability::new(cascade).expect("experiment cascade probabilities are valid"),
    );
    let ws = Arc::new(
        SimulationBuilder::new(platform, realization)
            .duration(Millis::new(duration_ms))
            .cost_backend(cost)
            .build_workload()
            .expect("experiment workloads are buildable"),
    );
    // A racing builder may have inserted first; keep whichever won so
    // every caller shares one allocation.
    Arc::clone(
        CACHE
            .lock()
            .expect("workload cache poisoned")
            .entry(key)
            .or_insert(ws),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{CostModel, TableBackend};

    fn analytical() -> Arc<dyn CostBackend> {
        Arc::new(CostModel::paper_default())
    }

    #[test]
    fn cache_returns_the_same_allocation() {
        let a = shared_workload(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            300,
            analytical(),
        );
        let b = shared_workload(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            300,
            analytical(),
        );
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        let c = shared_workload(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            301,
            analytical(),
        );
        assert!(!Arc::ptr_eq(&a, &c), "different durations are distinct");
    }

    #[test]
    fn custom_cost_calibrations_never_collide_with_defaults() {
        let mut params = dream_cost::CostParams::paper_defaults();
        params.dram_energy_pj_per_byte *= 2.0;
        let custom = CostModel::new(params).unwrap();
        let a = shared_workload(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            300,
            analytical(),
        );
        let b = shared_workload(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            300,
            Arc::new(custom),
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(
            a.switch_energy_pj_per_byte(dream_cost::AcceleratorId(0)),
            b.switch_energy_pj_per_byte(dream_cost::AcceleratorId(0)),
        );
    }

    /// Two *backends* never alias a cache entry, even when one is a
    /// bit-exact table export of the other: the digest mixes the backend
    /// kind, so the cells stay distinct while their tables carry
    /// identical numbers.
    #[test]
    fn distinct_backends_never_alias_a_cache_entry() {
        let analytical_ws = shared_workload(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            250,
            analytical(),
        );
        let model = CostModel::paper_default();
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let table = TableBackend::derive(
            "cache-alias-check",
            &model,
            &platform,
            analytical_ws.layers(),
        )
        .unwrap();
        assert_ne!(
            table.calibration_digest(),
            model.calibration_digest(),
            "a table export must not impersonate its source backend"
        );
        let table_ws = shared_workload(
            ScenarioKind::ArCall,
            PlatformPreset::Homo4kWs2,
            0.5,
            250,
            Arc::new(table),
        );
        assert!(
            !Arc::ptr_eq(&analytical_ws, &table_ws),
            "backends must not share a cache entry"
        );
        // …even though the exported numbers are bit-identical.
        assert_eq!(
            analytical_ws
                .switch_energy_pj_per_byte(dream_cost::AcceleratorId(0))
                .to_bits(),
            table_ws
                .switch_energy_pj_per_byte(dream_cost::AcceleratorId(0))
                .to_bits(),
        );
    }
}
