//! Shared experiment harness for regenerating every table and figure of the
//! DREAM paper. Each `benches/figNN_*.rs` target builds [`RunSpec`]s into an
//! [`ExperimentGrid`], fans the whole (scheduler × scenario × platform ×
//! seed) grid out across a thread pool, and prints the same rows/series the
//! paper reports. Grid aggregation is deterministic and seed-keyed: the
//! same grid yields bit-identical metrics for 1 and N worker threads.
//! Beyond the paper's fixed-FPS pipelines, [`ArrivalConfig`] points a cell
//! at Poisson/MMPP/trace-driven traffic (the `served_traffic` bench). Raw
//! CSVs land in `artifacts/experiments/` at the workspace root (override
//! with `DREAM_ARTIFACTS_DIR`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod grid;
mod report;
mod runner;
mod tuning;
mod workload_cache;

pub use cells::{from_cell_spec, run_cell, to_cell_spec, GridCellRunner};
pub use grid::{ExperimentGrid, GridResults};
pub use report::{artifacts_dir, csv_path, geomean, write_csv, Table};
pub use runner::{
    parallel_map, parallel_map_threads, run_averaged, run_spec, ArrivalConfig, AveragedResult,
    CostConfig, DreamVariant, RunResult, RunSpec, SchedulerKind,
};
pub use tuning::{tune_params, tuned_params_cached};
pub use workload_cache::shared_workload;

/// The paper's default evaluation window (§3.6 mentions 2 s windows).
pub const DEFAULT_DURATION_MS: u64 = 2_000;

/// The default workload-realization seed used across experiments.
pub const DEFAULT_SEED: u64 = 2024;
