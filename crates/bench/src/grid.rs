//! The parallel experiment-grid runner.
//!
//! Every figure and table of the paper is a cartesian grid of
//! (scheduler × scenario × platform × cascade × seed) cells, and each
//! cell is an independent deterministic simulation. [`ExperimentGrid`]
//! collects the cells up front and fans them out across a scoped thread
//! pool; results come back keyed by their position in the grid, so the
//! aggregate is **bit-identical for any thread count** — including one.
//!
//! Offline tuning for `DreamTuned` cells is hoisted out of the fan-out:
//! distinct tuning keys are resolved first (themselves in parallel, each
//! tuning run deterministic), so worker threads never race to tune the
//! same cell twice.

use std::collections::{BTreeMap, BTreeSet};

use dream_models::ScenarioKind;

use crate::runner::{average_runs, AveragedResult, RunResult, RunSpec, SchedulerKind};
use crate::{parallel_map_threads, run_spec};

/// A grid of fully specified runs executed across a thread pool.
#[derive(Debug, Clone, Default)]
pub struct ExperimentGrid {
    specs: Vec<RunSpec>,
    threads: usize,
}

impl ExperimentGrid {
    /// An empty grid using one worker per available core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the worker count (0 = one per available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Adds one cell.
    pub fn push(&mut self, spec: RunSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Adds many cells.
    pub fn extend(&mut self, specs: impl IntoIterator<Item = RunSpec>) -> &mut Self {
        self.specs.extend(specs);
        self
    }

    /// Adds `spec` under `n_seeds` consecutive seeds
    /// (`spec.seed`, `spec.seed + 1`, …) — the paper's
    /// workload-realization averaging.
    pub fn add_seed_sweep(&mut self, spec: RunSpec, n_seeds: u64) -> &mut Self {
        for i in 0..n_seeds {
            self.specs.push(spec.clone().with_seed(spec.seed + i));
        }
        self
    }

    /// Adds the full cartesian product
    /// `presets × scenarios × schedulers × n_seeds` with the paper's
    /// default cascade/duration — the shape of the Figure 7/8 grids.
    pub fn add_product(
        &mut self,
        presets: &[dream_cost::PlatformPreset],
        scenarios: &[ScenarioKind],
        schedulers: &[SchedulerKind],
        n_seeds: u64,
    ) -> &mut Self {
        for &preset in presets {
            for &scenario in scenarios {
                for scheduler in schedulers {
                    self.add_seed_sweep(RunSpec::new(*scheduler, scenario, preset), n_seeds);
                }
            }
        }
        self
    }

    /// The cells added so far, in run order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Runs every cell and returns results in grid order.
    ///
    /// Aggregated output is a pure function of the specs and their seeds:
    /// the thread count only changes wall-clock time, never a number.
    pub fn run(&self) -> GridResults {
        // Hoist offline tuning: resolve each distinct tuning key once
        // before the measurement fan-out, so workers never race to tune
        // the same cell. Keys run serially here — each `tune_params` call
        // already fans its (candidate × seed) simulations out across the
        // full thread pool, and nesting a second pool on top would
        // oversubscribe the machine by up to cores².
        let mut seen: BTreeSet<(
            ScenarioKind,
            dream_cost::PlatformPreset,
            u64,
            crate::DreamVariant,
            u64,
        )> = BTreeSet::new();
        for spec in &self.specs {
            if let SchedulerKind::DreamTuned(variant) = &spec.scheduler {
                let key = (
                    spec.scenario,
                    spec.preset,
                    crate::tuning::cascade_key(spec.cascade),
                    *variant,
                    spec.cost.digest(),
                );
                if seen.insert(key) {
                    crate::tuned_params_cached(
                        spec.scenario,
                        spec.preset,
                        spec.cascade,
                        *variant,
                        &spec.cost,
                    );
                }
            }
        }

        let runs = parallel_map_threads(self.specs.clone(), self.threads, run_spec);
        GridResults { runs }
    }
}

/// The results of an [`ExperimentGrid`] run, in grid order.
#[derive(Debug, Clone)]
pub struct GridResults {
    runs: Vec<RunResult>,
}

impl GridResults {
    /// Per-cell results, in the order the specs were added.
    pub fn runs(&self) -> &[RunResult] {
        &self.runs
    }

    /// Consumes the results.
    pub fn into_runs(self) -> Vec<RunResult> {
        self.runs
    }

    /// Seed-averaged results: cells identical up to their seed are grouped
    /// (in first-appearance order) and averaged, mirroring
    /// [`run_averaged`](crate::run_averaged).
    pub fn averaged(&self) -> Vec<AveragedResult> {
        let mut order: Vec<CellKey> = Vec::new();
        let mut groups: BTreeMap<CellKey, Vec<RunResult>> = BTreeMap::new();
        for run in &self.runs {
            let key = CellKey::of(&run.spec);
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(run.clone());
        }
        order
            .into_iter()
            .map(|key| average_runs(groups.remove(&key).expect("grouped above")))
            .collect()
    }

    /// The averaged result of the cell group containing `spec`
    /// (matching everything but the seed), if it ran.
    pub fn averaged_for(&self, spec: &RunSpec) -> Option<AveragedResult> {
        let key = CellKey::of(spec);
        let runs: Vec<RunResult> = self
            .runs
            .iter()
            .filter(|r| CellKey::of(&r.spec) == key)
            .cloned()
            .collect();
        if runs.is_empty() {
            None
        } else {
            Some(average_runs(runs))
        }
    }

    /// A deterministic digest over every cell's full metrics, in grid
    /// order — bit-identical across thread counts by construction, and
    /// the witness the determinism tests assert on.
    pub fn fingerprint(&self) -> u64 {
        let mut h = dream_sim::Fnv64::new();
        for run in &self.runs {
            h.mix(run.metrics.fingerprint());
        }
        h.finish()
    }
}

/// Everything that identifies a cell group except its seed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CellKey {
    scheduler: String,
    /// `DreamFixed` α/β by bit pattern, so two fixed-parameter cells that
    /// happen to format identically never merge into one group.
    params_bits: (u64, u64),
    scenario: ScenarioKind,
    preset_name: &'static str,
    cascade_micros: u64,
    duration_ms: u64,
    /// Exact arrival-stream key (parameters by bit pattern, traces by
    /// content digest).
    arrival: String,
    /// The cost backend's calibration digest — mixes the backend kind,
    /// so analytical cells and table-import cells never merge even when
    /// the table is a bit-exact export.
    cost_digest: u64,
}

impl CellKey {
    fn of(spec: &RunSpec) -> Self {
        let params_bits = match &spec.scheduler {
            SchedulerKind::DreamFixed(_, p) => (p.alpha().to_bits(), p.beta().to_bits()),
            _ => (0, 0),
        };
        CellKey {
            scheduler: spec.scheduler.name(),
            params_bits,
            scenario: spec.scenario,
            preset_name: spec.preset.name(),
            cascade_micros: crate::tuning::cascade_key(spec.cascade),
            duration_ms: spec.duration_ms,
            arrival: spec.arrival.group_key(),
            cost_digest: spec.cost.digest(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::PlatformPreset;

    fn small_grid() -> ExperimentGrid {
        let mut grid = ExperimentGrid::new();
        grid.add_product(
            &[PlatformPreset::Homo4kWs2],
            &[ScenarioKind::ArCall],
            &[SchedulerKind::Fcfs, SchedulerKind::Edf],
            2,
        );
        let mut short = ExperimentGrid::new();
        for spec in grid.specs() {
            short.push(spec.clone().with_duration_ms(200));
        }
        short
    }

    #[test]
    fn grid_results_keep_spec_order() {
        let grid = small_grid();
        assert_eq!(grid.len(), 4);
        let results = grid.run();
        for (spec, run) in grid.specs().iter().zip(results.runs()) {
            assert_eq!(spec, &run.spec);
        }
        // Two cell groups of two seeds each.
        let avg = results.averaged();
        assert_eq!(avg.len(), 2);
        assert_eq!(avg[0].scheduler_name, "FCFS");
        assert_eq!(avg[0].runs.len(), 2);
        assert!(results.averaged_for(&grid.specs()[0]).is_some());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let grid = small_grid();
        let serial = grid.clone().with_threads(1).run();
        let wide = grid.with_threads(4).run();
        assert_eq!(serial.fingerprint(), wide.fingerprint());
        for (a, b) in serial.runs().iter().zip(wide.runs()) {
            assert_eq!(a.metrics.fingerprint(), b.metrics.fingerprint());
            assert_eq!(a.uxcost, b.uxcost);
        }
    }
}
