use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned text table with CSV export — enough to print every
/// figure/table of the paper as rows and series.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().collect();
        debug_assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The CSV form (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// The artifact directory for `subdir` (e.g. `"experiments"`,
/// `"tables"`, `"sessions"`), created on first use: rooted at
/// `$DREAM_ARTIFACTS_DIR` when set, otherwise `artifacts/` at the
/// workspace root. Deliberately *not* under `target/`, so `cargo clean`
/// keeps results and build output never mingles with data (the directory
/// is gitignored). Every experiment, example, and recorder that writes
/// files goes through this one helper so the override works uniformly.
pub fn artifacts_dir(subdir: &str) -> PathBuf {
    let mut dir = std::env::var_os("DREAM_ARTIFACTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("artifacts")
        });
    dir.push(subdir);
    let _ = fs::create_dir_all(&dir);
    fs::canonicalize(&dir).unwrap_or(dir)
}

/// Where experiment CSVs are written: `<artifacts>/experiments/<name>.csv`
/// (see [`artifacts_dir`]).
pub fn csv_path(name: &str) -> PathBuf {
    let mut dir = artifacts_dir("experiments");
    dir.push(format!("{name}.csv"));
    dir
}

/// Writes a table's CSV next to the other experiment outputs and returns
/// the path (best effort — experiments must not fail on I/O).
pub fn write_csv(name: &str, table: &Table) -> PathBuf {
    let path = csv_path(name);
    if let Err(e) = fs::write(&path, table.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Geometric mean of positive values (the paper reports geomean
/// improvements).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.row(["1".to_string(), "2".to_string()]);
        t.row(["10".to_string(), "x,y".to_string()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("bee"));
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
