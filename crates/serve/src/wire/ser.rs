//! Encoding of v1 messages into frame payloads.
//!
//! The format is deliberately boring: every integer is little-endian
//! fixed width, `f64` travels as its `to_bits` u64 (bit-exact — NaN
//! payloads and signed zeros survive the trip, which the replay
//! fingerprints require), strings are `u32 LE` length + UTF-8 bytes,
//! `Option<u64>` is a one-byte presence tag then the value, and `Vec`
//! is a `u32 LE` count then the elements. No varints, no alignment, no
//! implicit defaults: what [`de`](crate::wire::de) reads is exactly
//! what this module wrote, byte for byte.

use dream_sim::FaultKind;

use super::{tag, CellArrival, CellDreamVariant, CellOutcome, CellScheduler, CellSpec};
use super::{Reply, Request, WireSnapshot};

/// An append-only payload builder.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    /// Starts a payload with its message tag.
    pub fn new(tag: u8) -> Self {
        Self { buf: vec![tag] }
    }

    /// Consumes the writer, yielding the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16 LE`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32 LE`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64 LE`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its bit pattern (`u64 LE`).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as `0`/`1`.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a string: `u32 LE` byte length + UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends an `Option<u64>`: presence byte then the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
        }
    }
}

fn put_fault(w: &mut FrameWriter, kind: &FaultKind) {
    match *kind {
        FaultKind::Fail => w.put_u8(tag::FAULT_FAIL),
        FaultKind::Stall { duration } => {
            w.put_u8(tag::FAULT_STALL);
            w.put_u64(duration.as_ns());
        }
        FaultKind::Slowdown { factor, duration } => {
            w.put_u8(tag::FAULT_SLOW);
            w.put_u64(duration.as_ns());
            w.put_f64(factor);
        }
    }
}

fn put_scheduler(w: &mut FrameWriter, s: &CellScheduler) {
    match *s {
        CellScheduler::Fcfs => w.put_u8(tag::SCHED_FCFS),
        CellScheduler::Static => w.put_u8(tag::SCHED_STATIC),
        CellScheduler::Edf => w.put_u8(tag::SCHED_EDF),
        CellScheduler::Veltair => w.put_u8(tag::SCHED_VELTAIR),
        CellScheduler::Planaria => w.put_u8(tag::SCHED_PLANARIA),
        CellScheduler::DreamFixed {
            variant,
            alpha,
            beta,
        } => {
            w.put_u8(tag::SCHED_DREAM_FIXED);
            put_variant(w, variant);
            w.put_f64(alpha);
            w.put_f64(beta);
        }
        CellScheduler::DreamTuned { variant } => {
            w.put_u8(tag::SCHED_DREAM_TUNED);
            put_variant(w, variant);
        }
    }
}

fn put_variant(w: &mut FrameWriter, v: CellDreamVariant) {
    w.put_u8(match v {
        CellDreamVariant::MapScore => tag::VARIANT_MAPSCORE,
        CellDreamVariant::SmartDrop => tag::VARIANT_SMARTDROP,
        CellDreamVariant::Full => tag::VARIANT_FULL,
    });
}

fn put_arrival(w: &mut FrameWriter, a: &CellArrival) {
    match *a {
        CellArrival::Periodic => w.put_u8(tag::ARRIVAL_PERIODIC),
        CellArrival::Poisson { intensity } => {
            w.put_u8(tag::ARRIVAL_POISSON);
            w.put_f64(intensity);
        }
        CellArrival::Mmpp {
            calm,
            burst,
            p_enter,
            p_exit,
        } => {
            w.put_u8(tag::ARRIVAL_MMPP);
            w.put_f64(calm);
            w.put_f64(burst);
            w.put_f64(p_enter);
            w.put_f64(p_exit);
        }
    }
}

fn put_cell_spec(w: &mut FrameWriter, c: &CellSpec) {
    w.put_u64(c.index);
    put_scheduler(w, &c.scheduler);
    w.put_str(&c.scenario);
    w.put_str(&c.preset);
    w.put_f64(c.cascade);
    w.put_u64(c.duration_ms);
    w.put_u64(c.seed);
    put_arrival(w, &c.arrival);
}

fn put_cell_outcome(w: &mut FrameWriter, o: &CellOutcome) {
    w.put_u64(o.index);
    w.put_u64(o.fingerprint);
    w.put_f64(o.uxcost);
    w.put_f64(o.mean_violation_rate);
    w.put_f64(o.mean_norm_energy);
    w.put_str(&o.trace_csv);
}

impl Request {
    /// Encodes this request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => FrameWriter::new(tag::PING).finish(),
            Request::Submit { pipeline, node, at } => {
                let mut w = FrameWriter::new(tag::SUBMIT);
                w.put_u64(pipeline.0 as u64);
                w.put_u64(node.0 as u64);
                w.put_opt_u64(at.map(|t| t.as_ns()));
                w.finish()
            }
            Request::Swap { scenario, cascade } => {
                let mut w = FrameWriter::new(tag::SWAP);
                w.put_str(scenario);
                w.put_f64(*cascade);
                w.finish()
            }
            Request::Fault { acc, kind, at } => {
                let mut w = FrameWriter::new(tag::FAULT);
                w.put_u64(acc.0 as u64);
                put_fault(&mut w, kind);
                w.put_opt_u64(at.map(|t| t.as_ns()));
                w.finish()
            }
            Request::Drain => FrameWriter::new(tag::DRAIN).finish(),
            Request::Snapshot => FrameWriter::new(tag::SNAPSHOT).finish(),
            Request::RunCells {
                record_traces,
                cells,
            } => {
                let mut w = FrameWriter::new(tag::RUN_CELLS);
                w.put_bool(*record_traces);
                w.put_u32(cells.len() as u32);
                for cell in cells {
                    put_cell_spec(&mut w, cell);
                }
                w.finish()
            }
        }
    }
}

impl Reply {
    /// Encodes this reply into a frame payload at the newest protocol
    /// generation ([`PROTOCOL_VERSION`](crate::wire::PROTOCOL_VERSION)).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(super::PROTOCOL_VERSION)
    }

    /// Encodes this reply for a peer that negotiated `version`. Only
    /// the snapshot reply is version-shaped: at v1 the fault counters
    /// and sojourn histogram are omitted (byte-identical to the
    /// original v1 wire format); every other reply is invariant.
    pub fn encode_versioned(&self, version: u16) -> Vec<u8> {
        match self {
            Reply::Ok => FrameWriter::new(tag::OK).finish(),
            Reply::Error { code, message } => {
                let mut w = FrameWriter::new(tag::ERROR);
                w.put_u8(code.as_u8());
                w.put_str(message);
                w.finish()
            }
            Reply::Snapshot(s) => {
                let mut w = FrameWriter::new(tag::SNAPSHOT_REPLY);
                put_snapshot(&mut w, s, version);
                w.finish()
            }
            Reply::CellsDone { outcomes } => {
                let mut w = FrameWriter::new(tag::CELLS_DONE);
                w.put_u32(outcomes.len() as u32);
                for outcome in outcomes {
                    put_cell_outcome(&mut w, outcome);
                }
                w.finish()
            }
        }
    }
}

fn put_snapshot(w: &mut FrameWriter, s: &WireSnapshot, version: u16) {
    w.put_u64(s.tick);
    w.put_u64(s.now_ns);
    w.put_u64(s.frontier_ns);
    w.put_u64(s.phase);
    w.put_bool(s.draining);
    w.put_u64(s.ingress_backlog);
    w.put_u64(s.event_backlog);
    w.put_u64(s.admitted);
    w.put_u64(s.shed);
    w.put_u64(s.rejected);
    w.put_u64(s.fingerprint);
    if version >= 2 {
        w.put_u64(s.faults_injected);
        w.put_u64(s.fault_requeues);
        w.put_u64(s.deadline_miss_under_faults);
        w.put_u32(s.sojourn_hist.len() as u32);
        for &(bucket, count) in &s.sojourn_hist {
            w.put_u32(bucket);
            w.put_u64(count);
        }
    }
}
