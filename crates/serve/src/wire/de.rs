//! Total, typed decoding of v1 frame payloads.
//!
//! Decoding never panics and never trusts a length it hasn't checked
//! against the bytes actually present: every read is bounds-checked,
//! every tag is matched exhaustively, and a payload must be consumed
//! *exactly* — trailing bytes are an error, not slack. Fault requests
//! are additionally validated with
//! [`validate_fault`](crate::wire::validate_fault) at decode time, so
//! the framed face rejects degenerate fault parameters with the same
//! typed errors as the line parser.

use dream_cost::AcceleratorId;
use dream_models::{NodeId, PipelineId};
use dream_sim::{FaultKind, SimTime};

use super::{tag, CellArrival, CellDreamVariant, CellOutcome, CellScheduler, CellSpec};
use super::{validate_fault, ErrorCode, Reply, Request, WireError, WireSnapshot};

/// Why a frame payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the message did.
    Truncated,
    /// The message ended before the payload did.
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// An enum tag outside its legal range.
    BadTag {
        /// Which field carried it.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field that is not valid UTF-8.
    BadUtf8,
    /// A collection or string whose declared length is implausible for
    /// the bytes present.
    Overlong,
    /// The message decoded structurally but its fault parameters are
    /// invalid (shared validation with the line parser).
    Fault(WireError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            DecodeError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::Overlong => write!(f, "declared length exceeds payload"),
            DecodeError::Fault(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked cursor over one frame payload.
#[derive(Debug)]
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Wraps a payload for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts full consumption — the final step of every decode.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Trailing`].
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(DecodeError::Trailing { extra }),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16 LE`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32 LE`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64 LE`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern (bit-exact).
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`].
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (`0`/`1`; anything else is a bad tag).
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] / [`DecodeError::BadTag`].
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }

    /// Reads a string: `u32 LE` length + UTF-8 bytes. The length is
    /// checked against the remaining payload *before* allocating.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overlong`] / [`DecodeError::BadUtf8`] /
    /// [`DecodeError::Truncated`].
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError::Overlong);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads an `Option<u64>`: presence byte then the value.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] / [`DecodeError::BadTag`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            tag => Err(DecodeError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

fn read_fault(r: &mut FrameReader<'_>) -> Result<FaultKind, DecodeError> {
    match r.u8()? {
        tag::FAULT_FAIL => Ok(FaultKind::Fail),
        tag::FAULT_STALL => Ok(FaultKind::Stall {
            duration: SimTime::from_ns(r.u64()?),
        }),
        tag::FAULT_SLOW => {
            let duration = SimTime::from_ns(r.u64()?);
            let factor = r.f64()?;
            Ok(FaultKind::Slowdown { factor, duration })
        }
        tag => Err(DecodeError::BadTag {
            what: "fault kind",
            tag,
        }),
    }
}

fn read_variant(r: &mut FrameReader<'_>) -> Result<CellDreamVariant, DecodeError> {
    match r.u8()? {
        tag::VARIANT_MAPSCORE => Ok(CellDreamVariant::MapScore),
        tag::VARIANT_SMARTDROP => Ok(CellDreamVariant::SmartDrop),
        tag::VARIANT_FULL => Ok(CellDreamVariant::Full),
        tag => Err(DecodeError::BadTag {
            what: "dream variant",
            tag,
        }),
    }
}

fn read_scheduler(r: &mut FrameReader<'_>) -> Result<CellScheduler, DecodeError> {
    match r.u8()? {
        tag::SCHED_FCFS => Ok(CellScheduler::Fcfs),
        tag::SCHED_STATIC => Ok(CellScheduler::Static),
        tag::SCHED_EDF => Ok(CellScheduler::Edf),
        tag::SCHED_VELTAIR => Ok(CellScheduler::Veltair),
        tag::SCHED_PLANARIA => Ok(CellScheduler::Planaria),
        tag::SCHED_DREAM_FIXED => Ok(CellScheduler::DreamFixed {
            variant: read_variant(r)?,
            alpha: r.f64()?,
            beta: r.f64()?,
        }),
        tag::SCHED_DREAM_TUNED => Ok(CellScheduler::DreamTuned {
            variant: read_variant(r)?,
        }),
        tag => Err(DecodeError::BadTag {
            what: "scheduler",
            tag,
        }),
    }
}

fn read_arrival(r: &mut FrameReader<'_>) -> Result<CellArrival, DecodeError> {
    match r.u8()? {
        tag::ARRIVAL_PERIODIC => Ok(CellArrival::Periodic),
        tag::ARRIVAL_POISSON => Ok(CellArrival::Poisson {
            intensity: r.f64()?,
        }),
        tag::ARRIVAL_MMPP => Ok(CellArrival::Mmpp {
            calm: r.f64()?,
            burst: r.f64()?,
            p_enter: r.f64()?,
            p_exit: r.f64()?,
        }),
        tag => Err(DecodeError::BadTag {
            what: "arrival",
            tag,
        }),
    }
}

fn read_cell_spec(r: &mut FrameReader<'_>) -> Result<CellSpec, DecodeError> {
    Ok(CellSpec {
        index: r.u64()?,
        scheduler: read_scheduler(r)?,
        scenario: r.str()?,
        preset: r.str()?,
        cascade: r.f64()?,
        duration_ms: r.u64()?,
        seed: r.u64()?,
        arrival: read_arrival(r)?,
    })
}

fn read_cell_outcome(r: &mut FrameReader<'_>) -> Result<CellOutcome, DecodeError> {
    Ok(CellOutcome {
        index: r.u64()?,
        fingerprint: r.u64()?,
        uxcost: r.f64()?,
        mean_violation_rate: r.f64()?,
        mean_norm_energy: r.f64()?,
        trace_csv: r.str()?,
    })
}

/// Reads a collection count, sanity-bounded by the bytes present (each
/// element needs at least `min_elem_bytes`).
fn read_count(r: &mut FrameReader<'_>, min_elem_bytes: usize) -> Result<usize, DecodeError> {
    let count = r.u32()? as usize;
    if count.saturating_mul(min_elem_bytes) > r.remaining() {
        return Err(DecodeError::Overlong);
    }
    Ok(count)
}

impl Request {
    /// Decodes a request frame payload. Total: any byte soup yields a
    /// typed error, never a panic.
    ///
    /// # Errors
    ///
    /// A [`DecodeError`]; [`DecodeError::Fault`] carries the shared
    /// fault-validation error.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = FrameReader::new(payload);
        let req = match r.u8()? {
            tag::PING => Request::Ping,
            tag::SUBMIT => Request::Submit {
                pipeline: PipelineId(r.u64()? as usize),
                node: NodeId(r.u64()? as usize),
                at: r.opt_u64()?.map(SimTime::from_ns),
            },
            tag::SWAP => Request::Swap {
                scenario: r.str()?,
                cascade: r.f64()?,
            },
            tag::FAULT => {
                let acc = AcceleratorId(r.u64()? as usize);
                let kind = read_fault(&mut r)?;
                validate_fault(&kind).map_err(DecodeError::Fault)?;
                Request::Fault {
                    acc,
                    kind,
                    at: r.opt_u64()?.map(SimTime::from_ns),
                }
            }
            tag::DRAIN => Request::Drain,
            tag::SNAPSHOT => Request::Snapshot,
            tag::RUN_CELLS => {
                let record_traces = r.bool()?;
                // A minimal CellSpec is well over 40 bytes.
                let count = read_count(&mut r, 40)?;
                let mut cells = Vec::with_capacity(count);
                for _ in 0..count {
                    cells.push(read_cell_spec(&mut r)?);
                }
                Request::RunCells {
                    record_traces,
                    cells,
                }
            }
            tag => {
                return Err(DecodeError::BadTag {
                    what: "request",
                    tag,
                })
            }
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl Reply {
    /// Decodes a reply frame payload at the newest protocol generation.
    /// Total, like [`Request::decode`].
    ///
    /// # Errors
    ///
    /// A [`DecodeError`].
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_versioned(payload, super::PROTOCOL_VERSION)
    }

    /// Decodes a reply frame payload sent by a peer that negotiated
    /// `version`. A v1 snapshot decodes with the v2-only fields
    /// zeroed/empty; every other reply is version-invariant.
    ///
    /// # Errors
    ///
    /// A [`DecodeError`].
    pub fn decode_versioned(payload: &[u8], version: u16) -> Result<Self, DecodeError> {
        let mut r = FrameReader::new(payload);
        let reply = match r.u8()? {
            tag::OK => Reply::Ok,
            tag::ERROR => {
                let raw = r.u8()?;
                let code = ErrorCode::from_u8(raw).ok_or(DecodeError::BadTag {
                    what: "error code",
                    tag: raw,
                })?;
                Reply::Error {
                    code,
                    message: r.str()?,
                }
            }
            tag::SNAPSHOT_REPLY => Reply::Snapshot(read_snapshot(&mut r, version)?),
            tag::CELLS_DONE => {
                // A minimal CellOutcome is 44 bytes.
                let count = read_count(&mut r, 44)?;
                let mut outcomes = Vec::with_capacity(count);
                for _ in 0..count {
                    outcomes.push(read_cell_outcome(&mut r)?);
                }
                Reply::CellsDone { outcomes }
            }
            tag => return Err(DecodeError::BadTag { what: "reply", tag }),
        };
        r.expect_end()?;
        Ok(reply)
    }
}

fn read_snapshot(r: &mut FrameReader<'_>, version: u16) -> Result<WireSnapshot, DecodeError> {
    let mut snapshot = WireSnapshot {
        tick: r.u64()?,
        now_ns: r.u64()?,
        frontier_ns: r.u64()?,
        phase: r.u64()?,
        draining: r.bool()?,
        ingress_backlog: r.u64()?,
        event_backlog: r.u64()?,
        admitted: r.u64()?,
        shed: r.u64()?,
        rejected: r.u64()?,
        fingerprint: r.u64()?,
        faults_injected: 0,
        fault_requeues: 0,
        deadline_miss_under_faults: 0,
        sojourn_hist: Vec::new(),
    };
    if version >= 2 {
        snapshot.faults_injected = r.u64()?;
        snapshot.fault_requeues = r.u64()?;
        snapshot.deadline_miss_under_faults = r.u64()?;
        // Each sparse bucket is 12 bytes on the wire.
        let count = read_count(r, 12)?;
        let mut hist = Vec::with_capacity(count);
        for _ in 0..count {
            let bucket = r.u32()?;
            let count = r.u64()?;
            hist.push((bucket, count));
        }
        snapshot.sojourn_hist = hist;
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert_eq!(
            Request::decode(&payload),
            Err(DecodeError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn degenerate_faults_rejected_at_decode_time() {
        // Hand-encode a zero-duration stall: the shared validator must
        // refuse it even though the bytes are structurally fine.
        let mut w = super::super::ser::FrameWriter::new(tag::FAULT);
        w.put_u64(0);
        w.put_u8(tag::FAULT_STALL);
        w.put_u64(0);
        w.put_u8(0); // at = None
        assert_eq!(
            Request::decode(&w.finish()),
            Err(DecodeError::Fault(WireError::ZeroFaultWindow))
        );

        let mut w = super::super::ser::FrameWriter::new(tag::FAULT);
        w.put_u64(3);
        w.put_u8(tag::FAULT_SLOW);
        w.put_u64(500);
        w.put_f64(f64::NAN);
        w.put_u8(0);
        let Err(DecodeError::Fault(WireError::InvalidSlowdownFactor { bits })) =
            Request::decode(&w.finish())
        else {
            panic!("NaN slowdown factor must be rejected");
        };
        assert!(f64::from_bits(bits).is_nan());
    }

    #[test]
    fn hostile_collection_counts_are_bounded() {
        // RUN_CELLS claiming u32::MAX cells in a tiny payload must fail
        // on the count check, not attempt a giant allocation.
        let mut w = super::super::ser::FrameWriter::new(tag::RUN_CELLS);
        w.put_bool(false);
        w.put_u32(u32::MAX);
        assert_eq!(Request::decode(&w.finish()), Err(DecodeError::Overlong));
    }
}
