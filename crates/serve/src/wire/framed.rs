//! Length framing and connect-time handshake for wire protocol v1.
//!
//! A v1 connection opens with a fixed 6-byte hello in each direction:
//!
//! ```text
//! client → server: D7 44 52 4D  vv vv      ("×DRM" + u16 LE version)
//! server → client: D7 64 72 6D  vv vv      ("×drm" + u16 LE version)
//! ```
//!
//! Both sides then speak `min(client_version, server_version)`; a
//! negotiated version below [`MIN_PROTOCOL_VERSION`](crate::wire::MIN_PROTOCOL_VERSION)
//! aborts the connection. The leading [`MAGIC_SENTINEL`] byte (`0xD7`)
//! is how the server *sniffs* v1 peers apart from v0 line-mode peers:
//! no line-protocol command starts with it (it is not even valid ASCII),
//! so reading one byte classifies the connection unambiguously.
//!
//! After the handshake, every message is one frame:
//!
//! ```text
//! [u32 LE payload length][payload bytes]
//! ```
//!
//! The payload's first byte is a message tag (see `wire::tag`); the
//! rest is the tag-specific body (see [`ser`](crate::wire::ser) /
//! [`de`](crate::wire::de)). Frames longer than [`MAX_FRAME_BYTES`]
//! are rejected without buffering. Framing is transport-neutral: the
//! same functions run over TCP and Unix sockets, and the reader side
//! tolerates `WouldBlock`/`TimedOut` poll timeouts by accumulating
//! partial frames across calls, so servers keep their stop-flag
//! responsiveness.

use std::io::{self, Read, Write};

/// First byte of every v1 hello — the sniff byte separating framed
/// peers from v0 line-mode peers. `0xD7` is outside ASCII, so no line
/// command can start with it.
pub const MAGIC_SENTINEL: u8 = 0xD7;

/// The 4-byte magic opening a client hello.
pub const CLIENT_MAGIC: [u8; 4] = [MAGIC_SENTINEL, b'D', b'R', b'M'];

/// The 4-byte magic opening a server hello.
pub const SERVER_MAGIC: [u8; 4] = [MAGIC_SENTINEL, b'd', b'r', b'm'];

/// Hard cap on one frame's payload, bytes. Large enough for a
/// `CellsDone` reply carrying recorded traces; small enough that a
/// hostile length prefix cannot balloon the connection buffer.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// A framing-layer failure (beneath message decoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer's hello did not start with the expected magic.
    BadMagic([u8; 4]),
    /// Version negotiation landed below the supported floor.
    UnsupportedVersion {
        /// What `min(ours, theirs)` came to.
        negotiated: u16,
    },
    /// A frame's length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLong {
        /// The declared payload length.
        len: u64,
    },
    /// The stream ended mid-hello or mid-frame.
    Truncated,
    /// A zero-length frame (every payload carries at least a tag).
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(magic) => write!(f, "bad hello magic {magic:02x?}"),
            FrameError::UnsupportedVersion { negotiated } => {
                write!(f, "negotiated protocol version {negotiated} unsupported")
            }
            FrameError::TooLong { len } => {
                write!(f, "frame too long ({len} bytes, max {MAX_FRAME_BYTES})")
            }
            FrameError::Truncated => write!(f, "stream truncated mid-frame"),
            FrameError::Empty => write!(f, "empty frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(err: FrameError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, err)
    }
}

/// Picks the version both sides speak: `min(ours, theirs)`, or an
/// error when that lands below the floor this build still accepts.
///
/// # Errors
///
/// [`FrameError::UnsupportedVersion`].
pub fn negotiate(ours: u16, theirs: u16) -> Result<u16, FrameError> {
    let negotiated = ours.min(theirs);
    if negotiated < crate::wire::MIN_PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion { negotiated });
    }
    Ok(negotiated)
}

/// Encodes a hello (either direction) into its 6 wire bytes.
pub fn hello_bytes(magic: [u8; 4], version: u16) -> [u8; 6] {
    let v = version.to_le_bytes();
    [magic[0], magic[1], magic[2], magic[3], v[0], v[1]]
}

/// Writes one hello.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_hello(w: &mut dyn Write, magic: [u8; 4], version: u16) -> io::Result<()> {
    w.write_all(&hello_bytes(magic, version))?;
    w.flush()
}

/// Reads and validates one hello, returning the peer's version. Pass
/// the bytes already consumed by sniffing (e.g. the sentinel byte) in
/// `consumed`.
///
/// # Errors
///
/// [`FrameError::BadMagic`] / [`FrameError::Truncated`] as
/// `InvalidData`/`UnexpectedEof` I/O errors, plus transport errors.
pub fn read_hello(r: &mut dyn Read, magic: [u8; 4], consumed: &[u8]) -> io::Result<u16> {
    debug_assert!(consumed.len() <= 6);
    let mut hello = [0u8; 6];
    hello[..consumed.len()].copy_from_slice(consumed);
    r.read_exact(&mut hello[consumed.len()..])
        .map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => {
                io::Error::new(io::ErrorKind::UnexpectedEof, FrameError::Truncated)
            }
            _ => e,
        })?;
    if hello[..4] != magic {
        let mut got = [0u8; 4];
        got.copy_from_slice(&hello[..4]);
        return Err(FrameError::BadMagic(got).into());
    }
    Ok(u16::from_le_bytes([hello[4], hello[5]]))
}

/// Writes one frame: `[u32 LE len][payload]`.
///
/// # Errors
///
/// [`FrameError::TooLong`] / [`FrameError::Empty`] as `InvalidData`,
/// plus transport errors.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Err(FrameError::Empty.into());
    }
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLong {
            len: payload.len() as u64,
        }
        .into());
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

/// Outcome of one [`read_frame_with`] call.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the stream at a frame boundary.
    Eof,
    /// `keep_going` went false while waiting (server shutdown).
    Stopped,
}

/// Reads one frame, tolerating read-timeout polls: on
/// `WouldBlock`/`TimedOut`/`Interrupted` the partial bytes already read
/// are kept and `keep_going` is consulted before retrying, so a server
/// honouring a stop flag never blocks forever and never tears a frame.
///
/// Clean EOF is only legal *between* frames; EOF inside a length prefix
/// or payload is [`FrameError::Truncated`].
///
/// # Errors
///
/// Framing violations as `InvalidData`, truncation as `UnexpectedEof`,
/// plus transport errors.
pub fn read_frame_with(
    r: &mut dyn Read,
    keep_going: &mut dyn FnMut() -> bool,
) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    match read_exact_with(r, &mut len_buf, true, keep_going)? {
        ExactRead::Done => {}
        ExactRead::Eof => return Ok(FrameRead::Eof),
        ExactRead::Stopped => return Ok(FrameRead::Stopped),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(FrameError::Empty.into());
    }
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLong { len: len as u64 }.into());
    }
    let mut payload = vec![0u8; len];
    match read_exact_with(r, &mut payload, false, keep_going)? {
        ExactRead::Done => Ok(FrameRead::Frame(payload)),
        ExactRead::Eof => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            FrameError::Truncated,
        )),
        ExactRead::Stopped => Ok(FrameRead::Stopped),
    }
}

/// Blocking convenience for clients: reads one frame or errors (EOF at
/// a boundary is `UnexpectedEof` here — clients always expect a reply).
///
/// # Errors
///
/// As [`read_frame_with`], with boundary EOF mapped to `UnexpectedEof`.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Vec<u8>> {
    match read_frame_with(r, &mut || true)? {
        FrameRead::Frame(payload) => Ok(payload),
        FrameRead::Eof | FrameRead::Stopped => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed while awaiting a frame",
        )),
    }
}

pub(crate) enum ExactRead {
    Done,
    Eof,
    Stopped,
}

/// `read_exact` that survives poll timeouts and reports boundary EOF
/// (only when `eof_ok_at_start` and no byte has been consumed yet).
pub(crate) fn read_exact_with(
    r: &mut dyn Read,
    buf: &mut [u8],
    eof_ok_at_start: bool,
    keep_going: &mut dyn FnMut() -> bool,
) -> io::Result<ExactRead> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok_at_start {
                    return Ok(ExactRead::Eof);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    FrameError::Truncated,
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if !keep_going() {
                    return Ok(ExactRead::Stopped);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ExactRead::Done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn hello_round_trips_both_directions() {
        let bytes = hello_bytes(CLIENT_MAGIC, 1);
        assert_eq!(bytes, [0xD7, 0x44, 0x52, 0x4D, 0x01, 0x00]);
        let mut r = Cursor::new(bytes.to_vec());
        assert_eq!(read_hello(&mut r, CLIENT_MAGIC, &[]).unwrap(), 1);

        // Sniffed entry: the server consumed the sentinel before
        // classifying, then resumes the hello mid-way.
        let mut r = Cursor::new(bytes[1..].to_vec());
        assert_eq!(
            read_hello(&mut r, CLIENT_MAGIC, &[MAGIC_SENTINEL]).unwrap(),
            1
        );

        let sbytes = hello_bytes(SERVER_MAGIC, 7);
        assert_eq!(sbytes, [0xD7, 0x64, 0x72, 0x6D, 0x07, 0x00]);
        let mut r = Cursor::new(sbytes.to_vec());
        assert_eq!(read_hello(&mut r, SERVER_MAGIC, &[]).unwrap(), 7);
    }

    #[test]
    fn hello_rejects_bad_magic_and_truncation() {
        let mut r = Cursor::new(vec![0xD7, b'X', b'R', b'M', 1, 0]);
        let err = read_hello(&mut r, CLIENT_MAGIC, &[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut r = Cursor::new(vec![0xD7, b'D']);
        let err = read_hello(&mut r, CLIENT_MAGIC, &[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn negotiation_takes_the_min_and_enforces_the_floor() {
        assert_eq!(negotiate(1, 1).unwrap(), 1);
        assert_eq!(negotiate(1, 9).unwrap(), 1);
        assert_eq!(negotiate(9, 1).unwrap(), 1);
        assert_eq!(
            negotiate(1, 0),
            Err(FrameError::UnsupportedVersion { negotiated: 0 })
        );
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0x01]).unwrap();
        write_frame(&mut buf, b"hello world").unwrap();
        assert_eq!(&buf[..5], &[1, 0, 0, 0, 0x01]);
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), vec![0x01]);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello world".to_vec());
        match read_frame_with(&mut r, &mut || true).unwrap() {
            FrameRead::Eof => {}
            other => panic!("expected boundary EOF, got {other:?}"),
        }
    }

    #[test]
    fn oversize_and_torn_frames_are_rejected() {
        // Hostile length prefix: rejected before any payload allocation.
        let mut r = Cursor::new(((MAX_FRAME_BYTES as u32) + 1).to_le_bytes().to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Zero-length frame.
        let mut r = Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(read_frame(&mut r).is_err());

        // EOF mid-payload.
        let mut bytes = 8u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut r = Cursor::new(bytes);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // EOF mid-length-prefix.
        let mut r = Cursor::new(vec![5u8, 0]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Oversize writes are refused locally too.
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
        assert!(write_frame(&mut Vec::new(), &[]).is_err());
    }

    #[test]
    fn stop_flag_interrupts_a_waiting_read() {
        // A reader that always times out: the frame reader must consult
        // keep_going and come back with Stopped instead of spinning.
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"))
            }
        }
        let mut polls = 0;
        let out = read_frame_with(&mut AlwaysTimeout, &mut || {
            polls += 1;
            polls < 3
        })
        .unwrap();
        assert!(matches!(out, FrameRead::Stopped));
        assert_eq!(polls, 3);
    }
}
