//! The wire protocols spoken over TCP/Unix-socket ingress.
//!
//! Two protocol generations share every listener port:
//!
//! * **v0 — the line protocol.** One command per `\n`-terminated line,
//!   fields separated by whitespace; `#` starts a comment and blank
//!   lines are ignored:
//!
//!   ```text
//!   r <pipeline> <node> [at_ns]         # submit a request (optionally time-stamped)
//!   swap <scenario> [cascade]           # hot-swap the served scenario
//!   fault <acc> fail [at_ns]            # permanently fail an accelerator
//!   fault <acc> stall <dur_ns> [at_ns]  # stall an accelerator for a window
//!   fault <acc> slow <dur_ns> <factor> [at_ns]  # slow an accelerator by factor
//!   drain                               # graceful shutdown
//!   ping                                # liveness check
//!   ```
//!
//!   Scenario names are the paper's (`AR_Call`, `VR_Gaming`, …),
//!   case-insensitive. Requests are fire-and-forget (errors come back
//!   as `err <reason>` lines); control commands are acknowledged with
//!   `ok`.
//!
//! * **v1 — the framed protocol.** A connect-time handshake (magic +
//!   version, negotiated down to `min(client, server)`), then
//!   length-framed binary messages with typed ser/de: every v0 command
//!   plus snapshot queries and grid-cell job dispatch ([`Request`] /
//!   [`Reply`]). Layout and layering live in the submodules:
//!   [`framed`] (handshake + length framing), [`ser`] (encoding),
//!   [`de`] (total, typed decoding).
//!
//! The server *sniffs* the first byte of each connection: the v1 client
//! hello leads with [`framed::MAGIC_SENTINEL`] (`0xD7`, never a
//! line-protocol command start), anything else falls back to the v0
//! line reader — old peers keep working unmodified.
//!
//! Parsing is total on both faces: no input — wild bytes, embedded
//! NULs, over-length lines or frames — panics, and every malformed
//! message maps to exactly one typed error (which the server funnels
//! into `rejected_invalid`, exactly once). Fault commands are
//! *validated* at parse time on both faces ([`validate_fault`]):
//! zero-duration stall/slowdown windows and non-finite or `< 1`
//! slowdown factors are rejected before they can become deterministic
//! no-op or NaN-propagating fault events.

use dream_cost::AcceleratorId;
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_sim::{FaultKind, SimTime};

pub mod de;
pub mod framed;
pub mod ser;

/// Longest accepted protocol line, in bytes (terminator included). The
/// longest legal command is far shorter; the bound keeps a hostile peer
/// from ballooning the connection buffer.
pub const MAX_LINE_BYTES: usize = 1024;

/// The newest framed protocol generation this build speaks.
///
/// v2 extends the snapshot reply with the fault-plane counters and a
/// sparse sojourn histogram; everything else is byte-identical to v1.
/// The handshake negotiates down to `min(client, server)`, so a v1
/// peer still receives the exact v1 snapshot shape (see
/// [`Reply::encode_versioned`]).
pub const PROTOCOL_VERSION: u16 = 2;

/// The oldest framed protocol generation this build still accepts. A
/// handshake negotiating below this fails with
/// [`framed::FrameError::UnsupportedVersion`]. (Line-mode peers never
/// handshake; they are the sniffed v0 fallback.)
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// A parsed wire command (shared by the v0 line parser and the v1
/// request handler — the server executes these, whatever face they
/// arrived on).
#[derive(Debug, Clone)]
pub enum WireCommand {
    /// Submit one inference request.
    Request {
        /// Target pipeline.
        pipeline: PipelineId,
        /// Target root node.
        node: NodeId,
        /// Optional explicit virtual arrival instant.
        at: Option<SimTime>,
    },
    /// Hot-swap the served scenario.
    Swap(Scenario),
    /// Inject a fault against an accelerator.
    Fault {
        /// The targeted accelerator.
        acc: AcceleratorId,
        /// What happens to it.
        kind: FaultKind,
        /// Optional explicit virtual instant; `None` = the admitting
        /// tick's frontier.
        at: Option<SimTime>,
    },
    /// Begin a graceful drain.
    Drain,
    /// Liveness check.
    Ping,
    /// Comment/blank line: nothing to do.
    Empty,
}

/// Why a wire command was rejected — the typed form of every `err …`
/// reply the line protocol sends (and the validation layer the v1
/// decoder shares).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line exceeds [`MAX_LINE_BYTES`].
    LineTooLong {
        /// Observed length in bytes.
        len: usize,
    },
    /// An interior NUL byte.
    EmbeddedNul,
    /// A required field is absent.
    MissingField(&'static str),
    /// A field failed to parse.
    InvalidField(&'static str),
    /// Extra fields after a complete command.
    TooManyFields(&'static str),
    /// The command verb is not part of the protocol.
    UnknownCommand(String),
    /// The scenario name matches no [`ScenarioKind`].
    UnknownScenario(String),
    /// The fault kind is not `fail`/`stall`/`slow`.
    UnknownFaultKind(String),
    /// The cascade probability is outside its legal range.
    InvalidCascade(String),
    /// A stall/slowdown fault with a zero-duration window — a
    /// deterministic no-op event the engine must never admit.
    ZeroFaultWindow,
    /// A slowdown factor that is non-finite or `< 1` (stored by bit
    /// pattern so NaNs stay comparable).
    InvalidSlowdownFactor {
        /// The rejected factor, as `f64::to_bits`.
        bits: u64,
    },
    /// The peer's final line ended at EOF without its terminator — a
    /// truncated tail that must be accounted, never executed.
    TruncatedLine,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::LineTooLong { len } => {
                write!(f, "line too long ({len} bytes, max {MAX_LINE_BYTES})")
            }
            WireError::EmbeddedNul => write!(f, "embedded NUL byte"),
            WireError::MissingField(what) => write!(f, "missing {what}"),
            WireError::InvalidField(what) => write!(f, "invalid {what}"),
            WireError::TooManyFields(cmd) => write!(f, "too many fields for {cmd}"),
            WireError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            WireError::UnknownScenario(name) => write!(f, "unknown scenario {name:?}"),
            WireError::UnknownFaultKind(kind) => write!(f, "unknown fault kind {kind:?}"),
            WireError::InvalidCascade(reason) => write!(f, "invalid cascade: {reason}"),
            WireError::ZeroFaultWindow => write!(f, "fault window duration must be > 0"),
            WireError::InvalidSlowdownFactor { bits } => {
                let factor = f64::from_bits(*bits);
                write!(f, "factor {factor} must be finite and >= 1")
            }
            WireError::TruncatedLine => write!(f, "truncated line at end of stream"),
        }
    }
}

impl std::error::Error for WireError {}

/// Validates a fault's parameters — shared by the v0 line parser and
/// the v1 frame decoder, so no protocol face can admit a zero-duration
/// window (a deterministic no-op event) or a non-finite/`< 1` slowdown
/// factor (a NaN would propagate into every dispatch latency it
/// scales).
///
/// # Errors
///
/// [`WireError::ZeroFaultWindow`] or
/// [`WireError::InvalidSlowdownFactor`].
pub fn validate_fault(kind: &FaultKind) -> Result<(), WireError> {
    match *kind {
        FaultKind::Fail => Ok(()),
        FaultKind::Stall { duration } => {
            if duration.as_ns() == 0 {
                return Err(WireError::ZeroFaultWindow);
            }
            Ok(())
        }
        FaultKind::Slowdown { factor, duration } => {
            if duration.as_ns() == 0 {
                return Err(WireError::ZeroFaultWindow);
            }
            if !factor.is_finite() || factor < 1.0 {
                return Err(WireError::InvalidSlowdownFactor {
                    bits: factor.to_bits(),
                });
            }
            Ok(())
        }
    }
}

/// Parses a scenario name (case-insensitive paper naming).
pub fn parse_scenario_kind(name: &str) -> Option<ScenarioKind> {
    ScenarioKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Parses one v0 protocol line.
///
/// # Errors
///
/// A typed [`WireError`]; its `Display` form is what goes back to the
/// peer as `err <reason>`.
pub fn parse_line(line: &str) -> Result<WireCommand, WireError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(WireError::LineTooLong { len: line.len() });
    }
    let line = line.trim_matches(|c: char| c.is_whitespace() || c == '\0');
    if line.contains('\0') {
        return Err(WireError::EmbeddedNul);
    }
    if line.is_empty() || line.starts_with('#') {
        return Ok(WireCommand::Empty);
    }
    let mut fields = line.split_ascii_whitespace();
    let cmd = fields.next().expect("non-empty line has a first field");
    match cmd {
        "r" => {
            let mut num = |what: &'static str| -> Result<u64, WireError> {
                fields
                    .next()
                    .ok_or(WireError::MissingField(what))?
                    .parse::<u64>()
                    .map_err(|_| WireError::InvalidField(what))
            };
            let pipeline = num("pipeline")?;
            let node = num("node")?;
            let at = match fields.next() {
                None => None,
                Some(raw) => Some(SimTime::from_ns(
                    raw.parse::<u64>()
                        .map_err(|_| WireError::InvalidField("at_ns"))?,
                )),
            };
            if fields.next().is_some() {
                return Err(WireError::TooManyFields("r"));
            }
            Ok(WireCommand::Request {
                pipeline: PipelineId(pipeline as usize),
                node: NodeId(node as usize),
                at,
            })
        }
        "swap" => {
            let name = fields.next().ok_or(WireError::MissingField("scenario"))?;
            let kind = parse_scenario_kind(name)
                .ok_or_else(|| WireError::UnknownScenario(name.to_string()))?;
            let cascade = match fields.next() {
                None => CascadeProbability::default_paper(),
                Some(raw) => {
                    let p = raw
                        .parse::<f64>()
                        .map_err(|_| WireError::InvalidField("cascade"))?;
                    CascadeProbability::new(p)
                        .map_err(|e| WireError::InvalidCascade(e.to_string()))?
                }
            };
            if fields.next().is_some() {
                return Err(WireError::TooManyFields("swap"));
            }
            Ok(WireCommand::Swap(Scenario::new(kind, cascade)))
        }
        "fault" => {
            fn num<'a>(
                fields: &mut impl Iterator<Item = &'a str>,
                what: &'static str,
            ) -> Result<u64, WireError> {
                fields
                    .next()
                    .ok_or(WireError::MissingField(what))?
                    .parse::<u64>()
                    .map_err(|_| WireError::InvalidField(what))
            }
            let acc = num(&mut fields, "acc")?;
            let kind_name = fields.next().ok_or(WireError::MissingField("fault kind"))?;
            let kind = match kind_name {
                "fail" => FaultKind::Fail,
                "stall" => FaultKind::Stall {
                    duration: SimTime::from_ns(num(&mut fields, "dur_ns")?),
                },
                "slow" => {
                    let duration = SimTime::from_ns(num(&mut fields, "dur_ns")?);
                    let factor = fields
                        .next()
                        .ok_or(WireError::MissingField("factor"))?
                        .parse::<f64>()
                        .map_err(|_| WireError::InvalidField("factor"))?;
                    FaultKind::Slowdown { factor, duration }
                }
                other => return Err(WireError::UnknownFaultKind(other.to_string())),
            };
            validate_fault(&kind)?;
            let at = match fields.next() {
                None => None,
                Some(raw) => Some(SimTime::from_ns(
                    raw.parse::<u64>()
                        .map_err(|_| WireError::InvalidField("at_ns"))?,
                )),
            };
            if fields.next().is_some() {
                return Err(WireError::TooManyFields("fault"));
            }
            Ok(WireCommand::Fault {
                acc: AcceleratorId(acc as usize),
                kind,
                at,
            })
        }
        "drain" => Ok(WireCommand::Drain),
        "ping" => Ok(WireCommand::Ping),
        other => Err(WireError::UnknownCommand(other.to_string())),
    }
}

// ---------------------------------------------------------------------------
// v1 typed messages
// ---------------------------------------------------------------------------

/// Frame tags, one byte leading every v1 payload. Requests use the low
/// range, replies the high range, so a frame read off the wrong
/// direction of the stream can never alias.
pub(crate) mod tag {
    pub const PING: u8 = 0x01;
    pub const SUBMIT: u8 = 0x02;
    pub const SWAP: u8 = 0x03;
    pub const FAULT: u8 = 0x04;
    pub const DRAIN: u8 = 0x05;
    pub const SNAPSHOT: u8 = 0x06;
    pub const RUN_CELLS: u8 = 0x07;

    pub const OK: u8 = 0x81;
    pub const ERROR: u8 = 0x82;
    pub const SNAPSHOT_REPLY: u8 = 0x83;
    pub const CELLS_DONE: u8 = 0x84;

    pub const FAULT_FAIL: u8 = 0;
    pub const FAULT_STALL: u8 = 1;
    pub const FAULT_SLOW: u8 = 2;

    pub const SCHED_FCFS: u8 = 0;
    pub const SCHED_STATIC: u8 = 1;
    pub const SCHED_EDF: u8 = 2;
    pub const SCHED_VELTAIR: u8 = 3;
    pub const SCHED_PLANARIA: u8 = 4;
    pub const SCHED_DREAM_FIXED: u8 = 5;
    pub const SCHED_DREAM_TUNED: u8 = 6;

    pub const VARIANT_MAPSCORE: u8 = 0;
    pub const VARIANT_SMARTDROP: u8 = 1;
    pub const VARIANT_FULL: u8 = 2;

    pub const ARRIVAL_PERIODIC: u8 = 0;
    pub const ARRIVAL_POISSON: u8 = 1;
    pub const ARRIVAL_MMPP: u8 = 2;
}

/// A v1 client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered with [`Reply::Ok`].
    Ping,
    /// Submit one inference request.
    Submit {
        /// Target pipeline.
        pipeline: PipelineId,
        /// Target root node.
        node: NodeId,
        /// Optional explicit virtual arrival instant.
        at: Option<SimTime>,
    },
    /// Hot-swap the served scenario.
    Swap {
        /// Scenario name (paper naming, case-insensitive).
        scenario: String,
        /// Cascade probability.
        cascade: f64,
    },
    /// Inject a fault (validated by [`validate_fault`] at decode time).
    Fault {
        /// The targeted accelerator.
        acc: AcceleratorId,
        /// What happens to it.
        kind: FaultKind,
        /// Optional explicit virtual instant.
        at: Option<SimTime>,
    },
    /// Begin a graceful drain.
    Drain,
    /// Ask for the latest published metrics snapshot.
    Snapshot,
    /// Run a batch of experiment-grid cells and reply with their
    /// seed-keyed outcomes ([`Reply::CellsDone`]). Served only by
    /// worker nodes configured with a cell runner.
    RunCells {
        /// Whether each outcome should carry its recorded arrival
        /// trace (CSV) for merged-trace auditing.
        record_traces: bool,
        /// The cells to run, each carrying its global grid index.
        cells: Vec<CellSpec>,
    },
}

/// A v1 server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The request was executed.
    Ok,
    /// The request was refused.
    Error {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The latest metrics snapshot.
    Snapshot(WireSnapshot),
    /// Outcomes of a [`Request::RunCells`] batch, in the order the
    /// cells were sent.
    CellsDone {
        /// One outcome per requested cell.
        outcomes: Vec<CellOutcome>,
    },
}

/// Machine-readable refusal classes carried by [`Reply::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame failed to decode.
    Malformed,
    /// The server does not serve this request (e.g. `RunCells` without
    /// a cell runner).
    Unsupported,
    /// The request decoded but its parameters are invalid.
    Invalid,
    /// The ingress queue is full (reject admission policy).
    Full,
    /// The session is draining or finished.
    Closed,
    /// Nothing to report yet (e.g. no snapshot published).
    Unavailable,
}

impl ErrorCode {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::Invalid => 3,
            ErrorCode::Full => 4,
            ErrorCode::Closed => 5,
            ErrorCode::Unavailable => 6,
        }
    }

    pub(crate) fn from_u8(raw: u8) -> Option<Self> {
        Some(match raw {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::Invalid,
            4 => ErrorCode::Full,
            5 => ErrorCode::Closed,
            6 => ErrorCode::Unavailable,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Invalid => "invalid",
            ErrorCode::Full => "full",
            ErrorCode::Closed => "closed",
            ErrorCode::Unavailable => "unavailable",
        };
        f.write_str(name)
    }
}

/// The live counters a [`Reply::Snapshot`] carries — the wire face of
/// [`MetricsSnapshot`](crate::MetricsSnapshot), reduced to what a
/// coordinator aggregates across workers.
///
/// The fault counters and the sparse sojourn histogram are protocol-v2
/// fields: a v1 peer neither sends nor receives them, and a v2 decode
/// of a v1-shaped snapshot leaves them zeroed/empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Serving ticks elapsed.
    pub tick: u64,
    /// The engine's current virtual instant, ns.
    pub now_ns: u64,
    /// The admission frontier, ns.
    pub frontier_ns: u64,
    /// The phase requests currently target.
    pub phase: u64,
    /// Whether a drain is in progress.
    pub draining: bool,
    /// Requests waiting in the ingress queue.
    pub ingress_backlog: u64,
    /// Events pending in the engine's queue.
    pub event_backlog: u64,
    /// Total arrivals admitted so far.
    pub admitted: u64,
    /// Total requests shed from the bounded queue.
    pub shed: u64,
    /// Total requests rejected (capacity, invalid, or closed).
    pub rejected: u64,
    /// `Metrics::fingerprint` of the cumulative counters at snapshot
    /// time — what a distributed audit compares against a replay.
    pub fingerprint: u64,
    /// Total faults injected so far (v2; zero from a v1 peer).
    pub faults_injected: u64,
    /// Tasks aborted and requeued by faults (v2; zero from a v1 peer).
    pub fault_requeues: u64,
    /// Deadline misses recorded while any fault window was active (v2;
    /// zero from a v1 peer).
    pub deadline_miss_under_faults: u64,
    /// Sparse pooled sojourn histogram: `(bucket index, count)` pairs
    /// for non-empty log2 buckets, in ascending bucket order — the wire
    /// form of `dream_sim::Histogram::sparse` (v2; empty from a v1
    /// peer). Mergeable across workers via `Histogram::from_sparse` +
    /// `merge`.
    pub sojourn_hist: Vec<(u32, u64)>,
}

/// Which scheduler a wire-shipped grid cell runs — the protocol-schema
/// mirror of `dream-bench`'s `SchedulerKind` (recorded traces and
/// custom cost backends don't travel over v1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellScheduler {
    /// Dynamic first-come-first-served.
    Fcfs,
    /// Offline worst-case static scheduler.
    Static,
    /// Earliest-deadline-first.
    Edf,
    /// Veltair-style layer-block scheduler.
    Veltair,
    /// Planaria-style spatial-fission scheduler.
    Planaria,
    /// DREAM with explicit fixed parameters.
    DreamFixed {
        /// Ablation level.
        variant: CellDreamVariant,
        /// The α score weight.
        alpha: f64,
        /// The β score weight.
        beta: f64,
    },
    /// DREAM with offline-tuned parameters (each worker tunes
    /// deterministically from the same spec, so results merge
    /// bit-identically).
    DreamTuned {
        /// Ablation level.
        variant: CellDreamVariant,
    },
}

/// DREAM ablation level of a wire-shipped cell (Table 4 naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellDreamVariant {
    /// Score-driven dispatch only.
    MapScore,
    /// MapScore + smart frame drop.
    SmartDrop,
    /// MapScore + smart frame drop + supernet switching.
    Full,
}

/// Arrival stream of a wire-shipped cell (recorded traces don't travel
/// over v1 — they are what the workers *produce*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellArrival {
    /// The paper's fixed-FPS pipelines.
    Periodic,
    /// Open-loop Poisson traffic.
    Poisson {
        /// Rate multiplier (1.0 = nominal).
        intensity: f64,
    },
    /// Bursty two-state MMPP traffic.
    Mmpp {
        /// Calm-state intensity multiplier.
        calm: f64,
        /// Burst-state intensity multiplier.
        burst: f64,
        /// Per-frame probability of entering a burst.
        p_enter: f64,
        /// Per-frame probability of leaving a burst.
        p_exit: f64,
    },
}

/// One experiment-grid cell, fully specified for remote execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The cell's position in the coordinator's grid — merge identity;
    /// outcomes are reassembled in index order, which is what makes the
    /// merged fingerprint bit-identical to the single-process grid.
    pub index: u64,
    /// Scheduler under test.
    pub scheduler: CellScheduler,
    /// Scenario name (paper naming, case-insensitive).
    pub scenario: String,
    /// Platform preset name (Table 2 naming, e.g. `"4K 1WS+2OS"`).
    pub preset: String,
    /// Cascade probability on control-dependent edges.
    pub cascade: f64,
    /// Measurement horizon in milliseconds.
    pub duration_ms: u64,
    /// Workload-realization seed.
    pub seed: u64,
    /// Arrival stream feeding the cell.
    pub arrival: CellArrival,
}

/// What a worker reports back for one executed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell's global grid index (copied from its [`CellSpec`]).
    pub index: u64,
    /// `Metrics::fingerprint()` of the cell's full metrics.
    pub fingerprint: u64,
    /// UXCost (Algorithm 2).
    pub uxcost: f64,
    /// Mean raw violation rate in `[0, 1]`.
    pub mean_violation_rate: f64,
    /// Mean normalised energy in `[0, 1]`.
    pub mean_norm_energy: f64,
    /// The cell's recorded arrival trace (CSV), when the batch asked
    /// for traces; empty otherwise.
    pub trace_csv: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests_with_and_without_stamp() {
        let WireCommand::Request { pipeline, node, at } = parse_line("r 1 0").unwrap() else {
            panic!("expected request");
        };
        assert_eq!((pipeline, node, at), (PipelineId(1), NodeId(0), None));
        let WireCommand::Request { pipeline, node, at } = parse_line("  r 0 2 5000 ").unwrap()
        else {
            panic!("expected request");
        };
        assert_eq!(
            (pipeline, node, at),
            (PipelineId(0), NodeId(2), Some(SimTime::from_ns(5000)))
        );
    }

    #[test]
    fn parses_control_and_comments() {
        assert!(matches!(parse_line("drain").unwrap(), WireCommand::Drain));
        assert!(matches!(parse_line("ping").unwrap(), WireCommand::Ping));
        assert!(matches!(parse_line("").unwrap(), WireCommand::Empty));
        assert!(matches!(parse_line("# hi").unwrap(), WireCommand::Empty));
        let WireCommand::Swap(s) = parse_line("swap ar_call 0.25").unwrap() else {
            panic!("expected swap");
        };
        assert_eq!(s.kind(), ScenarioKind::ArCall);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "r",
            "r 1",
            "r a b",
            "r 1 2 x",
            "r 1 2 3 4",
            "swap",
            "swap NoSuch",
            "swap AR_Call 1.5",
            "nonsense",
            "fault",
            "fault x fail",
            "fault 0",
            "fault 0 bogus",
            "fault 0 stall",
            "fault 0 stall x",
            "fault 0 stall 0",
            "fault 0 slow 5",
            "fault 0 slow 5 x",
            "fault 0 slow 5 0.5",
            "fault 0 slow 5 nan",
            "fault 0 slow 5 inf",
            "fault 0 slow 0 2.0",
            "fault 0 fail 1 2",
            "fault 0 stall 5 1 2",
            "a\0b",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_degenerate_fault_windows_with_typed_errors() {
        // Zero-duration windows are deterministic no-ops; both fault
        // kinds that carry a window refuse them at parse time.
        assert_eq!(
            parse_line("fault 0 stall 0").unwrap_err(),
            WireError::ZeroFaultWindow
        );
        assert_eq!(
            parse_line("fault 0 slow 0 2.0").unwrap_err(),
            WireError::ZeroFaultWindow
        );
        // Degenerate factors carry their exact bit pattern out.
        assert_eq!(
            parse_line("fault 0 slow 5 0.5").unwrap_err(),
            WireError::InvalidSlowdownFactor {
                bits: 0.5f64.to_bits()
            }
        );
        let Err(WireError::InvalidSlowdownFactor { bits }) = parse_line("fault 0 slow 5 NaN")
        else {
            panic!("NaN factor must be typed-rejected");
        };
        assert!(f64::from_bits(bits).is_nan());
        // validate_fault is the same gate the v1 decoder uses.
        assert_eq!(
            validate_fault(&FaultKind::Stall {
                duration: SimTime::from_ns(0)
            }),
            Err(WireError::ZeroFaultWindow)
        );
        assert_eq!(
            validate_fault(&FaultKind::Slowdown {
                factor: f64::INFINITY,
                duration: SimTime::from_ns(5)
            }),
            Err(WireError::InvalidSlowdownFactor {
                bits: f64::INFINITY.to_bits()
            })
        );
        assert_eq!(
            validate_fault(&FaultKind::Slowdown {
                factor: 2.0,
                duration: SimTime::from_ns(5)
            }),
            Ok(())
        );
    }

    #[test]
    fn parses_fault_commands() {
        let WireCommand::Fault { acc, kind, at } = parse_line("fault 2 fail").unwrap() else {
            panic!("expected fault");
        };
        assert_eq!(acc, AcceleratorId(2));
        assert!(matches!(kind, FaultKind::Fail));
        assert_eq!(at, None);

        let WireCommand::Fault { acc, kind, at } = parse_line("fault 0 stall 5000 77").unwrap()
        else {
            panic!("expected fault");
        };
        assert_eq!(acc, AcceleratorId(0));
        assert!(
            matches!(kind, FaultKind::Stall { duration } if duration == SimTime::from_ns(5000))
        );
        assert_eq!(at, Some(SimTime::from_ns(77)));

        let WireCommand::Fault { kind, .. } = parse_line("fault 1 slow 9000 2.5").unwrap() else {
            panic!("expected fault");
        };
        assert!(matches!(
            kind,
            FaultKind::Slowdown { factor, duration }
                if (factor - 2.5).abs() < f64::EPSILON && duration == SimTime::from_ns(9000)
        ));
    }

    #[test]
    fn rejects_over_length_and_nul_lines() {
        let long = "r ".repeat(MAX_LINE_BYTES);
        assert!(parse_line(&long).is_err());
        // Leading/trailing NULs are stripped like whitespace; interior
        // NULs are rejected.
        assert!(matches!(parse_line("\0ping\0").unwrap(), WireCommand::Ping));
        assert!(parse_line("ping\0drain").is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Totality: no byte soup panics the parser, and anything the
            /// parser does accept round-trips through a sane variant.
            #[test]
            fn parse_never_panics_on_wild_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
                let line = String::from_utf8_lossy(&bytes);
                let _ = parse_line(&line);
            }

            /// Over-length lines are always rejected, never buffered.
            #[test]
            fn over_length_lines_rejected(extra in 1usize..64) {
                let line = "x".repeat(MAX_LINE_BYTES + extra);
                prop_assert!(parse_line(&line).is_err());
            }

            /// Every structurally valid fault line parses to Fault.
            #[test]
            fn valid_fault_lines_parse(
                acc in 0u64..16,
                dur in 1u64..1_000_000,
                at in prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)],
            ) {
                let suffix = at.map(|a| format!(" {a}")).unwrap_or_default();
                for line in [
                    format!("fault {acc} fail{suffix}"),
                    format!("fault {acc} stall {dur}{suffix}"),
                    format!("fault {acc} slow {dur} 2.0{suffix}"),
                ] {
                    prop_assert!(
                        matches!(parse_line(&line), Ok(WireCommand::Fault { .. })),
                        "{line:?} must parse"
                    );
                }
            }
        }
    }
}
