//! Socket ingress: line-delimited TCP and Unix-domain listeners that
//! translate the [wire protocol](crate::wire) into ingress submissions.
//!
//! Each accepted connection registers its own ingress source (so the
//! admission funnel is attributable per peer) and is served by a thread
//! that reads lines, submits requests, and forwards control commands.
//! Listeners poll with a short accept timeout so [`SocketServer::shutdown`]
//! (or drop) stops them promptly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::ServeHandle;
use crate::ingress::SubmitError;
use crate::wire::{parse_line, WireCommand, MAX_LINE_BYTES};

const ACCEPT_POLL: Duration = Duration::from_millis(50);
const READ_POLL: Duration = Duration::from_millis(100);

/// Transient `accept()` failures (EMFILE, ECONNABORTED, EINTR, …) are
/// retried with exponential backoff; only this many *consecutive*
/// failures tear the listener down. Any successful accept resets the
/// count.
const ACCEPT_MAX_CONSECUTIVE_FAILURES: u32 = 16;

/// Backoff after the `n`-th consecutive accept failure: doubles from
/// [`ACCEPT_POLL`], capped at ~1.6 s, so a transient EMFILE storm is
/// ridden out without spinning and without giving up the listener.
fn accept_backoff(consecutive_failures: u32) -> Duration {
    ACCEPT_POLL * 2u32.pow(consecutive_failures.min(5))
}

/// A running socket listener; dropping it stops the accept loop (open
/// connections drain on their own once the peer closes or the session
/// ends).
pub struct SocketServer {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Stops accepting new connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// Starts a TCP listener feeding `handle`. Binds `addr` (use port 0 for
/// an ephemeral port) and returns the bound address plus the server
/// guard.
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_tcp(
    handle: &ServeHandle,
    addr: impl ToSocketAddrs,
) -> std::io::Result<(SocketAddr, SocketServer)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = handle.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut failures = 0u32;
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, peer)) => {
                    failures = 0;
                    let handle = handle.clone();
                    let stop = Arc::clone(&accept_stop);
                    std::thread::spawn(move || {
                        let label = format!("tcp:{peer}");
                        serve_connection(TcpTransport(stream), &handle, label, &stop);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    failures += 1;
                    if failures >= ACCEPT_MAX_CONSECUTIVE_FAILURES {
                        break;
                    }
                    std::thread::sleep(accept_backoff(failures));
                }
            }
        }
    });
    Ok((
        local,
        SocketServer {
            stop,
            accept_thread: Some(accept_thread),
        },
    ))
}

/// Starts a Unix-domain-socket listener feeding `handle` at `path`
/// (removed first if it exists).
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_unix(handle: &ServeHandle, path: impl AsRef<Path>) -> std::io::Result<SocketServer> {
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = handle.clone();
    let label_base = path.display().to_string();
    let accept_thread = std::thread::spawn(move || {
        let mut conn = 0usize;
        let mut failures = 0u32;
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    conn += 1;
                    failures = 0;
                    let handle = handle.clone();
                    let stop = Arc::clone(&accept_stop);
                    let label = format!("unix:{label_base}#{conn}");
                    std::thread::spawn(move || {
                        serve_connection(UnixTransport(stream), &handle, label, &stop);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    failures += 1;
                    if failures >= ACCEPT_MAX_CONSECUTIVE_FAILURES {
                        break;
                    }
                    std::thread::sleep(accept_backoff(failures));
                }
            }
        }
    });
    Ok(SocketServer {
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// The two stream flavors, unified just enough for one connection loop.
trait Transport {
    type Reader: BufRead;
    fn split(self) -> std::io::Result<(Self::Reader, Box<dyn Write + Send>)>;
    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()>;
}

struct TcpTransport(TcpStream);

impl Transport for TcpTransport {
    type Reader = BufReader<TcpStream>;

    fn split(self) -> std::io::Result<(Self::Reader, Box<dyn Write + Send>)> {
        let writer = self.0.try_clone()?;
        Ok((BufReader::new(self.0), Box::new(writer)))
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        self.0.set_read_timeout(Some(dur))
    }
}

struct UnixTransport(UnixStream);

impl Transport for UnixTransport {
    type Reader = BufReader<UnixStream>;

    fn split(self) -> std::io::Result<(Self::Reader, Box<dyn Write + Send>)> {
        let writer = self.0.try_clone()?;
        Ok((BufReader::new(self.0), Box::new(writer)))
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        self.0.set_read_timeout(Some(dur))
    }
}

fn serve_connection<T: Transport>(
    transport: T,
    handle: &ServeHandle,
    label: String,
    stop: &AtomicBool,
) {
    if transport.set_read_timeout(READ_POLL).is_err() {
        return;
    }
    let Ok((reader, mut writer)) = transport.split() else {
        return;
    };
    let client = handle.client(label);
    let mut reader = reader;
    let mut line = String::new();
    // Past this point every exit records exactly one disconnect against
    // the connection's source — hence `break`, never `return`.
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // `read_line` appends any bytes it consumed *before* a timeout
        // fires, so the buffer must survive timeout retries — clearing it
        // there would silently drop the first fragment of any command
        // whose bytes straddle a read-timeout window.
        let eof = match reader.read_line(&mut line) {
            Ok(0) => true,
            // A line is complete only at its `\n`; Ok without one means
            // the stream ended mid-line — process the fragment, then EOF.
            Ok(_) => !line.ends_with('\n'),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A peer trickling a terminator-free line through timeout
                // windows must not balloon the buffer: over-length kills
                // the connection (checked below too, for one-read blasts).
                if line.len() > MAX_LINE_BYTES {
                    client.ingress.record_wire_invalid(client.source);
                    let _ = writeln!(writer, "err line too long").and_then(|()| writer.flush());
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Non-UTF-8 bytes: the offending line was consumed off the
                // stream, so reject it and keep serving the connection.
                client.ingress.record_wire_invalid(client.source);
                if writeln!(writer, "err invalid utf-8")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
                line.clear();
                continue;
            }
            Err(_) => break,
        };
        if line.len() > MAX_LINE_BYTES {
            client.ingress.record_wire_invalid(client.source);
            let _ = writeln!(writer, "err line too long").and_then(|()| writer.flush());
            break;
        }
        if eof && line.is_empty() {
            break;
        }
        let reply: Option<String> = match parse_line(&line) {
            Ok(WireCommand::Empty) => None,
            Ok(WireCommand::Ping) => Some("ok".into()),
            Ok(WireCommand::Drain) => {
                handle.drain();
                Some("ok draining".into())
            }
            Ok(WireCommand::Swap(scenario)) => {
                let name = scenario.name();
                handle.swap(scenario);
                Some(format!("ok swapping to {name}"))
            }
            Ok(WireCommand::Fault { acc, kind, at }) => {
                match at {
                    Some(at) => handle.fault_at(acc, kind, at),
                    None => handle.fault(acc, kind),
                }
                Some("ok fault ordered".into())
            }
            Ok(WireCommand::Request { pipeline, node, at }) => {
                // Requests are fire-and-forget; only failures answer.
                let result = match at {
                    Some(at) => client.submit_at(pipeline, node, at),
                    None => client.submit(pipeline, node),
                };
                match result {
                    Ok(()) => None,
                    Err(SubmitError::Full) => Some("err queue full".into()),
                    Err(SubmitError::Closed) => Some("err session closed".into()),
                }
            }
            Err(reason) => {
                // A parse failure enters the funnel as exactly one
                // `rejected_invalid` (with its matching `submitted`).
                client.ingress.record_wire_invalid(client.source);
                Some(format!("err {reason}"))
            }
        };
        if let Some(reply) = reply {
            if writeln!(writer, "{reply}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
        if eof {
            break;
        }
        line.clear();
    }
    client.ingress.record_disconnect(client.source);
}
