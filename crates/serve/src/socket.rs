//! Socket ingress: line-delimited TCP and Unix-domain listeners that
//! translate the [wire protocol](crate::wire) into ingress submissions.
//!
//! Each accepted connection registers its own ingress source (so the
//! admission funnel is attributable per peer) and is served by a thread
//! that reads lines, submits requests, and forwards control commands.
//! Listeners poll with a short accept timeout so [`SocketServer::shutdown`]
//! (or drop) stops them promptly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::ServeHandle;
use crate::ingress::SubmitError;
use crate::wire::{parse_line, WireCommand};

const ACCEPT_POLL: Duration = Duration::from_millis(50);
const READ_POLL: Duration = Duration::from_millis(100);

/// A running socket listener; dropping it stops the accept loop (open
/// connections drain on their own once the peer closes or the session
/// ends).
pub struct SocketServer {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Stops accepting new connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// Starts a TCP listener feeding `handle`. Binds `addr` (use port 0 for
/// an ephemeral port) and returns the bound address plus the server
/// guard.
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_tcp(
    handle: &ServeHandle,
    addr: impl ToSocketAddrs,
) -> std::io::Result<(SocketAddr, SocketServer)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = handle.clone();
    let accept_thread = std::thread::spawn(move || {
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let handle = handle.clone();
                    let stop = Arc::clone(&accept_stop);
                    std::thread::spawn(move || {
                        let label = format!("tcp:{peer}");
                        serve_connection(TcpTransport(stream), &handle, label, &stop);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => break,
            }
        }
    });
    Ok((
        local,
        SocketServer {
            stop,
            accept_thread: Some(accept_thread),
        },
    ))
}

/// Starts a Unix-domain-socket listener feeding `handle` at `path`
/// (removed first if it exists).
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_unix(handle: &ServeHandle, path: impl AsRef<Path>) -> std::io::Result<SocketServer> {
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = handle.clone();
    let label_base = path.display().to_string();
    let accept_thread = std::thread::spawn(move || {
        let mut conn = 0usize;
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    conn += 1;
                    let handle = handle.clone();
                    let stop = Arc::clone(&accept_stop);
                    let label = format!("unix:{label_base}#{conn}");
                    std::thread::spawn(move || {
                        serve_connection(UnixTransport(stream), &handle, label, &stop);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => break,
            }
        }
    });
    Ok(SocketServer {
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// The two stream flavors, unified just enough for one connection loop.
trait Transport {
    type Reader: BufRead;
    fn split(self) -> std::io::Result<(Self::Reader, Box<dyn Write + Send>)>;
    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()>;
}

struct TcpTransport(TcpStream);

impl Transport for TcpTransport {
    type Reader = BufReader<TcpStream>;

    fn split(self) -> std::io::Result<(Self::Reader, Box<dyn Write + Send>)> {
        let writer = self.0.try_clone()?;
        Ok((BufReader::new(self.0), Box::new(writer)))
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        self.0.set_read_timeout(Some(dur))
    }
}

struct UnixTransport(UnixStream);

impl Transport for UnixTransport {
    type Reader = BufReader<UnixStream>;

    fn split(self) -> std::io::Result<(Self::Reader, Box<dyn Write + Send>)> {
        let writer = self.0.try_clone()?;
        Ok((BufReader::new(self.0), Box::new(writer)))
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        self.0.set_read_timeout(Some(dur))
    }
}

fn serve_connection<T: Transport>(
    transport: T,
    handle: &ServeHandle,
    label: String,
    stop: &AtomicBool,
) {
    if transport.set_read_timeout(READ_POLL).is_err() {
        return;
    }
    let Ok((reader, mut writer)) = transport.split() else {
        return;
    };
    let client = handle.client(label);
    let mut reader = reader;
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // `read_line` appends any bytes it consumed *before* a timeout
        // fires, so the buffer must survive timeout retries — clearing it
        // there would silently drop the first fragment of any command
        // whose bytes straddle a read-timeout window.
        let eof = match reader.read_line(&mut line) {
            Ok(0) => true,
            // A line is complete only at its `\n`; Ok without one means
            // the stream ended mid-line — process the fragment, then EOF.
            Ok(_) => !line.ends_with('\n'),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        if eof && line.is_empty() {
            return;
        }
        let reply: Option<String> = match parse_line(&line) {
            Ok(WireCommand::Empty) => None,
            Ok(WireCommand::Ping) => Some("ok".into()),
            Ok(WireCommand::Drain) => {
                handle.drain();
                Some("ok draining".into())
            }
            Ok(WireCommand::Swap(scenario)) => {
                let name = scenario.name();
                handle.swap(scenario);
                Some(format!("ok swapping to {name}"))
            }
            Ok(WireCommand::Request { pipeline, node, at }) => {
                // Requests are fire-and-forget; only failures answer.
                let result = match at {
                    Some(at) => client.submit_at(pipeline, node, at),
                    None => client.submit(pipeline, node),
                };
                match result {
                    Ok(()) => None,
                    Err(SubmitError::Full) => Some("err queue full".into()),
                    Err(SubmitError::Closed) => Some("err session closed".into()),
                }
            }
            Err(reason) => Some(format!("err {reason}")),
        };
        if let Some(reply) = reply {
            if writeln!(writer, "{reply}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
        }
        if eof {
            return;
        }
        line.clear();
    }
}
