//! The serving loop: drains the ingress every tick, stamps requests onto
//! the virtual clock, steps the [`LiveSession`], and publishes
//! [`MetricsSnapshot`]s.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dream_cost::{AcceleratorId, CostBackend, CostModel, Platform};
use dream_models::Scenario;
use dream_sim::live::DEFAULT_HORIZON_CAP_NS;
use dream_sim::{
    FaultKind, Histogram, LiveError, LiveSession, LiveSessionBuilder, LiveSessionRecord, Metrics,
    Scheduler, SimOutcome, SimTime, TraceConfig,
};

use crate::clock::{ServeClock, WallClock};
use crate::ingress::{AdmissionPolicy, ChannelClient, Ingress, Request, SourceStats};
use crate::watch::{watch_channel, WatchReceiver, WatchSender};

/// Configuration of a serving session.
pub struct ServeConfig {
    /// Hardware platform.
    pub platform: Platform,
    /// The initial scenario.
    pub scenario: Scenario,
    /// Workload-realization seed.
    pub seed: u64,
    /// Cost backend pricing the session.
    pub cost: Arc<dyn CostBackend>,
    /// Hard virtual horizon (sessions end here even without a drain).
    pub horizon_cap: SimTime,
    /// Virtual-time source.
    pub clock: Arc<dyn ServeClock>,
    /// Wall-clock pause between serving ticks.
    pub tick: Duration,
    /// Bounded ingress queue capacity.
    pub queue_capacity: usize,
    /// What happens when the queue is full.
    pub policy: AdmissionPolicy,
    /// At most this many requests are admitted per tick; the excess stays
    /// queued and is subject to the admission policy — the knob that keeps
    /// the *engine's* queues bounded under overload, the way the queue
    /// capacity bounds the ingress itself.
    pub max_admissions_per_tick: usize,
    /// Publish a snapshot every this many ticks (1 = every tick).
    pub snapshot_every: u32,
    /// Attach the deterministic flight recorder to the session (see
    /// [`dream_sim::TraceConfig`]); the [`SessionReport`]'s outcome then
    /// carries the [`dream_sim::Trace`]. `None` (the default) keeps the
    /// trace seam inert.
    pub trace: Option<TraceConfig>,
}

impl ServeConfig {
    /// Defaults: real-time wall clock, 1 ms ticks, a 4096-deep
    /// shed-oldest queue, unbounded per-tick admissions, snapshots every
    /// 16 ticks.
    pub fn new(platform: Platform, scenario: Scenario) -> Self {
        ServeConfig {
            platform,
            scenario,
            seed: 0,
            cost: Arc::new(CostModel::paper_default()),
            horizon_cap: SimTime::from_ns(DEFAULT_HORIZON_CAP_NS),
            clock: Arc::new(WallClock::new()),
            tick: Duration::from_millis(1),
            queue_capacity: 4096,
            policy: AdmissionPolicy::ShedOldest,
            max_admissions_per_tick: usize::MAX,
            snapshot_every: 16,
            trace: None,
        }
    }
}

/// A control command traveling beside the data path (never subject to the
/// data queue's bounds).
enum Control {
    Swap(Scenario),
    Fault {
        acc: AcceleratorId,
        kind: FaultKind,
        at: Option<SimTime>,
    },
    Drain,
}

struct ControlQueue {
    queue: Mutex<VecDeque<Control>>,
}

/// A point-in-time view of the serving session, published over the watch
/// channel: cumulative scheduling [`Metrics`] plus the live state the
/// batch simulator never has — ingress backlog, in-flight depths, and the
/// admission funnel.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Serving ticks elapsed.
    pub tick: u64,
    /// The virtual frontier: instants at or before this are fully
    /// scheduled.
    pub frontier: SimTime,
    /// The engine's current virtual instant (≤ frontier).
    pub now: SimTime,
    /// The phase requests currently target.
    pub phase: usize,
    /// Whether a drain is in progress.
    pub draining: bool,
    /// Requests waiting in the ingress queue.
    pub ingress_backlog: usize,
    /// Tasks ready for dispatch inside the engine.
    pub ready_tasks: usize,
    /// Layers executing right now.
    pub running_layers: usize,
    /// Events pending in the engine's queue — admitted arrivals not yet
    /// processed, completions in flight, and phase/horizon bookkeeping.
    pub event_backlog: usize,
    /// Total arrivals admitted so far.
    pub admitted: u64,
    /// Total requests shed from the bounded queue.
    pub shed: u64,
    /// Total requests rejected (capacity, invalid, or closed).
    pub rejected: u64,
    /// Per-source admission-funnel counters.
    pub sources: Vec<SourceStats>,
    /// Pooled per-request sojourn percentiles, in ms (p50, p95, p99);
    /// `None` until something completes. Served from the bounded
    /// per-model [`Histogram`]s the engine maintains as completions are
    /// recorded, so snapshot cost is O(buckets) regardless of session
    /// length (quantiles are bucket upper bounds: ≥ the exact sample,
    /// within 2× — see [`Histogram::quantile`]).
    pub sojourn_ms: [Option<f64>; 3],
    /// All models' sojourn histograms merged into one pooled view — the
    /// mergeable form the wire `Snapshot` reply ships and the coordinator
    /// aggregates across workers.
    pub sojourn_hist: Histogram,
    /// Wall-clock profile of the serving loop's stages, cumulative since
    /// session start.
    pub profile: StageProfile,
    /// The cumulative scheduling metrics, with the per-request sojourn
    /// sample vectors left empty ([`Metrics::clone_counters`]) — the
    /// samples grow without bound over a long session, and the bounded
    /// histograms plus counters pin down the outcome (they fingerprint
    /// identically).
    pub metrics: Metrics,
}

/// Cumulative wall-clock spent in each stage of the serving loop's tick,
/// measured at the serve clock seam (virtual time never sees these reads;
/// simulation outcomes are unaffected). Published with every
/// [`MetricsSnapshot`] and returned in the final [`SessionReport`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageProfile {
    /// Ticks measured.
    pub ticks: u64,
    /// Draining the ingress queue and admitting requests into the session.
    pub admit_ns: u64,
    /// Applying control commands (swaps, faults, drain orders).
    pub control_ns: u64,
    /// Stepping the engine to the frontier.
    pub step_ns: u64,
    /// Building and publishing metrics snapshots.
    pub publish_ns: u64,
}

impl StageProfile {
    /// Total measured tick time.
    pub fn total_ns(&self) -> u64 {
        self.admit_ns + self.control_ns + self.step_ns + self.publish_ns
    }
}

/// What a completed session hands back.
pub struct SessionReport {
    /// Final metrics (bit-identical to a batch replay of `record`).
    pub outcome: SimOutcome,
    /// The replayable session record (phase schedule + arrival trace).
    pub record: LiveSessionRecord,
    /// Final per-source admission accounting.
    pub sources: Vec<SourceStats>,
    /// Serving ticks executed.
    pub ticks: u64,
    /// Wall-clock stage profile of the whole session.
    pub profile: StageProfile,
}

/// A cloneable handle for feeding and steering a running [`ServeEngine`].
#[derive(Clone)]
pub struct ServeHandle {
    ingress: Arc<Ingress>,
    control: Arc<ControlQueue>,
    snapshots: WatchReceiver<MetricsSnapshot>,
}

impl ServeHandle {
    /// Registers a new ingress source and returns its client handle. The
    /// label is the source's row in [`SourceStats`] listings; in-process
    /// callers conventionally use `channel:<name>` (the socket listeners
    /// register as `tcp:<peer>` / `unix:<path>`).
    pub fn client(&self, label: impl Into<String>) -> ChannelClient {
        ChannelClient {
            source: self.ingress.register(label),
            ingress: Arc::clone(&self.ingress),
        }
    }

    /// Orders a scenario hot-swap. Takes effect at the next tick; if the
    /// previous swap's boundary has not been reached yet the command is
    /// retried tick by tick until it applies.
    pub fn swap(&self, scenario: Scenario) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Swap(scenario));
    }

    /// Orders a fault injection at the admitting tick's frontier (the
    /// earliest legally stampable instant). Chaos is fire-and-forget:
    /// faults against out-of-range accelerators or finished sessions are
    /// dropped, not errors — the injector races the session by design.
    pub fn fault(&self, acc: AcceleratorId, kind: FaultKind) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Fault {
                acc,
                kind,
                at: None,
            });
    }

    /// Orders a fault injection at an explicit virtual instant (clamped
    /// into the open window like a stamped request).
    pub fn fault_at(&self, acc: AcceleratorId, kind: FaultKind, at: SimTime) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Fault {
                acc,
                kind,
                at: Some(at),
            });
    }

    /// Orders a graceful drain: admissions stop, in-flight work completes,
    /// the session finishes and [`ServeEngine::run`] returns.
    pub fn drain(&self) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Drain);
    }

    /// A receiver over the session's snapshot stream.
    pub fn snapshots(&self) -> WatchReceiver<MetricsSnapshot> {
        self.snapshots.clone()
    }

    /// Whether the serving loop has shut its ingress (drained or dropped).
    pub fn is_closed(&self) -> bool {
        self.ingress.is_closed()
    }
}

/// The live serving runtime: owns a [`LiveSession`] and drives it from
/// the ingress against the configured clock. See the crate docs for the
/// execution model.
pub struct ServeEngine {
    session: LiveSession,
    clock: Arc<dyn ServeClock>,
    tick: Duration,
    max_admissions_per_tick: usize,
    snapshot_every: u32,
    ingress: Arc<Ingress>,
    control: Arc<ControlQueue>,
    publisher: WatchSender<MetricsSnapshot>,
    ticks: u64,
    scratch: Vec<Request>,
    profile: StageProfile,
}

impl ServeEngine {
    /// Builds the engine and its handle. The session (and its offline
    /// cost tables) is constructed here, so configuration errors surface
    /// before any traffic flows.
    ///
    /// # Errors
    ///
    /// Propagates [`LiveError`] from session construction (uncostable
    /// scenario, zero horizon).
    pub fn new(
        config: ServeConfig,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<(ServeEngine, ServeHandle), LiveError> {
        let mut builder = LiveSessionBuilder::new(config.platform, config.scenario)
            .seed(config.seed)
            .cost_backend(config.cost)
            .horizon_cap(config.horizon_cap);
        if let Some(trace) = config.trace {
            builder = builder.trace(trace);
        }
        let session = builder.start(scheduler)?;
        let ingress = Ingress::new(config.queue_capacity, config.policy);
        let control = Arc::new(ControlQueue {
            queue: Mutex::new(VecDeque::new()),
        });
        let (publisher, snapshots) = watch_channel();
        let handle = ServeHandle {
            ingress: Arc::clone(&ingress),
            control: Arc::clone(&control),
            snapshots,
        };
        Ok((
            ServeEngine {
                session,
                clock: config.clock,
                tick: config.tick,
                max_admissions_per_tick: config.max_admissions_per_tick.max(1),
                snapshot_every: config.snapshot_every.max(1),
                ingress,
                control,
                publisher,
                ticks: 0,
                scratch: Vec::new(),
                profile: StageProfile::default(),
            },
            handle,
        ))
    }

    /// Runs the serving loop until the session drains (or hits the
    /// horizon cap), then returns the report. Blocks the calling thread;
    /// spawn it to serve in the background.
    ///
    /// # Errors
    ///
    /// Propagates [`LiveError`] from the final drain (cannot occur for a
    /// session this engine has driven itself).
    pub fn run(mut self) -> Result<SessionReport, LiveError> {
        loop {
            let finished = self.run_tick()?;
            if finished {
                break;
            }
            std::thread::sleep(self.tick);
        }
        self.ingress.close();
        let ticks = self.ticks;
        let sources = self.ingress.stats();
        self.publish_snapshot();
        let profile = self.profile;
        let (outcome, record) = self.session.finish()?;
        Ok(SessionReport {
            outcome,
            record,
            sources,
            ticks,
            profile,
        })
    }

    /// One serving tick: stamp + admit queued requests, apply control
    /// commands, step to the frontier, publish. Returns whether the
    /// session is done. Exposed crate-internally for deterministic tests.
    pub(crate) fn run_tick(&mut self) -> Result<bool, LiveError> {
        self.ticks += 1;
        self.profile.ticks += 1;
        // Stage profiling reads the wall clock directly: it measures the
        // serving loop itself (the same side of the clock seam the tick
        // sleep lives on) and never feeds virtual time or a decision.
        #[allow(clippy::disallowed_methods)]
        // detlint: allow(wall-clock) -- stage profiling at the serve clock seam; never feeds a decision
        let t0 = std::time::Instant::now();
        // The frontier: the clock, but never behind what the session has
        // already closed (a stalled clock must not stall admission).
        let frontier = self.clock.now().max(self.session.next_stamp());

        // 1. Data: admit up to the per-tick budget.
        self.scratch.clear();
        self.ingress
            .drain(self.max_admissions_per_tick, &mut self.scratch);
        for i in 0..self.scratch.len() {
            let req = self.scratch[i];
            let stamp = req.at.unwrap_or(frontier);
            match self.session.admit(req.pipeline, req.node, stamp) {
                Ok(admission) => {
                    self.ingress
                        .record_admitted(req.source, admission.at != stamp);
                }
                Err(LiveError::UnknownModel { .. }) | Err(LiveError::PastHorizon { .. }) => {
                    self.ingress.record_invalid(req.source);
                }
                Err(LiveError::Draining) | Err(LiveError::Finished) => {
                    self.ingress.record_closed_rejection(req.source);
                }
                Err(other) => return Err(other),
            }
        }

        #[allow(clippy::disallowed_methods)]
        // detlint: allow(wall-clock) -- stage profiling at the serve clock seam; never feeds a decision
        let t1 = std::time::Instant::now();
        self.profile.admit_ns += (t1 - t0).as_nanos() as u64;

        // 2. Control: swaps and drains, in order. A swap blocked on a
        //    pending boundary goes back to the front and is retried next
        //    tick; everything behind it waits so command order holds.
        let mut drain_ordered = false;
        loop {
            let cmd = self
                .control
                .queue
                .lock()
                .expect("control queue poisoned")
                .pop_front();
            match cmd {
                None => break,
                Some(Control::Drain) => {
                    drain_ordered = true;
                    break;
                }
                Some(Control::Swap(scenario)) => {
                    match self.session.swap_scenario(scenario.clone(), frontier) {
                        Ok(_) => {}
                        Err(LiveError::SwapPending { .. }) => {
                            self.control
                                .queue
                                .lock()
                                .expect("control queue poisoned")
                                .push_front(Control::Swap(scenario));
                            break;
                        }
                        Err(LiveError::Draining) | Err(LiveError::Finished) => {}
                        Err(e) => return Err(e),
                    }
                }
                Some(Control::Fault { acc, kind, at }) => {
                    // Chaos is fire-and-forget: a fault the session can no
                    // longer take (finished, past the horizon, bad target)
                    // is dropped — the injector has no claim on timing.
                    match self.session.admit_fault(acc, kind, at.unwrap_or(frontier)) {
                        Ok(_)
                        | Err(LiveError::Finished)
                        | Err(LiveError::PastHorizon { .. })
                        | Err(LiveError::Sim(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }

        #[allow(clippy::disallowed_methods)]
        // detlint: allow(wall-clock) -- stage profiling at the serve clock seam; never feeds a decision
        let t2 = std::time::Instant::now();
        self.profile.control_ns += (t2 - t1).as_nanos() as u64;

        // 3. Step the session to the frontier.
        self.session.step_until(frontier);

        if drain_ordered && !self.session.is_draining() && !self.session.is_finished() {
            match self.session.begin_drain(self.session.next_stamp()) {
                Ok(horizon) => {
                    // No admission can precede the resolved horizon now:
                    // shut the ingress and fast-forward the drain — the
                    // wall clock has nothing left to gate.
                    self.ingress.close();
                    self.session.step_until(horizon);
                }
                Err(LiveError::SwapPending { boundary }) => {
                    // A swap boundary is still outstanding. The user wants
                    // out: fast-forward virtual time across the boundary
                    // and drain from there.
                    self.session.step_until(boundary);
                    let horizon = self.session.begin_drain(self.session.next_stamp())?;
                    self.ingress.close();
                    self.session.step_until(horizon);
                }
                Err(e) => return Err(e),
            }
        }

        #[allow(clippy::disallowed_methods)]
        // detlint: allow(wall-clock) -- stage profiling at the serve clock seam; never feeds a decision
        let t3 = std::time::Instant::now();
        self.profile.step_ns += (t3 - t2).as_nanos() as u64;

        if self.ticks.is_multiple_of(u64::from(self.snapshot_every)) {
            self.publish_snapshot();
        }
        self.profile.publish_ns += t3.elapsed().as_nanos() as u64;
        Ok(self.session.is_finished())
    }

    fn publish_snapshot(&mut self) {
        // One lock acquisition for stats + backlog, so every published
        // snapshot satisfies the funnel identity even while peers submit.
        let (sources, ingress_backlog) = self.ingress.funnel_snapshot();
        let admitted = sources.iter().map(|s| s.admitted).sum();
        let shed = sources.iter().map(|s| s.shed).sum();
        let rejected = sources
            .iter()
            .map(|s| s.rejected_capacity + s.rejected_invalid + s.rejected_closed)
            .sum();
        // The engine folds every completion into bounded per-model
        // histograms as it runs; merging them is O(models × buckets) per
        // snapshot, never O(session length) — and unlike the former
        // sliding sample window, the merged form is exact over the whole
        // session and mergeable again across workers.
        let live = self.session.live_metrics();
        let sojourn_hist = live.sojourn_histogram();
        let sojourn_ms = [
            sojourn_hist.quantile_ms(0.50),
            sojourn_hist.quantile_ms(0.95),
            sojourn_hist.quantile_ms(0.99),
        ];
        let metrics = live.clone_counters();
        self.publisher.publish(MetricsSnapshot {
            tick: self.ticks,
            frontier: self.session.closed().unwrap_or(SimTime::ZERO),
            now: self.session.now(),
            phase: self.session.current_phase(),
            draining: self.session.is_draining(),
            ingress_backlog,
            ready_tasks: self.session.ready_count(),
            running_layers: self.session.running_count(),
            event_backlog: self.session.event_queue_depth(),
            admitted,
            shed,
            rejected,
            sources,
            sojourn_ms,
            sojourn_hist,
            profile: self.profile,
            metrics,
        });
    }
}
