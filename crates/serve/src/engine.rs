//! The serving loop: drains the ingress every tick, stamps requests onto
//! the virtual clock, steps the [`LiveSession`], and publishes
//! [`MetricsSnapshot`]s.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dream_cost::{AcceleratorId, CostBackend, CostModel, Platform};
use dream_models::Scenario;
use dream_sim::live::DEFAULT_HORIZON_CAP_NS;
use dream_sim::{
    FaultKind, LiveError, LiveSession, LiveSessionBuilder, LiveSessionRecord, Metrics, ModelKey,
    Scheduler, SimOutcome, SimTime,
};

use crate::clock::{ServeClock, WallClock};
use crate::ingress::{AdmissionPolicy, ChannelClient, Ingress, Request, SourceStats};
use crate::watch::{watch_channel, WatchReceiver, WatchSender};

/// Configuration of a serving session.
pub struct ServeConfig {
    /// Hardware platform.
    pub platform: Platform,
    /// The initial scenario.
    pub scenario: Scenario,
    /// Workload-realization seed.
    pub seed: u64,
    /// Cost backend pricing the session.
    pub cost: Arc<dyn CostBackend>,
    /// Hard virtual horizon (sessions end here even without a drain).
    pub horizon_cap: SimTime,
    /// Virtual-time source.
    pub clock: Arc<dyn ServeClock>,
    /// Wall-clock pause between serving ticks.
    pub tick: Duration,
    /// Bounded ingress queue capacity.
    pub queue_capacity: usize,
    /// What happens when the queue is full.
    pub policy: AdmissionPolicy,
    /// At most this many requests are admitted per tick; the excess stays
    /// queued and is subject to the admission policy — the knob that keeps
    /// the *engine's* queues bounded under overload, the way the queue
    /// capacity bounds the ingress itself.
    pub max_admissions_per_tick: usize,
    /// Publish a snapshot every this many ticks (1 = every tick).
    pub snapshot_every: u32,
}

impl ServeConfig {
    /// Defaults: real-time wall clock, 1 ms ticks, a 4096-deep
    /// shed-oldest queue, unbounded per-tick admissions, snapshots every
    /// 16 ticks.
    pub fn new(platform: Platform, scenario: Scenario) -> Self {
        ServeConfig {
            platform,
            scenario,
            seed: 0,
            cost: Arc::new(CostModel::paper_default()),
            horizon_cap: SimTime::from_ns(DEFAULT_HORIZON_CAP_NS),
            clock: Arc::new(WallClock::new()),
            tick: Duration::from_millis(1),
            queue_capacity: 4096,
            policy: AdmissionPolicy::ShedOldest,
            max_admissions_per_tick: usize::MAX,
            snapshot_every: 16,
        }
    }
}

/// A control command traveling beside the data path (never subject to the
/// data queue's bounds).
enum Control {
    Swap(Scenario),
    Fault {
        acc: AcceleratorId,
        kind: FaultKind,
        at: Option<SimTime>,
    },
    Drain,
}

struct ControlQueue {
    queue: Mutex<VecDeque<Control>>,
}

/// A point-in-time view of the serving session, published over the watch
/// channel: cumulative scheduling [`Metrics`] plus the live state the
/// batch simulator never has — ingress backlog, in-flight depths, and the
/// admission funnel.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Serving ticks elapsed.
    pub tick: u64,
    /// The virtual frontier: instants at or before this are fully
    /// scheduled.
    pub frontier: SimTime,
    /// The engine's current virtual instant (≤ frontier).
    pub now: SimTime,
    /// The phase requests currently target.
    pub phase: usize,
    /// Whether a drain is in progress.
    pub draining: bool,
    /// Requests waiting in the ingress queue.
    pub ingress_backlog: usize,
    /// Tasks ready for dispatch inside the engine.
    pub ready_tasks: usize,
    /// Layers executing right now.
    pub running_layers: usize,
    /// Events pending in the engine's queue — admitted arrivals not yet
    /// processed, completions in flight, and phase/horizon bookkeeping.
    pub event_backlog: usize,
    /// Total arrivals admitted so far.
    pub admitted: u64,
    /// Total requests shed from the bounded queue.
    pub shed: u64,
    /// Total requests rejected (capacity, invalid, or closed).
    pub rejected: u64,
    /// Per-source admission-funnel counters.
    pub sources: Vec<SourceStats>,
    /// Pooled per-request sojourn percentiles, in ms (p50, p95, p99);
    /// `None` until something completes. Computed over a sliding window
    /// of the most recent [`SOJOURN_WINDOW`] completions, so snapshot
    /// cost stays O(1) in session length (exact for short sessions,
    /// recent-traffic percentiles for long ones — the number a live
    /// dashboard wants anyway).
    pub sojourn_ms: [Option<f64>; 3],
    /// The cumulative scheduling metrics, with the per-request sojourn
    /// sample vectors left empty ([`Metrics::clone_counters`]) — the
    /// samples grow without bound over a long session, and the counters
    /// alone pin down the outcome (they fingerprint identically).
    pub metrics: Metrics,
}

/// How many recent completions the snapshot sojourn percentiles pool.
pub const SOJOURN_WINDOW: usize = 4096;

/// What a completed session hands back.
pub struct SessionReport {
    /// Final metrics (bit-identical to a batch replay of `record`).
    pub outcome: SimOutcome,
    /// The replayable session record (phase schedule + arrival trace).
    pub record: LiveSessionRecord,
    /// Final per-source admission accounting.
    pub sources: Vec<SourceStats>,
    /// Serving ticks executed.
    pub ticks: u64,
}

/// A cloneable handle for feeding and steering a running [`ServeEngine`].
#[derive(Clone)]
pub struct ServeHandle {
    ingress: Arc<Ingress>,
    control: Arc<ControlQueue>,
    snapshots: WatchReceiver<MetricsSnapshot>,
}

impl ServeHandle {
    /// Registers a new ingress source and returns its client handle. The
    /// label is the source's row in [`SourceStats`] listings; in-process
    /// callers conventionally use `channel:<name>` (the socket listeners
    /// register as `tcp:<peer>` / `unix:<path>`).
    pub fn client(&self, label: impl Into<String>) -> ChannelClient {
        ChannelClient {
            source: self.ingress.register(label),
            ingress: Arc::clone(&self.ingress),
        }
    }

    /// Orders a scenario hot-swap. Takes effect at the next tick; if the
    /// previous swap's boundary has not been reached yet the command is
    /// retried tick by tick until it applies.
    pub fn swap(&self, scenario: Scenario) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Swap(scenario));
    }

    /// Orders a fault injection at the admitting tick's frontier (the
    /// earliest legally stampable instant). Chaos is fire-and-forget:
    /// faults against out-of-range accelerators or finished sessions are
    /// dropped, not errors — the injector races the session by design.
    pub fn fault(&self, acc: AcceleratorId, kind: FaultKind) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Fault {
                acc,
                kind,
                at: None,
            });
    }

    /// Orders a fault injection at an explicit virtual instant (clamped
    /// into the open window like a stamped request).
    pub fn fault_at(&self, acc: AcceleratorId, kind: FaultKind, at: SimTime) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Fault {
                acc,
                kind,
                at: Some(at),
            });
    }

    /// Orders a graceful drain: admissions stop, in-flight work completes,
    /// the session finishes and [`ServeEngine::run`] returns.
    pub fn drain(&self) {
        self.control
            .queue
            .lock()
            .expect("control queue poisoned")
            .push_back(Control::Drain);
    }

    /// A receiver over the session's snapshot stream.
    pub fn snapshots(&self) -> WatchReceiver<MetricsSnapshot> {
        self.snapshots.clone()
    }

    /// Whether the serving loop has shut its ingress (drained or dropped).
    pub fn is_closed(&self) -> bool {
        self.ingress.is_closed()
    }
}

/// The live serving runtime: owns a [`LiveSession`] and drives it from
/// the ingress against the configured clock. See the crate docs for the
/// execution model.
pub struct ServeEngine {
    session: LiveSession,
    clock: Arc<dyn ServeClock>,
    tick: Duration,
    max_admissions_per_tick: usize,
    snapshot_every: u32,
    ingress: Arc<Ingress>,
    control: Arc<ControlQueue>,
    publisher: WatchSender<MetricsSnapshot>,
    ticks: u64,
    scratch: Vec<Request>,
    /// How many sojourn samples per model have been folded into the
    /// window already (the engine's vectors are append-only).
    sojourn_seen: BTreeMap<ModelKey, usize>,
    /// The most recent completions' sojourn samples, bounded.
    sojourn_window: VecDeque<u64>,
    sojourn_scratch: Vec<u64>,
}

impl ServeEngine {
    /// Builds the engine and its handle. The session (and its offline
    /// cost tables) is constructed here, so configuration errors surface
    /// before any traffic flows.
    ///
    /// # Errors
    ///
    /// Propagates [`LiveError`] from session construction (uncostable
    /// scenario, zero horizon).
    pub fn new(
        config: ServeConfig,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<(ServeEngine, ServeHandle), LiveError> {
        let session = LiveSessionBuilder::new(config.platform, config.scenario)
            .seed(config.seed)
            .cost_backend(config.cost)
            .horizon_cap(config.horizon_cap)
            .start(scheduler)?;
        let ingress = Ingress::new(config.queue_capacity, config.policy);
        let control = Arc::new(ControlQueue {
            queue: Mutex::new(VecDeque::new()),
        });
        let (publisher, snapshots) = watch_channel();
        let handle = ServeHandle {
            ingress: Arc::clone(&ingress),
            control: Arc::clone(&control),
            snapshots,
        };
        Ok((
            ServeEngine {
                session,
                clock: config.clock,
                tick: config.tick,
                max_admissions_per_tick: config.max_admissions_per_tick.max(1),
                snapshot_every: config.snapshot_every.max(1),
                ingress,
                control,
                publisher,
                ticks: 0,
                scratch: Vec::new(),
                sojourn_seen: BTreeMap::new(),
                sojourn_window: VecDeque::with_capacity(SOJOURN_WINDOW),
                sojourn_scratch: Vec::with_capacity(SOJOURN_WINDOW),
            },
            handle,
        ))
    }

    /// Runs the serving loop until the session drains (or hits the
    /// horizon cap), then returns the report. Blocks the calling thread;
    /// spawn it to serve in the background.
    ///
    /// # Errors
    ///
    /// Propagates [`LiveError`] from the final drain (cannot occur for a
    /// session this engine has driven itself).
    pub fn run(mut self) -> Result<SessionReport, LiveError> {
        loop {
            let finished = self.run_tick()?;
            if finished {
                break;
            }
            std::thread::sleep(self.tick);
        }
        self.ingress.close();
        let ticks = self.ticks;
        let sources = self.ingress.stats();
        self.publish_snapshot();
        let (outcome, record) = self.session.finish()?;
        Ok(SessionReport {
            outcome,
            record,
            sources,
            ticks,
        })
    }

    /// One serving tick: stamp + admit queued requests, apply control
    /// commands, step to the frontier, publish. Returns whether the
    /// session is done. Exposed crate-internally for deterministic tests.
    pub(crate) fn run_tick(&mut self) -> Result<bool, LiveError> {
        self.ticks += 1;
        // The frontier: the clock, but never behind what the session has
        // already closed (a stalled clock must not stall admission).
        let frontier = self.clock.now().max(self.session.next_stamp());

        // 1. Data: admit up to the per-tick budget.
        self.scratch.clear();
        self.ingress
            .drain(self.max_admissions_per_tick, &mut self.scratch);
        for i in 0..self.scratch.len() {
            let req = self.scratch[i];
            let stamp = req.at.unwrap_or(frontier);
            match self.session.admit(req.pipeline, req.node, stamp) {
                Ok(admission) => {
                    self.ingress
                        .record_admitted(req.source, admission.at != stamp);
                }
                Err(LiveError::UnknownModel { .. }) | Err(LiveError::PastHorizon { .. }) => {
                    self.ingress.record_invalid(req.source);
                }
                Err(LiveError::Draining) | Err(LiveError::Finished) => {
                    self.ingress.record_closed_rejection(req.source);
                }
                Err(other) => return Err(other),
            }
        }

        // 2. Control: swaps and drains, in order. A swap blocked on a
        //    pending boundary goes back to the front and is retried next
        //    tick; everything behind it waits so command order holds.
        let mut drain_ordered = false;
        loop {
            let cmd = self
                .control
                .queue
                .lock()
                .expect("control queue poisoned")
                .pop_front();
            match cmd {
                None => break,
                Some(Control::Drain) => {
                    drain_ordered = true;
                    break;
                }
                Some(Control::Swap(scenario)) => {
                    match self.session.swap_scenario(scenario.clone(), frontier) {
                        Ok(_) => {}
                        Err(LiveError::SwapPending { .. }) => {
                            self.control
                                .queue
                                .lock()
                                .expect("control queue poisoned")
                                .push_front(Control::Swap(scenario));
                            break;
                        }
                        Err(LiveError::Draining) | Err(LiveError::Finished) => {}
                        Err(e) => return Err(e),
                    }
                }
                Some(Control::Fault { acc, kind, at }) => {
                    // Chaos is fire-and-forget: a fault the session can no
                    // longer take (finished, past the horizon, bad target)
                    // is dropped — the injector has no claim on timing.
                    match self.session.admit_fault(acc, kind, at.unwrap_or(frontier)) {
                        Ok(_)
                        | Err(LiveError::Finished)
                        | Err(LiveError::PastHorizon { .. })
                        | Err(LiveError::Sim(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }

        // 3. Step the session to the frontier.
        self.session.step_until(frontier);

        if drain_ordered && !self.session.is_draining() && !self.session.is_finished() {
            match self.session.begin_drain(self.session.next_stamp()) {
                Ok(horizon) => {
                    // No admission can precede the resolved horizon now:
                    // shut the ingress and fast-forward the drain — the
                    // wall clock has nothing left to gate.
                    self.ingress.close();
                    self.session.step_until(horizon);
                }
                Err(LiveError::SwapPending { boundary }) => {
                    // A swap boundary is still outstanding. The user wants
                    // out: fast-forward virtual time across the boundary
                    // and drain from there.
                    self.session.step_until(boundary);
                    let horizon = self.session.begin_drain(self.session.next_stamp())?;
                    self.ingress.close();
                    self.session.step_until(horizon);
                }
                Err(e) => return Err(e),
            }
        }

        if self.ticks.is_multiple_of(u64::from(self.snapshot_every)) {
            self.publish_snapshot();
        }
        Ok(self.session.is_finished())
    }

    fn publish_snapshot(&mut self) {
        // One lock acquisition for stats + backlog, so every published
        // snapshot satisfies the funnel identity even while peers submit.
        let (sources, ingress_backlog) = self.ingress.funnel_snapshot();
        let admitted = sources.iter().map(|s| s.admitted).sum();
        let shed = sources.iter().map(|s| s.shed).sum();
        let rejected = sources
            .iter()
            .map(|s| s.rejected_capacity + s.rejected_invalid + s.rejected_closed)
            .sum();
        // Fold the sojourn samples that arrived since the last snapshot
        // into the bounded window, then publish counters only — both
        // sides stay O(window + new samples), never O(session length).
        let live = self.session.live_metrics();
        for (key, stats) in live.models() {
            let seen = self.sojourn_seen.entry(*key).or_insert(0);
            for &sample in &stats.sojourn_ns[*seen..] {
                if self.sojourn_window.len() == SOJOURN_WINDOW {
                    self.sojourn_window.pop_front();
                }
                self.sojourn_window.push_back(sample);
            }
            *seen = stats.sojourn_ns.len();
        }
        self.sojourn_scratch.clear();
        self.sojourn_scratch.extend(self.sojourn_window.iter());
        self.sojourn_scratch.sort_unstable();
        let pct = |q: f64| -> Option<f64> {
            // Nearest-rank, matching `Metrics::sojourn_percentile_ms`.
            if self.sojourn_scratch.is_empty() {
                return None;
            }
            let rank = (q * self.sojourn_scratch.len() as f64).ceil() as usize;
            let idx = rank.clamp(1, self.sojourn_scratch.len()) - 1;
            Some(self.sojourn_scratch[idx] as f64 / 1.0e6)
        };
        let sojourn_ms = [pct(0.50), pct(0.95), pct(0.99)];
        let metrics = live.clone_counters();
        self.publisher.publish(MetricsSnapshot {
            tick: self.ticks,
            frontier: self.session.closed().unwrap_or(SimTime::ZERO),
            now: self.session.now(),
            phase: self.session.current_phase(),
            draining: self.session.is_draining(),
            ingress_backlog,
            ready_tasks: self.session.ready_count(),
            running_layers: self.session.running_count(),
            event_backlog: self.session.event_queue_depth(),
            admitted,
            shed,
            rejected,
            sources,
            sojourn_ms,
            metrics,
        });
    }
}
