//! `dream-serve` — a live, long-running serving runtime that feeds the
//! DREAM engine from real event sources.
//!
//! Every other entry point in this workspace resolves its whole arrival
//! horizon up front and replays it through the batch simulator. This
//! crate serves the *online* problem the paper actually poses: requests
//! arrive as they happen (in-process [`ChannelClient`]s, TCP or
//! Unix-socket peers speaking the framed [wire protocol](wire) (v1/v2,
//! min-of-versions negotiated) or the
//! v0 line protocol), scenarios shift mid-session, and the scheduler
//! decides with no knowledge of the future.
//!
//! # Architecture
//!
//! ```text
//! ChannelClient ─┐                       ┌─ MetricsSnapshot (watch)
//! tcp listener ──┤→ bounded Ingress ─→ ServeEngine ─→ LiveSession (dream-sim)
//! unix listener ─┘   (admission policy)  │  tick loop      │
//!                                        └─ SessionReport ←┘ (drain)
//! ```
//!
//! * The **ingress** ([`ingress`]) is a bounded queue with an explicit
//!   [`AdmissionPolicy`] — block (backpressure), shed-oldest, or
//!   reject — and per-source funnel accounting (submitted / admitted /
//!   clamped / shed / rejected), the live counterpart of the batch
//!   engine's released-vs-censored boundary semantics.
//! * The **serving loop** ([`ServeEngine`]) wakes every tick, stamps
//!   drained requests onto the virtual clock ([`clock`]), admits them
//!   into a [`dream_sim::LiveSession`], applies control commands
//!   (scenario hot-swap, drain), steps the engine to the frontier, and
//!   publishes [`MetricsSnapshot`]s over a watch channel ([`watch`]).
//! * Every admitted arrival is **recorded**: a finished session returns a
//!   [`dream_sim::LiveSessionRecord`] whose batch replay produces
//!   bit-identical `Metrics` — live serving is the simulator fed
//!   incrementally, not an approximation of it (asserted end-to-end in
//!   `tests/replay_equivalence.rs`).
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use dream_models::{CascadeProbability, PipelineId, NodeId, Scenario, ScenarioKind};
//! use dream_cost::{Platform, PlatformPreset};
//! use dream_serve::{ServeConfig, ServeEngine};
//!
//! let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
//! let config = ServeConfig::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario);
//! # fn scheduler() -> Box<dyn dream_sim::Scheduler> { unimplemented!() }
//! let (engine, handle) = ServeEngine::new(config, scheduler()).unwrap();
//! let server = std::thread::spawn(move || engine.run());
//! let client = handle.client("app");
//! client.submit(PipelineId(0), NodeId(0)).unwrap();
//! handle.drain();
//! let report = server.join().unwrap().unwrap();
//! assert!(report.record.trace().len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod clock;
mod engine;
pub mod ingress;
pub mod server;
pub mod watch;
pub mod wire;

pub use client::{ClientError, WireClient};
pub use clock::{ManualClock, ServeClock, WallClock};
pub use engine::{
    MetricsSnapshot, ServeConfig, ServeEngine, ServeHandle, SessionReport, StageProfile,
};
pub use ingress::{AdmissionPolicy, ChannelClient, SourceId, SourceStats, SubmitError};
pub use server::{
    listen_tcp, listen_tcp_with_runner, listen_unix, listen_unix_with_runner, CellRunner,
    SocketServer,
};
pub use watch::{watch_channel, WatchReceiver, WatchSender};
pub use wire::{
    parse_line, parse_scenario_kind, validate_fault, CellArrival, CellDreamVariant, CellOutcome,
    CellScheduler, CellSpec, ErrorCode, Reply, Request, WireCommand, WireError, WireSnapshot,
    MAX_LINE_BYTES, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
