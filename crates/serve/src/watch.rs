//! A tiny single-slot broadcast ("watch") channel.
//!
//! The serving loop publishes [`MetricsSnapshot`](crate::MetricsSnapshot)s
//! here; any number of receivers read the latest value at their own pace.
//! Only the newest value is retained — a slow reader observes fresh state,
//! never a backlog (the right semantics for monitoring, and allocation-free
//! for the publisher beyond one `Arc`).

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Shared<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

struct State<T> {
    version: u64,
    value: Option<Arc<T>>,
    closed: bool,
}

/// The publishing side. Dropping it closes the channel.
pub struct WatchSender<T> {
    shared: Arc<Shared<T>>,
}

/// The reading side. Cheap to clone; each clone tracks what it has seen.
pub struct WatchReceiver<T> {
    shared: Arc<Shared<T>>,
    seen: u64,
}

impl<T> Clone for WatchReceiver<T> {
    fn clone(&self) -> Self {
        WatchReceiver {
            shared: Arc::clone(&self.shared),
            seen: self.seen,
        }
    }
}

/// Creates a watch channel with no initial value.
pub fn watch_channel<T>() -> (WatchSender<T>, WatchReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            version: 0,
            value: None,
            closed: false,
        }),
        cond: Condvar::new(),
    });
    (
        WatchSender {
            shared: Arc::clone(&shared),
        },
        WatchReceiver { shared, seen: 0 },
    )
}

impl<T> WatchSender<T> {
    /// Replaces the current value and wakes waiting receivers.
    pub fn publish(&self, value: T) {
        let mut st = self.shared.state.lock().expect("watch state poisoned");
        st.version += 1;
        st.value = Some(Arc::new(value));
        drop(st);
        self.shared.cond.notify_all();
    }

    /// A receiver for this channel (starts unseen: its first
    /// [`wait_for_update`](WatchReceiver::wait_for_update) returns the
    /// current value, if any).
    pub fn subscribe(&self) -> WatchReceiver<T> {
        WatchReceiver {
            shared: Arc::clone(&self.shared),
            seen: 0,
        }
    }
}

impl<T> Drop for WatchSender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("watch state poisoned");
        st.closed = true;
        drop(st);
        self.shared.cond.notify_all();
    }
}

impl<T> WatchReceiver<T> {
    /// The latest published value, regardless of whether it was seen
    /// before. `None` if nothing was published yet.
    pub fn latest(&mut self) -> Option<Arc<T>> {
        let st = self.shared.state.lock().expect("watch state poisoned");
        self.seen = st.version;
        st.value.clone()
    }

    /// Blocks until a value newer than the last one seen is published (or
    /// `timeout` elapses / the sender is dropped), returning it.
    pub fn wait_for_update(&mut self, timeout: Duration) -> Option<Arc<T>> {
        let mut st = self.shared.state.lock().expect("watch state poisoned");
        // Wall-clock timeout plumbing for live subscribers; replay
        // determinism comes from the recorded trace, not this wait.
        #[allow(clippy::disallowed_methods)]
        let deadline = std::time::Instant::now() + timeout;
        while st.version == self.seen && !st.closed {
            #[allow(clippy::disallowed_methods)]
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(st, left)
                .expect("watch state poisoned");
            st = guard;
        }
        if st.version == self.seen {
            return None; // closed without news
        }
        self.seen = st.version;
        st.value.clone()
    }

    /// Whether the sender is gone.
    pub fn is_closed(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("watch state poisoned")
            .closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_latest_value_only() {
        let (tx, mut rx) = watch_channel::<u32>();
        assert!(rx.latest().is_none());
        tx.publish(1);
        tx.publish(2);
        assert_eq!(*rx.latest().unwrap(), 2);
        // Nothing new: a short wait times out.
        assert!(rx.wait_for_update(Duration::from_millis(10)).is_none());
        tx.publish(3);
        assert_eq!(*rx.wait_for_update(Duration::from_secs(1)).unwrap(), 3);
    }

    #[test]
    fn wakes_blocked_receivers_across_threads() {
        let (tx, mut rx) = watch_channel::<&'static str>();
        let waiter =
            std::thread::spawn(move || rx.wait_for_update(Duration::from_secs(5)).map(|v| *v));
        std::thread::sleep(Duration::from_millis(20));
        tx.publish("hello");
        assert_eq!(waiter.join().unwrap(), Some("hello"));
    }

    #[test]
    fn close_unblocks_waiters() {
        let (tx, mut rx) = watch_channel::<u8>();
        drop(tx);
        assert!(rx.is_closed());
        assert!(rx.wait_for_update(Duration::from_secs(1)).is_none());
    }
}
