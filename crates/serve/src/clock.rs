//! Virtual-time sources for the serving loop.
//!
//! The engine schedules in *virtual* nanoseconds; a [`ServeClock`] maps
//! the outside world onto that axis. [`WallClock`] ties virtual time to
//! wall time (optionally accelerated, so an hour of traffic replays in
//! seconds); [`ManualClock`] hands control to the caller — the
//! deterministic choice for tests and offline feeding.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dream_sim::SimTime;

/// A monotone source of virtual session time.
pub trait ServeClock: Send + Sync {
    /// Virtual nanoseconds elapsed since the session started. Must be
    /// monotone non-decreasing.
    fn now(&self) -> SimTime;
}

/// Virtual time = wall time since construction, times `scale`.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
    scale: f64,
}

impl WallClock {
    /// Real-time: one virtual nanosecond per wall nanosecond.
    pub fn new() -> Self {
        Self::accelerated(1.0)
    }

    /// Accelerated (or slowed) time: `scale` virtual nanoseconds per wall
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is finite and positive.
    pub fn accelerated(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "clock scale must be positive, got {scale}"
        );
        WallClock {
            // The serve-side Clock seam is the one legitimate wall-clock
            // boundary: sessions replay deterministically from the
            // recorded arrival trace, never from this read.
            #[allow(clippy::disallowed_methods)]
            start: Instant::now(),
            scale,
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeClock for WallClock {
    fn now(&self) -> SimTime {
        let ns = self.start.elapsed().as_nanos() as f64 * self.scale;
        SimTime::from_ns_f64(ns)
    }
}

/// A caller-driven clock: time moves only when [`advance_to`] /
/// [`advance_by`] say so. Cloned handles share the same time.
///
/// [`advance_to`]: ManualClock::advance_to
/// [`advance_by`]: ManualClock::advance_by
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock stopped at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward to `t` (ignored if time is already past it).
    pub fn advance_to(&self, t: SimTime) {
        self.ns.fetch_max(t.as_ns(), Ordering::SeqCst);
    }

    /// Moves time forward by `dt`.
    pub fn advance_by(&self, dt: SimTime) {
        self.ns.fetch_add(dt.as_ns(), Ordering::SeqCst);
    }
}

impl ServeClock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_ns(self.ns.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_and_monotone() {
        let c = ManualClock::new();
        let c2 = c.clone();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_ns(50));
        assert_eq!(c2.now(), SimTime::from_ns(50));
        c2.advance_to(SimTime::from_ns(20)); // backwards: ignored
        assert_eq!(c.now(), SimTime::from_ns(50));
        c.advance_by(SimTime::from_ns(5));
        assert_eq!(c2.now(), SimTime::from_ns(55));
    }

    #[test]
    fn wall_clock_advances_and_scales() {
        let slow = WallClock::new();
        let fast = WallClock::accelerated(1000.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let a = slow.now();
        let b = fast.now();
        assert!(a > SimTime::ZERO);
        assert!(b > a, "accelerated clock runs faster: {b} vs {a}");
    }

    #[test]
    #[should_panic(expected = "clock scale")]
    fn rejects_bad_scale() {
        let _ = WallClock::accelerated(0.0);
    }
}
