//! The ingress layer: bounded request queues with an explicit admission
//! policy, fed by in-process [`ChannelClient`]s and by the socket
//! listeners ([`crate::socket`]), drained by the serving loop.
//!
//! Every request is attributed to a registered *source* (one per channel
//! client or socket connection), and the queue keeps per-source
//! accounting for the whole admission funnel: submitted → queued →
//! admitted, with every loss bucketed (`shed`, `rejected_capacity`,
//! `rejected_invalid`, `rejected_closed`) and boundary clamps counted
//! (`clamped`) — the live counterpart of the batch simulator's
//! released-vs-censored split (PR 2 boundary semantics): a request the
//! session cannot legally time-stamp is *accounted*, never silently bent.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use dream_models::{NodeId, PipelineId};
use dream_sim::SimTime;

/// What to do with a new request when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Apply backpressure: the submitter blocks until space frees up.
    Block,
    /// Evict the oldest queued request (counted as `shed` against the
    /// evicted request's source) and accept the new one.
    #[default]
    ShedOldest,
    /// Refuse the new request with [`SubmitError::Full`].
    Reject,
}

/// Identifies a registered ingress source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceId(pub usize);

/// Per-source admission-funnel counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Display label ("channel:bench", "tcp:127.0.0.1:51234", …).
    pub label: String,
    /// Requests handed to [`ChannelClient::submit`] (or read off the
    /// source's socket).
    pub submitted: u64,
    /// Requests the engine admitted into the session.
    pub admitted: u64,
    /// Admitted requests whose stamp was clamped (to the open window,
    /// the phase boundary, or per-key time order).
    pub clamped: u64,
    /// Requests evicted from the queue by [`AdmissionPolicy::ShedOldest`].
    pub shed: u64,
    /// Requests refused at submission by [`AdmissionPolicy::Reject`].
    pub rejected_capacity: u64,
    /// Requests the session refused (unknown model, non-root target, or a
    /// stamp at/after the horizon — censored by construction).
    pub rejected_invalid: u64,
    /// Requests that arrived after the session began draining or closed.
    pub rejected_closed: u64,
    /// Connection terminations attributed to this source — EOF, read
    /// errors, write failures. Exactly one per connection lifetime; *not*
    /// part of the per-request funnel identity (it counts connections,
    /// not requests).
    pub disconnects: u64,
}

impl SourceStats {
    /// Per-request losses + successes: every submitted request lands in
    /// exactly one of these buckets (or is still queued). The funnel
    /// identity checked by the chaos tests is
    /// `submitted == funnel_total() + backlog` summed across sources.
    pub fn funnel_total(&self) -> u64 {
        self.admitted
            + self.shed
            + self.rejected_capacity
            + self.rejected_invalid
            + self.rejected_closed
    }
}

/// One inference request traveling through the ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Target pipeline of the current scenario.
    pub pipeline: PipelineId,
    /// Target root node within the pipeline.
    pub node: NodeId,
    /// Explicit virtual arrival instant; `None` = "now" (the frontier of
    /// the tick that drains it).
    pub at: Option<SimTime>,
    /// The source that submitted it.
    pub source: SourceId,
}

/// Why a submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full ([`AdmissionPolicy::Reject`] only).
    Full,
    /// The serving loop is gone (session drained or engine dropped).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "ingress queue full"),
            SubmitError::Closed => write!(f, "serving session closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Inner {
    queue: VecDeque<Request>,
    capacity: usize,
    policy: AdmissionPolicy,
    closed: bool,
    sources: Vec<SourceStats>,
}

/// The shared bounded ingress queue (one per [`ServeEngine`]).
///
/// [`ServeEngine`]: crate::ServeEngine
pub(crate) struct Ingress {
    inner: Mutex<Inner>,
    space: Condvar,
}

impl Ingress {
    pub(crate) fn new(capacity: usize, policy: AdmissionPolicy) -> Arc<Self> {
        assert!(capacity > 0, "ingress capacity must be positive");
        Arc::new(Ingress {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity.min(65_536)),
                capacity,
                policy,
                closed: false,
                sources: Vec::new(),
            }),
            space: Condvar::new(),
        })
    }

    pub(crate) fn register(self: &Arc<Self>, label: impl Into<String>) -> SourceId {
        let mut inner = self.lock();
        let id = SourceId(inner.sources.len());
        inner.sources.push(SourceStats {
            label: label.into(),
            ..SourceStats::default()
        });
        id
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("ingress poisoned")
    }

    pub(crate) fn submit(&self, request: Request) -> Result<(), SubmitError> {
        let mut inner = self.lock();
        inner.sources[request.source.0].submitted += 1;
        loop {
            if inner.closed {
                inner.sources[request.source.0].rejected_closed += 1;
                return Err(SubmitError::Closed);
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(request);
                return Ok(());
            }
            match inner.policy {
                AdmissionPolicy::Block => {
                    inner = self.space.wait(inner).expect("ingress poisoned");
                }
                AdmissionPolicy::ShedOldest => {
                    let evicted = inner.queue.pop_front().expect("full queue is non-empty");
                    inner.sources[evicted.source.0].shed += 1;
                    inner.queue.push_back(request);
                    return Ok(());
                }
                AdmissionPolicy::Reject => {
                    inner.sources[request.source.0].rejected_capacity += 1;
                    return Err(SubmitError::Full);
                }
            }
        }
    }

    /// Moves up to `max` queued requests out (serving-loop side), waking
    /// blocked submitters.
    pub(crate) fn drain(&self, max: usize, out: &mut Vec<Request>) {
        let mut inner = self.lock();
        let n = inner.queue.len().min(max);
        out.extend(inner.queue.drain(..n));
        if n > 0 {
            drop(inner);
            self.space.notify_all();
        }
    }

    #[cfg(test)]
    pub(crate) fn backlog(&self) -> usize {
        self.lock().queue.len()
    }

    pub(crate) fn record_admitted(&self, source: SourceId, clamped: bool) {
        let mut inner = self.lock();
        inner.sources[source.0].admitted += 1;
        if clamped {
            inner.sources[source.0].clamped += 1;
        }
    }

    pub(crate) fn record_invalid(&self, source: SourceId) {
        self.lock().sources[source.0].rejected_invalid += 1;
    }

    /// Accounts a wire-level parse rejection: the line never became a
    /// [`Request`], so it enters the funnel here — `submitted` and
    /// `rejected_invalid` move together under one lock, keeping the
    /// funnel identity intact at every snapshot.
    pub(crate) fn record_wire_invalid(&self, source: SourceId) {
        let mut inner = self.lock();
        inner.sources[source.0].submitted += 1;
        inner.sources[source.0].rejected_invalid += 1;
    }

    /// Accounts a connection termination (exactly once per connection).
    pub(crate) fn record_disconnect(&self, source: SourceId) {
        self.lock().sources[source.0].disconnects += 1;
    }

    pub(crate) fn record_closed_rejection(&self, source: SourceId) {
        self.lock().sources[source.0].rejected_closed += 1;
    }

    /// Closes the queue: pending requests are rejected-as-closed and
    /// future submissions fail fast.
    pub(crate) fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        while let Some(req) = inner.queue.pop_front() {
            inner.sources[req.source.0].rejected_closed += 1;
        }
        drop(inner);
        self.space.notify_all();
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.lock().closed
    }

    pub(crate) fn stats(&self) -> Vec<SourceStats> {
        self.lock().sources.clone()
    }

    /// Stats and backlog read under one lock acquisition, so the funnel
    /// identity (`sum(submitted) == sum(funnel_total()) + backlog`) holds
    /// in the returned pair even while submitters race the snapshot.
    pub(crate) fn funnel_snapshot(&self) -> (Vec<SourceStats>, usize) {
        let inner = self.lock();
        (inner.sources.clone(), inner.queue.len())
    }
}

/// An in-process client handle: the MPSC face of the ingress. Cloning
/// shares the source identity; register separate clients for separate
/// accounting.
#[derive(Clone)]
pub struct ChannelClient {
    pub(crate) ingress: Arc<Ingress>,
    pub(crate) source: SourceId,
}

impl ChannelClient {
    /// Submits a request arriving "now" (at the frontier of the tick that
    /// picks it up).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] under the reject policy,
    /// [`SubmitError::Closed`] once the session drains.
    pub fn submit(&self, pipeline: PipelineId, node: NodeId) -> Result<(), SubmitError> {
        self.ingress.submit(Request {
            pipeline,
            node,
            at: None,
            source: self.source,
        })
    }

    /// Submits a request with an explicit virtual arrival instant (e.g.
    /// accelerated trace feeding). The session clamps it into the legal
    /// window; the clamp is visible in [`SourceStats::clamped`].
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_at(
        &self,
        pipeline: PipelineId,
        node: NodeId,
        at: SimTime,
    ) -> Result<(), SubmitError> {
        self.ingress.submit(Request {
            pipeline,
            node,
            at: Some(at),
            source: self.source,
        })
    }

    /// This client's source id (to find its row in
    /// [`SourceStats`] listings).
    pub fn source(&self) -> SourceId {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(source: SourceId) -> Request {
        Request {
            pipeline: PipelineId(0),
            node: NodeId(0),
            at: None,
            source,
        }
    }

    #[test]
    fn shed_oldest_evicts_head_and_counts() {
        let ingress = Ingress::new(2, AdmissionPolicy::ShedOldest);
        let a = ingress.register("a");
        let b = ingress.register("b");
        ingress.submit(req(a)).unwrap();
        ingress.submit(req(a)).unwrap();
        ingress.submit(req(b)).unwrap(); // evicts the first `a`
        let mut out = Vec::new();
        ingress.drain(usize::MAX, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].source, a);
        assert_eq!(out[1].source, b);
        let stats = ingress.stats();
        assert_eq!(stats[a.0].shed, 1);
        assert_eq!(stats[a.0].submitted, 2);
        assert_eq!(stats[b.0].submitted, 1);
    }

    #[test]
    fn reject_policy_fails_fast_when_full() {
        let ingress = Ingress::new(1, AdmissionPolicy::Reject);
        let s = ingress.register("s");
        ingress.submit(req(s)).unwrap();
        assert_eq!(ingress.submit(req(s)), Err(SubmitError::Full));
        assert_eq!(ingress.stats()[s.0].rejected_capacity, 1);
        assert_eq!(ingress.backlog(), 1);
    }

    #[test]
    fn block_policy_waits_for_drain() {
        let ingress = Ingress::new(1, AdmissionPolicy::Block);
        let s = ingress.register("s");
        ingress.submit(req(s)).unwrap();
        let bg = {
            let ingress = Arc::clone(&ingress);
            std::thread::spawn(move || ingress.submit(req(s)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!bg.is_finished(), "second submit must block while full");
        let mut out = Vec::new();
        ingress.drain(1, &mut out);
        assert_eq!(bg.join().unwrap(), Ok(()));
        assert_eq!(ingress.backlog(), 1);
    }

    #[test]
    fn close_rejects_pending_and_future() {
        let ingress = Ingress::new(4, AdmissionPolicy::ShedOldest);
        let s = ingress.register("s");
        ingress.submit(req(s)).unwrap();
        ingress.close();
        assert_eq!(ingress.submit(req(s)), Err(SubmitError::Closed));
        let stats = ingress.stats();
        assert_eq!(stats[s.0].rejected_closed, 2, "pending + post-close");
        assert_eq!(ingress.backlog(), 0);
    }

    #[test]
    fn wire_invalid_and_disconnects_keep_the_funnel_identity() {
        let ingress = Ingress::new(4, AdmissionPolicy::Reject);
        let s = ingress.register("s");
        ingress.submit(req(s)).unwrap();
        ingress.record_wire_invalid(s);
        ingress.record_wire_invalid(s);
        ingress.record_disconnect(s);
        let (stats, backlog) = ingress.funnel_snapshot();
        let row = &stats[s.0];
        assert_eq!(row.submitted, 3);
        assert_eq!(row.rejected_invalid, 2);
        assert_eq!(row.disconnects, 1);
        assert_eq!(row.submitted, row.funnel_total() + backlog as u64);
    }

    #[test]
    fn drain_respects_budget() {
        let ingress = Ingress::new(8, AdmissionPolicy::ShedOldest);
        let s = ingress.register("s");
        for _ in 0..5 {
            ingress.submit(req(s)).unwrap();
        }
        let mut out = Vec::new();
        ingress.drain(3, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(ingress.backlog(), 2);
    }
}
