//! A typed client for wire protocol v1.
//!
//! [`WireClient`] dials a serve node over TCP or a Unix socket,
//! performs the v1 handshake (magic + version, negotiated to
//! `min(client, server)`), and exposes one method per protocol verb.
//! Every request gets exactly one reply frame, in order, so requests
//! can also be pipelined ([`WireClient::submit_batch`]) without
//! ambiguity. Line-mode (v0) peers are *not* dialed by this client —
//! v0 interop is the server's sniffed fallback, not the client's
//! concern.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use dream_cost::AcceleratorId;
use dream_models::{NodeId, PipelineId};
use dream_sim::{FaultKind, SimTime};

use crate::wire::de::DecodeError;
use crate::wire::framed::{
    negotiate, read_frame, read_hello, write_frame, write_hello, CLIENT_MAGIC, SERVER_MAGIC,
};
use crate::wire::{
    CellOutcome, CellSpec, ErrorCode, Reply, Request, WireSnapshot, PROTOCOL_VERSION,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// A reply frame failed to decode.
    Decode(DecodeError),
    /// The server answered with an error reply.
    Server {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a structurally valid reply of the wrong
    /// kind for the request that was sent.
    UnexpectedReply(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Decode(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::UnexpectedReply(expected) => {
                write!(f, "unexpected reply kind (wanted {expected})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// A connected, handshaken v1 peer.
pub struct WireClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    version: u16,
}

impl WireClient {
    /// Dials a TCP serve node and handshakes.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures as [`ClientError::Io`].
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Self::handshake(Box::new(stream), Box::new(writer))
    }

    /// Dials a Unix-domain serve node and handshakes.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures as [`ClientError::Io`].
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Self::handshake(Box::new(stream), Box::new(writer))
    }

    fn handshake(
        mut reader: Box<dyn Read + Send>,
        mut writer: Box<dyn Write + Send>,
    ) -> Result<Self, ClientError> {
        write_hello(&mut writer, CLIENT_MAGIC, PROTOCOL_VERSION)?;
        let theirs = read_hello(&mut reader, SERVER_MAGIC, &[])?;
        let version = negotiate(PROTOCOL_VERSION, theirs).map_err(std::io::Error::from)?;
        Ok(Self {
            reader,
            writer,
            version,
        })
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Sends one request and awaits its reply (error replies come back
    /// as `Ok(Reply::Error { .. })` — use the typed verbs for automatic
    /// error mapping).
    ///
    /// # Errors
    ///
    /// Transport and decode failures.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?;
        Ok(Reply::decode_versioned(&payload, self.version)?)
    }

    fn expect_ok(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.request(request)? {
            Reply::Ok => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedReply("ok")),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Transport, decode, and server failures.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Ping)
    }

    /// Submits one request arriving "now".
    ///
    /// # Errors
    ///
    /// Transport, decode, and server failures ([`ErrorCode::Full`] /
    /// [`ErrorCode::Closed`] on admission refusal).
    pub fn submit(&mut self, pipeline: PipelineId, node: NodeId) -> Result<(), ClientError> {
        self.expect_ok(&Request::Submit {
            pipeline,
            node,
            at: None,
        })
    }

    /// Submits one request with an explicit virtual arrival instant.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_at(
        &mut self,
        pipeline: PipelineId,
        node: NodeId,
        at: SimTime,
    ) -> Result<(), ClientError> {
        self.expect_ok(&Request::Submit {
            pipeline,
            node,
            at: Some(at),
        })
    }

    /// Pipelines a batch of submissions: all request frames go out
    /// before any reply is read (one round trip instead of N), then the
    /// replies are collected in order.
    ///
    /// # Errors
    ///
    /// Transport and decode failures; per-request refusals come back in
    /// the result vector.
    pub fn submit_batch(
        &mut self,
        batch: &[(PipelineId, NodeId, Option<SimTime>)],
    ) -> Result<Vec<Result<(), ClientError>>, ClientError> {
        for &(pipeline, node, at) in batch {
            let request = Request::Submit { pipeline, node, at };
            write_frame(&mut self.writer, &request.encode())?;
        }
        let mut results = Vec::with_capacity(batch.len());
        for _ in batch {
            let payload = read_frame(&mut self.reader)?;
            results.push(match Reply::decode_versioned(&payload, self.version)? {
                Reply::Ok => Ok(()),
                Reply::Error { code, message } => Err(ClientError::Server { code, message }),
                _ => Err(ClientError::UnexpectedReply("ok")),
            });
        }
        Ok(results)
    }

    /// Hot-swaps the served scenario.
    ///
    /// # Errors
    ///
    /// Transport, decode, and server failures.
    pub fn swap(&mut self, scenario: &str, cascade: f64) -> Result<(), ClientError> {
        self.expect_ok(&Request::Swap {
            scenario: scenario.to_string(),
            cascade,
        })
    }

    /// Injects a fault (validated server-side like every fault).
    ///
    /// # Errors
    ///
    /// Transport, decode, and server failures.
    pub fn fault(
        &mut self,
        acc: AcceleratorId,
        kind: FaultKind,
        at: Option<SimTime>,
    ) -> Result<(), ClientError> {
        self.expect_ok(&Request::Fault { acc, kind, at })
    }

    /// Begins a graceful drain.
    ///
    /// # Errors
    ///
    /// Transport, decode, and server failures.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Drain)
    }

    /// Fetches the latest published metrics snapshot.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Unavailable`] (as [`ClientError::Server`]) when
    /// nothing has been published yet, plus transport/decode failures.
    pub fn snapshot(&mut self) -> Result<WireSnapshot, ClientError> {
        match self.request(&Request::Snapshot)? {
            Reply::Snapshot(snapshot) => Ok(snapshot),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedReply("snapshot")),
        }
    }

    /// Runs a batch of experiment-grid cells on the peer (a worker node
    /// started with a cell runner) and returns their outcomes.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Unsupported`] when the peer has no runner, plus
    /// transport/decode/server failures.
    pub fn run_cells(
        &mut self,
        cells: Vec<CellSpec>,
        record_traces: bool,
    ) -> Result<Vec<CellOutcome>, ClientError> {
        match self.request(&Request::RunCells {
            record_traces,
            cells,
        })? {
            Reply::CellsDone { outcomes } => Ok(outcomes),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedReply("cells_done")),
        }
    }
}
