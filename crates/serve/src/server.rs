//! Socket ingress: TCP and Unix-domain listeners that translate the
//! [wire protocols](crate::wire) into ingress submissions.
//!
//! Each accepted connection registers its own ingress source (so the
//! admission funnel is attributable per peer) and is served by a thread
//! that *sniffs* the first byte to pick a protocol face:
//!
//! * [`MAGIC_SENTINEL`](crate::wire::framed::MAGIC_SENTINEL) (`0xD7`)
//!   opens the v1 framed handshake — typed requests, one reply frame
//!   per request frame;
//! * anything else falls back to the v0 line protocol, with the sniffed
//!   byte re-injected so old peers work unmodified.
//!
//! Listeners poll with a short accept timeout so
//! [`SocketServer::shutdown`] (or drop) stops them promptly. Both faces
//! preserve the funnel identity `submitted == admitted + shed +
//! rejected_* + backlog`: every malformed line or frame — including a
//! truncated final line at peer disconnect — is accounted as exactly
//! one `rejected_invalid`.

use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dream_models::{CascadeProbability, Scenario};

use crate::engine::ServeHandle;
use crate::ingress::SubmitError;
use crate::wire::framed::{
    self, read_exact_with, read_frame_with, write_frame, write_hello, ExactRead, FrameRead,
    CLIENT_MAGIC, MAGIC_SENTINEL, SERVER_MAGIC,
};
use crate::wire::{
    de::DecodeError, parse_line, parse_scenario_kind, CellOutcome, CellSpec, ErrorCode, Reply,
    Request, WireCommand, WireError, WireSnapshot, MAX_LINE_BYTES, PROTOCOL_VERSION,
};

const ACCEPT_POLL: Duration = Duration::from_millis(50);
const READ_POLL: Duration = Duration::from_millis(100);

/// Transient `accept()` failures (EMFILE, ECONNABORTED, EINTR, …) are
/// retried with exponential backoff; only this many *consecutive*
/// failures tear the listener down. Any successful accept resets the
/// count.
const ACCEPT_MAX_CONSECUTIVE_FAILURES: u32 = 16;

/// Backoff after the `n`-th consecutive accept failure: doubles from
/// [`ACCEPT_POLL`], capped at ~1.6 s, so a transient EMFILE storm is
/// ridden out without spinning and without giving up the listener.
fn accept_backoff(consecutive_failures: u32) -> Duration {
    ACCEPT_POLL * 2u32.pow(consecutive_failures.min(5))
}

/// Executes wire-shipped experiment-grid cells on behalf of a
/// [`Request::RunCells`] batch. Implemented by `dream-bench`'s grid
/// runner; servers without one answer `RunCells` with
/// [`ErrorCode::Unsupported`].
pub trait CellRunner: Send + Sync {
    /// Runs every cell and returns their outcomes in the same order.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the batch cannot run (unknown
    /// scenario/preset name, invalid parameters, …).
    fn run_cells(
        &self,
        cells: &[CellSpec],
        record_traces: bool,
    ) -> Result<Vec<CellOutcome>, String>;
}

/// A running socket listener; dropping it stops the accept loop (open
/// connections drain on their own once the peer closes or the session
/// ends).
pub struct SocketServer {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Stops accepting new connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// Starts a TCP listener feeding `handle`. Binds `addr` (use port 0 for
/// an ephemeral port) and returns the bound address plus the server
/// guard.
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_tcp(
    handle: &ServeHandle,
    addr: impl ToSocketAddrs,
) -> std::io::Result<(SocketAddr, SocketServer)> {
    listen_tcp_with_runner(handle, addr, None)
}

/// [`listen_tcp`] with a [`CellRunner`] so the node can execute
/// wire-shipped experiment-grid cells (a *worker* node).
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_tcp_with_runner(
    handle: &ServeHandle,
    addr: impl ToSocketAddrs,
    runner: Option<Arc<dyn CellRunner>>,
) -> std::io::Result<(SocketAddr, SocketServer)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = handle.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut failures = 0u32;
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, peer)) => {
                    failures = 0;
                    let handle = handle.clone();
                    let stop = Arc::clone(&accept_stop);
                    let runner = runner.clone();
                    std::thread::spawn(move || {
                        let label = format!("tcp:{peer}");
                        serve_connection(TcpTransport(stream), &handle, label, &stop, runner);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    failures += 1;
                    if failures >= ACCEPT_MAX_CONSECUTIVE_FAILURES {
                        break;
                    }
                    std::thread::sleep(accept_backoff(failures));
                }
            }
        }
    });
    Ok((
        local,
        SocketServer {
            stop,
            accept_thread: Some(accept_thread),
        },
    ))
}

/// Starts a Unix-domain-socket listener feeding `handle` at `path`
/// (removed first if it exists).
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_unix(handle: &ServeHandle, path: impl AsRef<Path>) -> std::io::Result<SocketServer> {
    listen_unix_with_runner(handle, path, None)
}

/// [`listen_unix`] with a [`CellRunner`] so the node can execute
/// wire-shipped experiment-grid cells (a *worker* node).
///
/// # Errors
///
/// Propagates bind errors.
pub fn listen_unix_with_runner(
    handle: &ServeHandle,
    path: impl AsRef<Path>,
    runner: Option<Arc<dyn CellRunner>>,
) -> std::io::Result<SocketServer> {
    let path = path.as_ref();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = handle.clone();
    let label_base = path.display().to_string();
    let accept_thread = std::thread::spawn(move || {
        let mut conn = 0usize;
        let mut failures = 0u32;
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    conn += 1;
                    failures = 0;
                    let handle = handle.clone();
                    let stop = Arc::clone(&accept_stop);
                    let runner = runner.clone();
                    let label = format!("unix:{label_base}#{conn}");
                    std::thread::spawn(move || {
                        serve_connection(UnixTransport(stream), &handle, label, &stop, runner);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    failures += 1;
                    if failures >= ACCEPT_MAX_CONSECUTIVE_FAILURES {
                        break;
                    }
                    std::thread::sleep(accept_backoff(failures));
                }
            }
        }
    });
    Ok(SocketServer {
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// The two stream flavors, unified just enough for one connection loop.
trait Transport {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)>;
    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()>;
}

struct TcpTransport(TcpStream);

impl Transport for TcpTransport {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let writer = self.0.try_clone()?;
        Ok((Box::new(self.0), Box::new(writer)))
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        self.0.set_read_timeout(Some(dur))
    }
}

struct UnixTransport(UnixStream);

impl Transport for UnixTransport {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let writer = self.0.try_clone()?;
        Ok((Box::new(self.0), Box::new(writer)))
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        self.0.set_read_timeout(Some(dur))
    }
}

/// What the first-byte sniff decided for a fresh connection.
enum Sniffed {
    /// v1 framed peer (the sentinel byte has been consumed).
    Framed,
    /// v0 line peer; the consumed byte must be re-injected.
    Line(u8),
    /// The peer closed without sending anything.
    Closed,
    /// The server is shutting down.
    Stopped,
}

/// Reads the classifying first byte, tolerating read-timeout polls.
fn sniff(reader: &mut dyn Read, stop: &AtomicBool) -> std::io::Result<Sniffed> {
    let mut first = [0u8; 1];
    match read_exact_with(reader, &mut first, true, &mut || {
        !stop.load(Ordering::SeqCst)
    })? {
        ExactRead::Eof => Ok(Sniffed::Closed),
        ExactRead::Stopped => Ok(Sniffed::Stopped),
        ExactRead::Done if first[0] == MAGIC_SENTINEL => Ok(Sniffed::Framed),
        ExactRead::Done => Ok(Sniffed::Line(first[0])),
    }
}

fn serve_connection<T: Transport>(
    transport: T,
    handle: &ServeHandle,
    label: String,
    stop: &AtomicBool,
    runner: Option<Arc<dyn CellRunner>>,
) {
    if transport.set_read_timeout(READ_POLL).is_err() {
        return;
    }
    let Ok((mut reader, mut writer)) = transport.split() else {
        return;
    };
    let client = handle.client(label);
    // Past this point every exit records exactly one disconnect against
    // the connection's source.
    match sniff(&mut reader, stop) {
        Ok(Sniffed::Framed) => serve_framed(reader, writer, handle, &client, stop, runner),
        Ok(Sniffed::Line(first)) => {
            // Re-inject the sniffed byte ahead of the raw stream so the
            // line reader sees the peer's bytes unmodified.
            let chained = Cursor::new(vec![first]).chain(reader);
            serve_lines(BufReader::new(chained), &mut writer, handle, &client, stop);
        }
        Ok(Sniffed::Closed | Sniffed::Stopped) | Err(_) => {}
    }
    client.ingress.record_disconnect(client.source);
}

/// The v0 line-protocol loop.
fn serve_lines(
    mut reader: impl BufRead,
    writer: &mut dyn Write,
    handle: &ServeHandle,
    client: &crate::ingress::ChannelClient,
    stop: &AtomicBool,
) {
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // `read_line` appends any bytes it consumed *before* a timeout
        // fires, so the buffer must survive timeout retries — clearing it
        // there would silently drop the first fragment of any command
        // whose bytes straddle a read-timeout window.
        let eof = match reader.read_line(&mut line) {
            Ok(0) => true,
            // A line is complete only at its `\n`; Ok without one means
            // the stream ended mid-line — a truncated tail.
            Ok(_) => !line.ends_with('\n'),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A peer trickling a terminator-free line through timeout
                // windows must not balloon the buffer: over-length kills
                // the connection (checked below too, for one-read blasts).
                if line.len() > MAX_LINE_BYTES {
                    client.ingress.record_wire_invalid(client.source);
                    let _ = writeln!(writer, "err line too long").and_then(|()| writer.flush());
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Non-UTF-8 bytes: the offending line was consumed off the
                // stream, so reject it and keep serving the connection.
                client.ingress.record_wire_invalid(client.source);
                if writeln!(writer, "err invalid utf-8")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
                line.clear();
                continue;
            }
            Err(_) => {
                // Hard transport error with residue buffered: those bytes
                // were submitted by the peer but will never execute, so
                // they must still enter the funnel.
                if !line.is_empty() {
                    client.ingress.record_wire_invalid(client.source);
                }
                break;
            }
        };
        if line.len() > MAX_LINE_BYTES {
            client.ingress.record_wire_invalid(client.source);
            let _ = writeln!(writer, "err line too long").and_then(|()| writer.flush());
            break;
        }
        if eof {
            // A final partial line (no terminator before EOF) is a
            // truncated command: never execute it — the peer cannot know
            // whether its tail arrived — but account it, so the funnel
            // identity holds for truncated-tail peers too.
            if !line
                .trim_matches(|c: char| c.is_whitespace() || c == '\0')
                .is_empty()
            {
                client.ingress.record_wire_invalid(client.source);
                let _ = writeln!(writer, "err {}", WireError::TruncatedLine)
                    .and_then(|()| writer.flush());
            }
            break;
        }
        let reply: Option<String> = match parse_line(&line) {
            Ok(WireCommand::Empty) => None,
            Ok(WireCommand::Ping) => Some("ok".into()),
            Ok(WireCommand::Drain) => {
                handle.drain();
                Some("ok draining".into())
            }
            Ok(WireCommand::Swap(scenario)) => {
                let name = scenario.name();
                handle.swap(scenario);
                Some(format!("ok swapping to {name}"))
            }
            Ok(WireCommand::Fault { acc, kind, at }) => {
                match at {
                    Some(at) => handle.fault_at(acc, kind, at),
                    None => handle.fault(acc, kind),
                }
                Some("ok fault ordered".into())
            }
            Ok(WireCommand::Request { pipeline, node, at }) => {
                // Requests are fire-and-forget; only failures answer.
                let result = match at {
                    Some(at) => client.submit_at(pipeline, node, at),
                    None => client.submit(pipeline, node),
                };
                match result {
                    Ok(()) => None,
                    Err(SubmitError::Full) => Some("err queue full".into()),
                    Err(SubmitError::Closed) => Some("err session closed".into()),
                }
            }
            Err(reason) => {
                // A parse failure enters the funnel as exactly one
                // `rejected_invalid` (with its matching `submitted`).
                client.ingress.record_wire_invalid(client.source);
                Some(format!("err {reason}"))
            }
        };
        if let Some(reply) = reply {
            if writeln!(writer, "{reply}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
        line.clear();
    }
}

/// The v1 framed-protocol loop: handshake, then one reply frame per
/// request frame, in order (pipelining-safe).
fn serve_framed(
    mut reader: Box<dyn Read + Send>,
    mut writer: Box<dyn Write + Send>,
    handle: &ServeHandle,
    client: &crate::ingress::ChannelClient,
    stop: &AtomicBool,
    runner: Option<Arc<dyn CellRunner>>,
) {
    // Finish the client hello (the sentinel byte is already consumed),
    // answer with ours, and negotiate.
    let mut rest = [0u8; 5];
    let mut keep_going = || !stop.load(Ordering::SeqCst);
    match read_exact_with(&mut reader, &mut rest, false, &mut keep_going) {
        Ok(ExactRead::Done) => {}
        _ => {
            // A lone sentinel byte with no hello behind it is a malformed
            // opener from an otherwise-unknown peer.
            client.ingress.record_wire_invalid(client.source);
            return;
        }
    }
    if rest[..3] != CLIENT_MAGIC[1..] {
        client.ingress.record_wire_invalid(client.source);
        return;
    }
    let theirs = u16::from_le_bytes([rest[3], rest[4]]);
    if write_hello(&mut writer, SERVER_MAGIC, PROTOCOL_VERSION).is_err() {
        return;
    }
    // Replies are shaped for the negotiated generation: a v1 peer gets
    // byte-exact v1 frames, a v2 peer the extended snapshot.
    let version = match framed::negotiate(PROTOCOL_VERSION, theirs) {
        Ok(version) => version,
        Err(_) => {
            // The peer sees our version in the hello and draws the same
            // conclusion; nothing more to say.
            return;
        }
    };
    let mut snapshots = handle.snapshots();
    loop {
        let payload = match read_frame_with(&mut reader, &mut || !stop.load(Ordering::SeqCst)) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Eof | FrameRead::Stopped) => break,
            Err(e) => {
                // Framing violations (oversize/zero frames, truncation
                // mid-frame) are malformed input from the peer: account
                // one rejected_invalid, try to say why, and hang up.
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
                ) {
                    client.ingress.record_wire_invalid(client.source);
                    let reply = Reply::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    };
                    let _ = write_frame(&mut writer, &reply.encode_versioned(version));
                }
                break;
            }
        };
        let reply = match Request::decode(&payload) {
            Ok(request) => execute(request, handle, client, &mut snapshots, runner.as_deref()),
            Err(DecodeError::Fault(err)) => {
                // Structurally fine, semantically degenerate fault
                // parameters: same funnel treatment as the line parser.
                client.ingress.record_wire_invalid(client.source);
                Reply::Error {
                    code: ErrorCode::Invalid,
                    message: err.to_string(),
                }
            }
            Err(err) => {
                client.ingress.record_wire_invalid(client.source);
                Reply::Error {
                    code: ErrorCode::Malformed,
                    message: err.to_string(),
                }
            }
        };
        if write_frame(&mut writer, &reply.encode_versioned(version)).is_err() {
            break;
        }
    }
}

/// Executes one decoded v1 request against the engine.
fn execute(
    request: Request,
    handle: &ServeHandle,
    client: &crate::ingress::ChannelClient,
    snapshots: &mut crate::watch::WatchReceiver<crate::engine::MetricsSnapshot>,
    runner: Option<&dyn CellRunner>,
) -> Reply {
    match request {
        Request::Ping => Reply::Ok,
        Request::Submit { pipeline, node, at } => {
            let result = match at {
                Some(at) => client.submit_at(pipeline, node, at),
                None => client.submit(pipeline, node),
            };
            match result {
                Ok(()) => Reply::Ok,
                Err(SubmitError::Full) => Reply::Error {
                    code: ErrorCode::Full,
                    message: "queue full".into(),
                },
                Err(SubmitError::Closed) => Reply::Error {
                    code: ErrorCode::Closed,
                    message: "session closed".into(),
                },
            }
        }
        Request::Swap { scenario, cascade } => {
            let Some(kind) = parse_scenario_kind(&scenario) else {
                client.ingress.record_wire_invalid(client.source);
                return Reply::Error {
                    code: ErrorCode::Invalid,
                    message: WireError::UnknownScenario(scenario).to_string(),
                };
            };
            let cascade = match CascadeProbability::new(cascade) {
                Ok(c) => c,
                Err(e) => {
                    client.ingress.record_wire_invalid(client.source);
                    return Reply::Error {
                        code: ErrorCode::Invalid,
                        message: WireError::InvalidCascade(e.to_string()).to_string(),
                    };
                }
            };
            handle.swap(Scenario::new(kind, cascade));
            Reply::Ok
        }
        Request::Fault { acc, kind, at } => {
            // Degenerate parameters were already rejected at decode time.
            match at {
                Some(at) => handle.fault_at(acc, kind, at),
                None => handle.fault(acc, kind),
            }
            Reply::Ok
        }
        Request::Drain => {
            handle.drain();
            Reply::Ok
        }
        Request::Snapshot => match snapshots.latest() {
            Some(snap) => Reply::Snapshot(WireSnapshot {
                tick: snap.tick,
                now_ns: snap.now.as_ns(),
                frontier_ns: snap.frontier.as_ns(),
                phase: snap.phase as u64,
                draining: snap.draining,
                ingress_backlog: snap.ingress_backlog as u64,
                event_backlog: snap.event_backlog as u64,
                admitted: snap.admitted,
                shed: snap.shed,
                rejected: snap.rejected,
                fingerprint: snap.metrics.fingerprint(),
                faults_injected: snap.metrics.faults_injected,
                fault_requeues: snap.metrics.fault_requeues,
                deadline_miss_under_faults: snap.metrics.deadline_miss_under_faults,
                sojourn_hist: snap.sojourn_hist.sparse(),
            }),
            None => Reply::Error {
                code: ErrorCode::Unavailable,
                message: "no snapshot published yet".into(),
            },
        },
        Request::RunCells {
            record_traces,
            cells,
        } => match runner {
            None => Reply::Error {
                code: ErrorCode::Unsupported,
                message: "this node has no cell runner".into(),
            },
            Some(runner) => match runner.run_cells(&cells, record_traces) {
                Ok(outcomes) => Reply::CellsDone { outcomes },
                Err(message) => Reply::Error {
                    code: ErrorCode::Invalid,
                    message,
                },
            },
        },
    }
}
