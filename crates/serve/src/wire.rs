//! The line-delimited wire protocol spoken over TCP/Unix-socket ingress.
//!
//! One command per `\n`-terminated line, fields separated by whitespace;
//! `#` starts a comment and blank lines are ignored:
//!
//! ```text
//! r <pipeline> <node> [at_ns]   # submit a request (optionally time-stamped)
//! swap <scenario> [cascade]     # hot-swap the served scenario
//! drain                         # graceful shutdown
//! ping                          # liveness check
//! ```
//!
//! Scenario names are the paper's (`AR_Call`, `VR_Gaming`, …),
//! case-insensitive. Requests are fire-and-forget (errors come back as
//! `err <reason>` lines); control commands are acknowledged with `ok`.

use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_sim::SimTime;

/// A parsed wire command.
#[derive(Debug, Clone)]
pub enum WireCommand {
    /// Submit one inference request.
    Request {
        /// Target pipeline.
        pipeline: PipelineId,
        /// Target root node.
        node: NodeId,
        /// Optional explicit virtual arrival instant.
        at: Option<SimTime>,
    },
    /// Hot-swap the served scenario.
    Swap(Scenario),
    /// Begin a graceful drain.
    Drain,
    /// Liveness check.
    Ping,
    /// Comment/blank line: nothing to do.
    Empty,
}

/// Parses a scenario name (case-insensitive paper naming).
pub fn parse_scenario_kind(name: &str) -> Option<ScenarioKind> {
    ScenarioKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Parses one protocol line.
///
/// # Errors
///
/// A human-readable reason, sent back to the peer as `err <reason>`.
pub fn parse_line(line: &str) -> Result<WireCommand, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(WireCommand::Empty);
    }
    let mut fields = line.split_ascii_whitespace();
    let cmd = fields.next().expect("non-empty line has a first field");
    match cmd {
        "r" => {
            let mut num = |what: &str| -> Result<u64, String> {
                fields
                    .next()
                    .ok_or_else(|| format!("missing {what}"))?
                    .parse::<u64>()
                    .map_err(|_| format!("invalid {what}"))
            };
            let pipeline = num("pipeline")?;
            let node = num("node")?;
            let at = match fields.next() {
                None => None,
                Some(raw) => Some(SimTime::from_ns(
                    raw.parse::<u64>()
                        .map_err(|_| "invalid at_ns".to_string())?,
                )),
            };
            if fields.next().is_some() {
                return Err("too many fields for r".into());
            }
            Ok(WireCommand::Request {
                pipeline: PipelineId(pipeline as usize),
                node: NodeId(node as usize),
                at,
            })
        }
        "swap" => {
            let name = fields
                .next()
                .ok_or_else(|| "missing scenario".to_string())?;
            let kind =
                parse_scenario_kind(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
            let cascade = match fields.next() {
                None => CascadeProbability::default_paper(),
                Some(raw) => {
                    let p = raw
                        .parse::<f64>()
                        .map_err(|_| "invalid cascade".to_string())?;
                    CascadeProbability::new(p).map_err(|e| e.to_string())?
                }
            };
            if fields.next().is_some() {
                return Err("too many fields for swap".into());
            }
            Ok(WireCommand::Swap(Scenario::new(kind, cascade)))
        }
        "drain" => Ok(WireCommand::Drain),
        "ping" => Ok(WireCommand::Ping),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests_with_and_without_stamp() {
        let WireCommand::Request { pipeline, node, at } = parse_line("r 1 0").unwrap() else {
            panic!("expected request");
        };
        assert_eq!((pipeline, node, at), (PipelineId(1), NodeId(0), None));
        let WireCommand::Request { pipeline, node, at } = parse_line("  r 0 2 5000 ").unwrap()
        else {
            panic!("expected request");
        };
        assert_eq!(
            (pipeline, node, at),
            (PipelineId(0), NodeId(2), Some(SimTime::from_ns(5000)))
        );
    }

    #[test]
    fn parses_control_and_comments() {
        assert!(matches!(parse_line("drain").unwrap(), WireCommand::Drain));
        assert!(matches!(parse_line("ping").unwrap(), WireCommand::Ping));
        assert!(matches!(parse_line("").unwrap(), WireCommand::Empty));
        assert!(matches!(parse_line("# hi").unwrap(), WireCommand::Empty));
        let WireCommand::Swap(s) = parse_line("swap ar_call 0.25").unwrap() else {
            panic!("expected swap");
        };
        assert_eq!(s.kind(), ScenarioKind::ArCall);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "r",
            "r 1",
            "r a b",
            "r 1 2 x",
            "r 1 2 3 4",
            "swap",
            "swap NoSuch",
            "swap AR_Call 1.5",
            "nonsense",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
