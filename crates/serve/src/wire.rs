//! The line-delimited wire protocol spoken over TCP/Unix-socket ingress.
//!
//! One command per `\n`-terminated line, fields separated by whitespace;
//! `#` starts a comment and blank lines are ignored:
//!
//! ```text
//! r <pipeline> <node> [at_ns]         # submit a request (optionally time-stamped)
//! swap <scenario> [cascade]           # hot-swap the served scenario
//! fault <acc> fail [at_ns]            # permanently fail an accelerator
//! fault <acc> stall <dur_ns> [at_ns]  # stall an accelerator for a window
//! fault <acc> slow <dur_ns> <factor> [at_ns]  # slow an accelerator by factor
//! drain                               # graceful shutdown
//! ping                                # liveness check
//! ```
//!
//! Scenario names are the paper's (`AR_Call`, `VR_Gaming`, …),
//! case-insensitive. Requests are fire-and-forget (errors come back as
//! `err <reason>` lines); control commands are acknowledged with `ok`.
//!
//! Parsing is total: no input — wild bytes, embedded NULs, over-length
//! lines — panics, and every malformed line maps to exactly one `Err`
//! (which the socket layer funnels into `rejected_invalid`, exactly
//! once). Lines longer than [`MAX_LINE_BYTES`] are rejected outright.

use dream_cost::AcceleratorId;
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_sim::{FaultKind, SimTime};

/// Longest accepted protocol line, in bytes (terminator included). The
/// longest legal command is far shorter; the bound keeps a hostile peer
/// from ballooning the connection buffer.
pub const MAX_LINE_BYTES: usize = 1024;

/// A parsed wire command.
#[derive(Debug, Clone)]
pub enum WireCommand {
    /// Submit one inference request.
    Request {
        /// Target pipeline.
        pipeline: PipelineId,
        /// Target root node.
        node: NodeId,
        /// Optional explicit virtual arrival instant.
        at: Option<SimTime>,
    },
    /// Hot-swap the served scenario.
    Swap(Scenario),
    /// Inject a fault against an accelerator.
    Fault {
        /// The targeted accelerator.
        acc: AcceleratorId,
        /// What happens to it.
        kind: FaultKind,
        /// Optional explicit virtual instant; `None` = the admitting
        /// tick's frontier.
        at: Option<SimTime>,
    },
    /// Begin a graceful drain.
    Drain,
    /// Liveness check.
    Ping,
    /// Comment/blank line: nothing to do.
    Empty,
}

/// Parses a scenario name (case-insensitive paper naming).
pub fn parse_scenario_kind(name: &str) -> Option<ScenarioKind> {
    ScenarioKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Parses one protocol line.
///
/// # Errors
///
/// A human-readable reason, sent back to the peer as `err <reason>`.
pub fn parse_line(line: &str) -> Result<WireCommand, String> {
    if line.len() > MAX_LINE_BYTES {
        return Err(format!(
            "line too long ({} bytes, max {MAX_LINE_BYTES})",
            line.len()
        ));
    }
    let line = line.trim_matches(|c: char| c.is_whitespace() || c == '\0');
    if line.contains('\0') {
        return Err("embedded NUL byte".into());
    }
    if line.is_empty() || line.starts_with('#') {
        return Ok(WireCommand::Empty);
    }
    let mut fields = line.split_ascii_whitespace();
    let cmd = fields.next().expect("non-empty line has a first field");
    match cmd {
        "r" => {
            let mut num = |what: &str| -> Result<u64, String> {
                fields
                    .next()
                    .ok_or_else(|| format!("missing {what}"))?
                    .parse::<u64>()
                    .map_err(|_| format!("invalid {what}"))
            };
            let pipeline = num("pipeline")?;
            let node = num("node")?;
            let at = match fields.next() {
                None => None,
                Some(raw) => Some(SimTime::from_ns(
                    raw.parse::<u64>()
                        .map_err(|_| "invalid at_ns".to_string())?,
                )),
            };
            if fields.next().is_some() {
                return Err("too many fields for r".into());
            }
            Ok(WireCommand::Request {
                pipeline: PipelineId(pipeline as usize),
                node: NodeId(node as usize),
                at,
            })
        }
        "swap" => {
            let name = fields
                .next()
                .ok_or_else(|| "missing scenario".to_string())?;
            let kind =
                parse_scenario_kind(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
            let cascade = match fields.next() {
                None => CascadeProbability::default_paper(),
                Some(raw) => {
                    let p = raw
                        .parse::<f64>()
                        .map_err(|_| "invalid cascade".to_string())?;
                    CascadeProbability::new(p).map_err(|e| e.to_string())?
                }
            };
            if fields.next().is_some() {
                return Err("too many fields for swap".into());
            }
            Ok(WireCommand::Swap(Scenario::new(kind, cascade)))
        }
        "fault" => {
            fn num<'a>(
                fields: &mut impl Iterator<Item = &'a str>,
                what: &str,
            ) -> Result<u64, String> {
                fields
                    .next()
                    .ok_or_else(|| format!("missing {what}"))?
                    .parse::<u64>()
                    .map_err(|_| format!("invalid {what}"))
            }
            let acc = num(&mut fields, "acc")?;
            let kind_name = fields
                .next()
                .ok_or_else(|| "missing fault kind".to_string())?;
            let kind = match kind_name {
                "fail" => FaultKind::Fail,
                "stall" => FaultKind::Stall {
                    duration: SimTime::from_ns(num(&mut fields, "dur_ns")?),
                },
                "slow" => {
                    let duration = SimTime::from_ns(num(&mut fields, "dur_ns")?);
                    let factor = fields
                        .next()
                        .ok_or_else(|| "missing factor".to_string())?
                        .parse::<f64>()
                        .map_err(|_| "invalid factor".to_string())?;
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(format!("factor {factor} must be finite and >= 1"));
                    }
                    FaultKind::Slowdown { factor, duration }
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            let at = match fields.next() {
                None => None,
                Some(raw) => Some(SimTime::from_ns(
                    raw.parse::<u64>()
                        .map_err(|_| "invalid at_ns".to_string())?,
                )),
            };
            if fields.next().is_some() {
                return Err("too many fields for fault".into());
            }
            Ok(WireCommand::Fault {
                acc: AcceleratorId(acc as usize),
                kind,
                at,
            })
        }
        "drain" => Ok(WireCommand::Drain),
        "ping" => Ok(WireCommand::Ping),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests_with_and_without_stamp() {
        let WireCommand::Request { pipeline, node, at } = parse_line("r 1 0").unwrap() else {
            panic!("expected request");
        };
        assert_eq!((pipeline, node, at), (PipelineId(1), NodeId(0), None));
        let WireCommand::Request { pipeline, node, at } = parse_line("  r 0 2 5000 ").unwrap()
        else {
            panic!("expected request");
        };
        assert_eq!(
            (pipeline, node, at),
            (PipelineId(0), NodeId(2), Some(SimTime::from_ns(5000)))
        );
    }

    #[test]
    fn parses_control_and_comments() {
        assert!(matches!(parse_line("drain").unwrap(), WireCommand::Drain));
        assert!(matches!(parse_line("ping").unwrap(), WireCommand::Ping));
        assert!(matches!(parse_line("").unwrap(), WireCommand::Empty));
        assert!(matches!(parse_line("# hi").unwrap(), WireCommand::Empty));
        let WireCommand::Swap(s) = parse_line("swap ar_call 0.25").unwrap() else {
            panic!("expected swap");
        };
        assert_eq!(s.kind(), ScenarioKind::ArCall);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "r",
            "r 1",
            "r a b",
            "r 1 2 x",
            "r 1 2 3 4",
            "swap",
            "swap NoSuch",
            "swap AR_Call 1.5",
            "nonsense",
            "fault",
            "fault x fail",
            "fault 0",
            "fault 0 bogus",
            "fault 0 stall",
            "fault 0 stall x",
            "fault 0 slow 5",
            "fault 0 slow 5 x",
            "fault 0 slow 5 0.5",
            "fault 0 slow 5 nan",
            "fault 0 slow 5 inf",
            "fault 0 fail 1 2",
            "fault 0 stall 5 1 2",
            "a\0b",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_fault_commands() {
        let WireCommand::Fault { acc, kind, at } = parse_line("fault 2 fail").unwrap() else {
            panic!("expected fault");
        };
        assert_eq!(acc, AcceleratorId(2));
        assert!(matches!(kind, FaultKind::Fail));
        assert_eq!(at, None);

        let WireCommand::Fault { acc, kind, at } = parse_line("fault 0 stall 5000 77").unwrap()
        else {
            panic!("expected fault");
        };
        assert_eq!(acc, AcceleratorId(0));
        assert!(
            matches!(kind, FaultKind::Stall { duration } if duration == SimTime::from_ns(5000))
        );
        assert_eq!(at, Some(SimTime::from_ns(77)));

        let WireCommand::Fault { kind, .. } = parse_line("fault 1 slow 9000 2.5").unwrap() else {
            panic!("expected fault");
        };
        assert!(matches!(
            kind,
            FaultKind::Slowdown { factor, duration }
                if (factor - 2.5).abs() < f64::EPSILON && duration == SimTime::from_ns(9000)
        ));
    }

    #[test]
    fn rejects_over_length_and_nul_lines() {
        let long = "r ".repeat(MAX_LINE_BYTES);
        assert!(parse_line(&long).is_err());
        // Leading/trailing NULs are stripped like whitespace; interior
        // NULs are rejected.
        assert!(matches!(parse_line("\0ping\0").unwrap(), WireCommand::Ping));
        assert!(parse_line("ping\0drain").is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Totality: no byte soup panics the parser, and anything the
            /// parser does accept round-trips through a sane variant.
            #[test]
            fn parse_never_panics_on_wild_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
                let line = String::from_utf8_lossy(&bytes);
                let _ = parse_line(&line);
            }

            /// Over-length lines are always rejected, never buffered.
            #[test]
            fn over_length_lines_rejected(extra in 1usize..64) {
                let line = "x".repeat(MAX_LINE_BYTES + extra);
                prop_assert!(parse_line(&line).is_err());
            }

            /// Every structurally valid fault line parses to Fault.
            #[test]
            fn valid_fault_lines_parse(
                acc in 0u64..16,
                dur in 1u64..1_000_000,
                at in prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)],
            ) {
                let suffix = at.map(|a| format!(" {a}")).unwrap_or_default();
                for line in [
                    format!("fault {acc} fail{suffix}"),
                    format!("fault {acc} stall {dur}{suffix}"),
                    format!("fault {acc} slow {dur} 2.0{suffix}"),
                ] {
                    prop_assert!(
                        matches!(parse_line(&line), Ok(WireCommand::Fault { .. })),
                        "{line:?} must parse"
                    );
                }
            }
        }
    }
}
