//! The flight recorder's two invariants, asserted end-to-end:
//!
//! 1. **Observer-effect zero** — enabling the tracer changes nothing:
//!    traced and untraced runs of the same scenario/seed produce
//!    bit-identical `Metrics` fingerprints, across scenarios, seeds,
//!    and fault storms.
//! 2. **Trace identity** — a live serving session's trace is
//!    byte-identical to the trace of its batch replay, in both export
//!    formats (Chrome/Perfetto JSON and CSV). The recorder stamps sim
//!    time only, so wall-clock jitter in the live path cannot leak in.

// Test harness timeouts read the wall clock; exempt from the
// workspace determinism lint (trace determinism is what the test
// itself asserts).
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Duration;

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{AcceleratorId, Platform, PlatformPreset};
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_serve::{AdmissionPolicy, ManualClock, ServeConfig, ServeEngine};
use dream_sim::{
    FaultEvent, FaultKind, FaultPlan, Millis, Scheduler, SimTime, SimulationBuilder, TraceConfig,
    TraceEventKind,
};

fn scenario(kind: ScenarioKind) -> Scenario {
    Scenario::new(kind, CascadeProbability::default_paper())
}

fn scheduler() -> Box<dyn Scheduler> {
    Box::new(DreamScheduler::new(DreamConfig::full()))
}

fn storm() -> FaultPlan {
    FaultPlan::from_events(vec![
        FaultEvent {
            at: SimTime::from_ns(20_000_000),
            acc: AcceleratorId(0),
            kind: FaultKind::Stall {
                duration: SimTime::from_ns(15_000_000),
            },
        },
        FaultEvent {
            at: SimTime::from_ns(40_000_000),
            acc: AcceleratorId(1),
            kind: FaultKind::Slowdown {
                factor: 2.5,
                duration: SimTime::from_ns(30_000_000),
            },
        },
    ])
}

fn batch(kind: ScenarioKind, seed: u64, traced: bool) -> dream_sim::SimOutcome {
    let mut builder = SimulationBuilder::new(
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        scenario(kind),
    )
    .duration(Millis::new(120))
    .seed(seed)
    .faults(storm());
    if traced {
        builder = builder.trace(TraceConfig::default());
    }
    let mut sched = scheduler();
    builder.run(sched.as_mut()).unwrap()
}

/// Observer-effect zero: the tracer-on fingerprint equals the
/// tracer-off fingerprint for every scenario × seed cell, under a
/// fault storm (the densest emission path).
#[test]
fn tracer_is_observer_effect_zero() {
    for kind in [
        ScenarioKind::ArCall,
        ScenarioKind::VrGaming,
        ScenarioKind::ArSocial,
    ] {
        for seed in [7u64, 2024, 99] {
            let off = batch(kind, seed, false);
            let on = batch(kind, seed, true);
            assert_eq!(
                off.metrics().fingerprint(),
                on.metrics().fingerprint(),
                "tracer must not perturb {kind:?} seed {seed}"
            );
            assert_eq!(off.final_time(), on.final_time());
            assert!(off.trace().is_none(), "tracer-off runs carry no trace");
            let trace = on.trace().expect("tracer-on runs carry a trace");
            assert!(!trace.is_empty(), "the traced run saw work");
            // The storm's windows are on the record.
            let has_fault = trace
                .events()
                .iter()
                .any(|e| matches!(e.kind, TraceEventKind::FaultStart { .. }));
            assert!(has_fault, "fault windows must be traced");
        }
    }
}

/// Trace identity: the batch replay of a traced batch run (same
/// arrivals, same faults) reproduces the trace byte-for-byte in both
/// export formats. This is the pure-batch half of the invariant; the
/// live half is below.
#[test]
fn batch_reruns_export_identical_traces() {
    let a = batch(ScenarioKind::ArCall, 42, true);
    let b = batch(ScenarioKind::ArCall, 42, true);
    let (ta, tb) = (a.trace().unwrap(), b.trace().unwrap());
    assert_eq!(ta.to_chrome_json(), tb.to_chrome_json());
    assert_eq!(ta.to_csv(), tb.to_csv());
}

/// The tentpole invariant: a live session served tick-by-tick exports
/// the same trace bytes as its batch replay — admissions, a hot-swap,
/// fault windows and all.
#[test]
fn live_trace_is_byte_identical_to_replay_trace() {
    let clock = ManualClock::new();
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        scenario(ScenarioKind::ArCall),
    );
    config.seed = 11;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    config.policy = AdmissionPolicy::Block;
    config.trace = Some(TraceConfig::default());
    let (engine, handle) = ServeEngine::new(config, scheduler()).unwrap();
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());
    let client = handle.client("channel:flight");

    let wait_for = |snapshots: &mut dream_serve::WatchReceiver<dream_serve::MetricsSnapshot>,
                    what: &str,
                    cond: &dyn Fn(&dream_serve::MetricsSnapshot) -> bool| {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(snap) = snapshots.latest() {
                if cond(&snap) {
                    return;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for: {what}"
            );
            snapshots.wait_for_update(Duration::from_millis(200));
        }
    };

    // Phase 0 traffic with a mid-stream fault window.
    for i in 0..30u64 {
        client.submit(PipelineId(0), NodeId(0)).unwrap();
        if i == 10 {
            handle.fault(
                AcceleratorId(0),
                FaultKind::Stall {
                    duration: SimTime::from_ns(8_000_000),
                },
            );
        }
        clock.advance_by(SimTime::from_ns(2_500_000 + i * 9_000));
    }
    wait_for(&mut snapshots, "phase-0 admitted", &|s| s.admitted >= 30);

    // Hot-swap, then more traffic.
    handle.swap(scenario(ScenarioKind::VrGaming));
    wait_for(&mut snapshots, "swap ordered", &|s| s.phase == 1);
    for i in 0..30u64 {
        client.submit(PipelineId(0), NodeId(0)).unwrap();
        clock.advance_by(SimTime::from_ns(3_000_000 + i * 5_000));
    }
    wait_for(&mut snapshots, "phase-1 admitted", &|s| s.admitted >= 60);

    handle.drain();
    let report = server.join().unwrap().unwrap();
    let live_trace = report.outcome.trace().expect("live session traced");
    assert!(!live_trace.is_empty());
    assert_eq!(live_trace.dropped(), 0, "ring must not wrap in this test");

    // Replay the recorded session with tracing on: every exported byte
    // must match the live trace.
    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let replay = report
        .record
        .replay_traced(TraceConfig::default(), &mut fresh)
        .unwrap();
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        replay.metrics().fingerprint(),
        "metrics identity is the precondition"
    );
    let replay_trace = replay.trace().expect("replay traced");
    assert_eq!(
        live_trace.events(),
        replay_trace.events(),
        "event streams must be identical"
    );
    assert_eq!(
        live_trace.to_chrome_json(),
        replay_trace.to_chrome_json(),
        "Chrome JSON export must be byte-identical"
    );
    assert_eq!(
        live_trace.to_csv(),
        replay_trace.to_csv(),
        "CSV export must be byte-identical"
    );

    // Coverage: the trace saw every structural event class this session
    // exercised — releases, dispatches, completions, the fault window,
    // both phases, decisions with score breakdowns, and the drain.
    let events = live_trace.events();
    let mut phases = 0u32;
    let (mut saw_fault, mut saw_decision, mut saw_drain) = (false, false, false);
    for e in events {
        match &e.kind {
            TraceEventKind::PhaseStart { .. } => phases += 1,
            TraceEventKind::FaultStart { .. } => saw_fault = true,
            TraceEventKind::Decision(rec) => {
                saw_decision = true;
                assert!(rec.score.is_finite());
            }
            TraceEventKind::Drain => saw_drain = true,
            _ => {}
        }
    }
    assert_eq!(phases, 2, "both phases start on the record");
    assert!(saw_fault && saw_decision && saw_drain);
}
