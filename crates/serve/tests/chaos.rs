//! Chaos-facing serve tests: the admission funnel stays reconciled under
//! drain-while-overloaded pressure, and fault-injected live sessions
//! (channel *and* socket ingress) replay bit-identically through the
//! batch `FaultPlan` path.

// Test harness timeouts read the wall clock; exempt from the
// workspace determinism lint (replay determinism is what the test
// itself asserts).
#![allow(clippy::disallowed_methods)]
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{AcceleratorId, Platform, PlatformPreset};
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_serve::{
    listen_tcp, AdmissionPolicy, ManualClock, MetricsSnapshot, ServeConfig, ServeEngine,
    SourceStats, SubmitError, WatchReceiver,
};
use dream_sim::{FaultKind, Scheduler, SimTime};

fn scenario(kind: ScenarioKind) -> Scenario {
    Scenario::new(kind, CascadeProbability::default_paper())
}

fn scheduler() -> Box<dyn Scheduler> {
    Box::new(DreamScheduler::new(DreamConfig::full()))
}

fn wait_for(
    rx: &mut WatchReceiver<MetricsSnapshot>,
    what: &str,
    mut cond: impl FnMut(&MetricsSnapshot) -> bool,
) -> Arc<MetricsSnapshot> {
    let deadline = Instant::now() + Duration::from_secs(30);
    if let Some(snap) = rx.latest() {
        if cond(&snap) {
            return snap;
        }
    }
    while Instant::now() < deadline {
        if let Some(snap) = rx.wait_for_update(Duration::from_millis(500)) {
            if cond(&snap) {
                return snap;
            }
        }
    }
    panic!("timed out waiting for: {what}");
}

/// `sum(submitted) == sum(admitted + shed + rejected_*) + backlog` — the
/// per-request funnel identity every snapshot must satisfy (snapshots
/// read stats and backlog under one lock).
fn assert_funnel_identity(sources: &[SourceStats], backlog: usize, context: &str) {
    let submitted: u64 = sources.iter().map(|s| s.submitted).sum();
    let accounted: u64 = sources.iter().map(SourceStats::funnel_total).sum();
    assert_eq!(
        submitted,
        accounted + backlog as u64,
        "funnel identity broken at {context}: {sources:?}"
    );
}

/// Satellite: `begin_drain` while the bounded queue is at capacity and a
/// hot-swap boundary is still pending. Every request must land in
/// exactly one funnel bucket — reconciled at every observed snapshot and
/// in the final report.
#[test]
fn drain_under_pressure_reconciles_the_funnel() {
    let clock = ManualClock::new();
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        scenario(ScenarioKind::ArCall),
    );
    config.seed = 11;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    config.queue_capacity = 4;
    config.policy = AdmissionPolicy::Reject;
    config.max_admissions_per_tick = 1;
    let (engine, handle) = ServeEngine::new(config, scheduler()).unwrap();
    let mut snapshots = handle.snapshots();
    let client = handle.client("channel:pressure");

    // Overfill before the serving loop starts ticking: the queue holds 4,
    // every excess submission must be rejected-at-capacity.
    let mut rejected_capacity = 0u64;
    for _ in 0..32 {
        match client.submit(PipelineId(0), NodeId(0)) {
            Ok(()) => {}
            Err(SubmitError::Full) => rejected_capacity += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected_capacity > 0, "queue never filled");

    // Swap first (its boundary stays pending), then drain into it.
    handle.swap(scenario(ScenarioKind::VrGaming));
    handle.drain();
    let server = std::thread::spawn(move || engine.run());

    // Race more submissions against the drain until the ingress closes,
    // checking the funnel identity on every snapshot that goes by.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_closed_rejection = false;
    while !saw_closed_rejection {
        assert!(Instant::now() < deadline, "ingress never closed");
        match client.submit(PipelineId(0), NodeId(0)) {
            Ok(()) | Err(SubmitError::Full) => {}
            Err(SubmitError::Closed) => saw_closed_rejection = true,
        }
        clock.advance_by(SimTime::from_ns(1_000_000));
        if let Some(snap) = snapshots.wait_for_update(Duration::from_millis(10)) {
            assert_funnel_identity(&snap.sources, snap.ingress_backlog, "live snapshot");
        }
    }

    let report = server.join().unwrap().unwrap();
    assert_funnel_identity(&report.sources, 0, "final report");
    let row = &report.sources[client.source().0];
    assert!(row.rejected_capacity >= rejected_capacity);
    assert!(
        row.rejected_closed > 0,
        "queued requests at drain must be rejected-as-closed: {row:?}"
    );
    assert_eq!(report.record.phases().len(), 2, "swap applied before drain");

    // Pressure or not, the record still replays bit-identically.
    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let batch = report.record.replay(&mut fresh).unwrap();
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        batch.metrics().fingerprint()
    );
}

/// Tentpole acceptance: a live session taking faults from both control
/// faces — the in-process handle and the TCP wire protocol — drains into
/// a record whose batch replay (through the `FaultPlan` path) is
/// bit-identical, across several seeds.
fn run_faulted_session(seed: u64) {
    let clock = ManualClock::new();
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        scenario(ScenarioKind::ArCall),
    );
    config.seed = seed;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    let (engine, handle) = ServeEngine::new(config, scheduler()).unwrap();
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());

    let (addr, socket_server) = listen_tcp(&handle, "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let client = handle.client("channel:chaos");

    // Healthy traffic on both ingress paths.
    for i in 0..30u64 {
        client.submit(PipelineId(0), NodeId(0)).unwrap();
        writeln!(writer, "r 1 0").unwrap();
        clock.advance_by(SimTime::from_ns(2_000_000 + seed * 1_000 + i * 7_000));
    }
    writer.flush().unwrap();
    wait_for(&mut snapshots, "healthy traffic admitted", |s| {
        s.admitted >= 60
    });

    // Chaos from the in-process handle: a stall and a slowdown.
    handle.fault(
        AcceleratorId(1),
        FaultKind::Stall {
            duration: SimTime::from_ns(6_000_000),
        },
    );
    handle.fault(
        AcceleratorId(2),
        FaultKind::Slowdown {
            factor: 2.5,
            duration: SimTime::from_ns(9_000_000),
        },
    );
    // Chaos over the wire: a permanent failure.
    writeln!(writer, "fault 0 fail").unwrap();
    writer.flush().unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(
        ack.starts_with("ok fault ordered"),
        "unexpected ack: {ack:?}"
    );
    // The FaultStart events sit at the frontier; nudge virtual time
    // forward until the engine has stepped across all three.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(snap) = snapshots.wait_for_update(Duration::from_millis(10)) {
            if snap.metrics.faults_injected >= 3 {
                break;
            }
        }
        clock.advance_by(SimTime::from_ns(1_000_000));
        assert!(Instant::now() < deadline, "faults never admitted");
    }

    // Degraded traffic, then drain over the wire.
    for i in 0..30u64 {
        client.submit(PipelineId(0), NodeId(0)).unwrap();
        writeln!(writer, "r 1 0").unwrap();
        clock.advance_by(SimTime::from_ns(2_500_000 + i * 11_000));
    }
    writer.flush().unwrap();
    wait_for(&mut snapshots, "degraded traffic admitted", |s| {
        s.admitted >= 120
    });
    writeln!(writer, "drain").unwrap();
    writer.flush().unwrap();

    let report = server.join().unwrap().unwrap();
    socket_server.shutdown();

    assert_eq!(
        report.record.faults().len(),
        3,
        "all injected faults recorded"
    );
    assert!(report.outcome.metrics().faults_injected >= 3);
    assert!(report.outcome.metrics().layer_executions > 0);

    // The guarantee: the faulted live session replays bit-identically
    // through the batch FaultPlan path.
    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let batch = report.record.replay(&mut fresh).unwrap();
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        batch.metrics().fingerprint(),
        "faulted live session (seed {seed}) must replay bit-identically"
    );
    assert_eq!(report.outcome.final_time(), batch.final_time());
    assert_eq!(
        report.outcome.metrics().faults_injected,
        batch.metrics().faults_injected
    );
    assert_eq!(
        report.outcome.metrics().fault_requeues,
        batch.metrics().fault_requeues
    );
}

#[test]
fn faulted_live_sessions_replay_bit_identically_across_seeds() {
    for seed in [2024, 7, 99] {
        run_faulted_session(seed);
    }
}
