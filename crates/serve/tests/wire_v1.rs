//! Wire protocol v1/v2: golden byte-exact fixtures for every frame
//! kind at both generations, decoder totality under wild bytes,
//! bit-exact encode→decode round trips, min-of-versions compatibility
//! (a v1 peer keeps receiving byte-exact v1 frames from a v2 server),
//! and an end-to-end framed session sharing a listener with a live v0
//! line-mode peer.

// Test harness timeouts read the wall clock; exempt from the
// workspace determinism lint (replay determinism is what the test
// itself asserts).
#![allow(clippy::disallowed_methods)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{AcceleratorId, Platform, PlatformPreset};
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_serve::wire::framed::{read_frame, write_frame, MAX_FRAME_BYTES};
use dream_serve::{
    listen_tcp, CellArrival, CellOutcome, CellScheduler, CellSpec, ErrorCode, ManualClock, Reply,
    Request, ServeConfig, ServeEngine, WireClient, WireSnapshot, PROTOCOL_VERSION,
};
use dream_sim::{FaultKind, SimTime};

fn le32(v: u32) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn le64(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn lestr(s: &str) -> Vec<u8> {
    let mut out = le32(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
    out
}

fn f64bits(v: f64) -> Vec<u8> {
    le64(v.to_bits())
}

/// Every frame kind has a frozen byte layout: these fixtures are the
/// compatibility contract with future protocol generations (a v2 server
/// must still parse these exact bytes from a v1 peer).
#[test]
fn golden_request_fixtures() {
    let cases: Vec<(Request, Vec<u8>)> = vec![
        (Request::Ping, vec![0x01]),
        (
            Request::Submit {
                pipeline: PipelineId(1),
                node: NodeId(2),
                at: Some(SimTime::from_ns(5000)),
            },
            [vec![0x02], le64(1), le64(2), vec![1], le64(5000)].concat(),
        ),
        (
            Request::Submit {
                pipeline: PipelineId(0),
                node: NodeId(7),
                at: None,
            },
            [vec![0x02], le64(0), le64(7), vec![0]].concat(),
        ),
        (
            Request::Swap {
                scenario: "AR_Call".into(),
                cascade: 0.5,
            },
            [vec![0x03], lestr("AR_Call"), f64bits(0.5)].concat(),
        ),
        (
            Request::Fault {
                acc: AcceleratorId(3),
                kind: FaultKind::Fail,
                at: None,
            },
            [vec![0x04], le64(3), vec![0], vec![0]].concat(),
        ),
        (
            Request::Fault {
                acc: AcceleratorId(0),
                kind: FaultKind::Stall {
                    duration: SimTime::from_ns(5000),
                },
                at: Some(SimTime::from_ns(77)),
            },
            [vec![0x04], le64(0), vec![1], le64(5000), vec![1], le64(77)].concat(),
        ),
        (
            Request::Fault {
                acc: AcceleratorId(1),
                kind: FaultKind::Slowdown {
                    factor: 2.5,
                    duration: SimTime::from_ns(9000),
                },
                at: None,
            },
            [
                vec![0x04],
                le64(1),
                vec![2],
                le64(9000),
                f64bits(2.5),
                vec![0],
            ]
            .concat(),
        ),
        (Request::Drain, vec![0x05]),
        (Request::Snapshot, vec![0x06]),
        (
            Request::RunCells {
                record_traces: true,
                cells: vec![CellSpec {
                    index: 4,
                    scheduler: CellScheduler::Fcfs,
                    scenario: "AR_Call".into(),
                    preset: "4K 2WS".into(),
                    cascade: 0.5,
                    duration_ms: 300,
                    seed: 7,
                    arrival: CellArrival::Periodic,
                }],
            },
            [
                vec![0x07],
                vec![1],
                le32(1),
                le64(4),
                vec![0],
                lestr("AR_Call"),
                lestr("4K 2WS"),
                f64bits(0.5),
                le64(300),
                le64(7),
                vec![0],
            ]
            .concat(),
        ),
    ];
    for (request, golden) in cases {
        assert_eq!(request.encode(), golden, "encode fixture for {request:?}");
        assert_eq!(
            Request::decode(&golden).unwrap(),
            request,
            "decode fixture for {request:?}"
        );
    }
}

/// The frozen v1 reply layouts: a v2 build negotiating down to v1 must
/// still emit these exact bytes, so the fixtures are exercised through
/// `encode_versioned(1)` / `decode_versioned(_, 1)`. The v2-only
/// snapshot fields are zero here because a v1 frame cannot carry them.
#[test]
fn golden_reply_fixtures_v1() {
    let snapshot = WireSnapshot {
        tick: 1,
        now_ns: 2,
        frontier_ns: 3,
        phase: 4,
        draining: true,
        ingress_backlog: 5,
        event_backlog: 6,
        admitted: 7,
        shed: 8,
        rejected: 9,
        fingerprint: 0xDEAD_BEEF,
        faults_injected: 0,
        fault_requeues: 0,
        deadline_miss_under_faults: 0,
        sojourn_hist: Vec::new(),
    };
    let outcome = CellOutcome {
        index: 4,
        fingerprint: 0xFEED,
        uxcost: 1.25,
        mean_violation_rate: 0.5,
        mean_norm_energy: 0.75,
        trace_csv: "# t\n1,0,0,0\n".into(),
    };
    let cases: Vec<(Reply, Vec<u8>)> = vec![
        (Reply::Ok, vec![0x81]),
        (
            Reply::Error {
                code: ErrorCode::Invalid,
                message: "nope".into(),
            },
            [vec![0x82], vec![3], lestr("nope")].concat(),
        ),
        (
            Reply::Snapshot(snapshot),
            [
                vec![0x83],
                le64(1),
                le64(2),
                le64(3),
                le64(4),
                vec![1],
                le64(5),
                le64(6),
                le64(7),
                le64(8),
                le64(9),
                le64(0xDEAD_BEEF),
            ]
            .concat(),
        ),
        (
            Reply::CellsDone {
                outcomes: vec![outcome],
            },
            [
                vec![0x84],
                le32(1),
                le64(4),
                le64(0xFEED),
                f64bits(1.25),
                f64bits(0.5),
                f64bits(0.75),
                lestr("# t\n1,0,0,0\n"),
            ]
            .concat(),
        ),
    ];
    for (reply, golden) in cases {
        assert_eq!(
            reply.encode_versioned(1),
            golden,
            "v1 encode fixture for {reply:?}"
        );
        assert_eq!(
            Reply::decode_versioned(&golden, 1).unwrap(),
            reply,
            "v1 decode fixture for {reply:?}"
        );
    }
}

/// The v2 snapshot layout: the v1 prefix byte-for-byte, then the three
/// fault counters and the sparse sojourn histogram. Non-snapshot
/// replies are version-invariant, so the newest-generation `encode` /
/// `decode` pair is the fixture target here.
#[test]
fn golden_reply_fixtures_v2() {
    let snapshot = WireSnapshot {
        tick: 1,
        now_ns: 2,
        frontier_ns: 3,
        phase: 4,
        draining: true,
        ingress_backlog: 5,
        event_backlog: 6,
        admitted: 7,
        shed: 8,
        rejected: 9,
        fingerprint: 0xDEAD_BEEF,
        faults_injected: 10,
        fault_requeues: 11,
        deadline_miss_under_faults: 12,
        sojourn_hist: vec![(0, 3), (21, 900)],
    };
    let golden = [
        vec![0x83],
        le64(1),
        le64(2),
        le64(3),
        le64(4),
        vec![1],
        le64(5),
        le64(6),
        le64(7),
        le64(8),
        le64(9),
        le64(0xDEAD_BEEF),
        le64(10),
        le64(11),
        le64(12),
        le32(2),
        le32(0),
        le64(3),
        le32(21),
        le64(900),
    ]
    .concat();
    let reply = Reply::Snapshot(snapshot.clone());
    assert_eq!(reply.encode(), golden, "v2 snapshot encode fixture");
    assert_eq!(
        Reply::decode(&golden).unwrap(),
        reply,
        "v2 snapshot decode fixture"
    );
    // Down-negotiated to v1, the same reply loses exactly the suffix —
    // and a v1 decode of those bytes zeroes the v2-only fields.
    let v1_bytes = reply.encode_versioned(1);
    assert_eq!(v1_bytes[..], golden[..golden.len() - 52]);
    let Reply::Snapshot(downgraded) = Reply::decode_versioned(&v1_bytes, 1).unwrap() else {
        panic!("v1 bytes must still decode as a snapshot");
    };
    assert_eq!(downgraded.fingerprint, snapshot.fingerprint);
    assert_eq!(downgraded.faults_injected, 0);
    assert_eq!(downgraded.fault_requeues, 0);
    assert_eq!(downgraded.deadline_miss_under_faults, 0);
    assert!(downgraded.sojourn_hist.is_empty());
}

#[test]
fn golden_hello_and_framing() {
    use dream_serve::wire::framed::{hello_bytes, CLIENT_MAGIC, SERVER_MAGIC};
    assert_eq!(
        hello_bytes(CLIENT_MAGIC, PROTOCOL_VERSION),
        [0xD7, 0x44, 0x52, 0x4D, 0x02, 0x00]
    );
    assert_eq!(
        hello_bytes(SERVER_MAGIC, PROTOCOL_VERSION),
        [0xD7, 0x64, 0x72, 0x6D, 0x02, 0x00]
    );
    let mut framed = Vec::new();
    write_frame(&mut framed, &Request::Ping.encode()).unwrap();
    assert_eq!(framed, vec![1, 0, 0, 0, 0x01]);
    let submit = Request::Submit {
        pipeline: PipelineId(1),
        node: NodeId(2),
        at: Some(SimTime::from_ns(5000)),
    };
    let mut framed = Vec::new();
    write_frame(&mut framed, &submit.encode()).unwrap();
    assert_eq!(
        framed[..4],
        26u32.to_le_bytes(),
        "submit payload is 26 bytes"
    );
    assert_eq!(framed.len(), 30);
}

mod properties {
    use super::*;
    use dream_serve::CellDreamVariant;
    use proptest::prelude::*;

    fn arb_string() -> impl Strategy<Value = String> {
        proptest::collection::vec(97u8..123, 0..12)
            .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
    }

    fn arb_stamp() -> impl Strategy<Value = Option<u64>> {
        prop_oneof![Just(None), (0u64..(1 << 40)).prop_map(Some)]
    }

    fn arb_fault() -> impl Strategy<Value = FaultKind> {
        (0u8..3, 1u64..(1 << 30), 0u64..(1 << 10)).prop_map(
            |(disc, dur, factor_scale)| match disc {
                0 => FaultKind::Fail,
                1 => FaultKind::Stall {
                    duration: SimTime::from_ns(dur),
                },
                _ => FaultKind::Slowdown {
                    factor: 1.0 + factor_scale as f64 / 16.0,
                    duration: SimTime::from_ns(dur),
                },
            },
        )
    }

    fn arb_variant() -> impl Strategy<Value = CellDreamVariant> {
        prop_oneof![
            Just(CellDreamVariant::MapScore),
            Just(CellDreamVariant::SmartDrop),
            Just(CellDreamVariant::Full),
        ]
    }

    fn arb_scheduler() -> impl Strategy<Value = CellScheduler> {
        prop_oneof![
            Just(CellScheduler::Fcfs),
            Just(CellScheduler::Static),
            Just(CellScheduler::Edf),
            Just(CellScheduler::Veltair),
            Just(CellScheduler::Planaria),
            (arb_variant(), 0u64..(1 << 20), 0u64..(1 << 20)).prop_map(|(variant, a, b)| {
                CellScheduler::DreamFixed {
                    variant,
                    alpha: a as f64 / 1024.0,
                    beta: b as f64 / 1024.0,
                }
            }),
            arb_variant().prop_map(|variant| CellScheduler::DreamTuned { variant }),
        ]
    }

    fn arb_arrival() -> impl Strategy<Value = CellArrival> {
        prop_oneof![
            Just(CellArrival::Periodic),
            (1u64..4096).prop_map(|i| CellArrival::Poisson {
                intensity: i as f64 / 256.0,
            }),
            (1u64..4096, 1u64..4096, 0.0f64..1.0, 0.0f64..1.0).prop_map(
                |(calm, burst, p_enter, p_exit)| CellArrival::Mmpp {
                    calm: calm as f64 / 256.0,
                    burst: burst as f64 / 256.0,
                    p_enter,
                    p_exit,
                }
            ),
        ]
    }

    fn arb_cell() -> impl Strategy<Value = CellSpec> {
        (
            arb_scheduler(),
            arb_string(),
            arb_string(),
            0.0f64..1.0,
            (1u64..4000, any::<u64>(), arb_arrival()),
        )
            .prop_map(
                |(scheduler, scenario, preset, cascade, (dur, seed, arrival))| CellSpec {
                    index: 0,
                    scheduler,
                    scenario,
                    preset,
                    cascade,
                    duration_ms: dur,
                    seed,
                    arrival,
                },
            )
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            Just(Request::Ping),
            Just(Request::Drain),
            Just(Request::Snapshot),
            (any::<u32>(), any::<u32>(), arb_stamp()).prop_map(|(p, n, at)| Request::Submit {
                pipeline: PipelineId(p as usize),
                node: NodeId(n as usize),
                at: at.map(SimTime::from_ns),
            }),
            (arb_string(), 0.0f64..1.0)
                .prop_map(|(scenario, cascade)| Request::Swap { scenario, cascade }),
            (any::<u16>(), arb_fault(), arb_stamp()).prop_map(|(acc, kind, at)| Request::Fault {
                acc: AcceleratorId(acc as usize),
                kind,
                at: at.map(SimTime::from_ns),
            }),
            (any::<bool>(), proptest::collection::vec(arb_cell(), 0..3)).prop_map(
                |(record_traces, mut cells)| {
                    for (i, cell) in cells.iter_mut().enumerate() {
                        cell.index = i as u64;
                    }
                    Request::RunCells {
                        record_traces,
                        cells,
                    }
                }
            ),
        ]
    }

    fn arb_snapshot() -> impl Strategy<Value = WireSnapshot> {
        (
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            proptest::collection::vec((0u32..65, 1u64..(1 << 40)), 0..8),
        )
            .prop_map(
                |(
                    (tick, now_ns, frontier_ns, phase),
                    (draining, ingress_backlog, event_backlog, admitted),
                    (shed, rejected, fingerprint),
                    (faults_injected, fault_requeues, deadline_miss_under_faults),
                    hist,
                )| WireSnapshot {
                    tick,
                    now_ns,
                    frontier_ns,
                    phase,
                    draining,
                    ingress_backlog,
                    event_backlog,
                    admitted,
                    shed,
                    rejected,
                    fingerprint,
                    faults_injected,
                    fault_requeues,
                    deadline_miss_under_faults,
                    // Ascending unique buckets, as Histogram::sparse
                    // produces them.
                    sojourn_hist: hist
                        .into_iter()
                        .collect::<std::collections::BTreeMap<_, _>>()
                        .into_iter()
                        .collect(),
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Totality: the framed decoder never panics on byte soup, for
        /// either message direction.
        #[test]
        fn decoder_never_panics_on_wild_bytes(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            let _ = Request::decode(&bytes);
            let _ = Reply::decode(&bytes);
        }

        /// v1 encode→decode round-trips bit-exactly: the decoded value
        /// equals the original AND re-encodes to the same bytes.
        #[test]
        fn requests_round_trip_bit_exactly(request in arb_request()) {
            let bytes = request.encode();
            let decoded = Request::decode(&bytes).expect("encoded requests decode");
            prop_assert_eq!(&decoded, &request);
            prop_assert_eq!(decoded.encode(), bytes);
        }

        /// Snapshot replies round-trip bit-exactly at v2, and the v1
        /// projection of any snapshot decodes with exactly the v2-only
        /// fields zeroed — nothing else perturbed.
        #[test]
        fn snapshots_round_trip_at_both_versions(snapshot in arb_snapshot()) {
            let reply = Reply::Snapshot(snapshot.clone());
            let v2 = reply.encode();
            let decoded = Reply::decode(&v2).expect("v2 snapshot decodes");
            prop_assert_eq!(&decoded, &reply);
            prop_assert_eq!(decoded.encode(), v2);

            let v1 = reply.encode_versioned(1);
            let Reply::Snapshot(down) = Reply::decode_versioned(&v1, 1).expect("v1 decodes") else {
                panic!("v1 bytes must decode as a snapshot");
            };
            let mut expected = snapshot;
            expected.faults_injected = 0;
            expected.fault_requeues = 0;
            expected.deadline_miss_under_faults = 0;
            expected.sojourn_hist = Vec::new();
            prop_assert_eq!(down, expected);
        }

        /// Truncating any strict prefix of a valid payload yields a typed
        /// error, never a panic or a silent partial decode.
        #[test]
        fn truncated_payloads_error_cleanly(request in arb_request(), cut in 0usize..64) {
            let bytes = request.encode();
            if cut < bytes.len() {
                let truncated = &bytes[..bytes.len() - cut - 1];
                if !truncated.is_empty() {
                    prop_assert!(Request::decode(truncated).is_err());
                }
            }
        }
    }
}

/// End-to-end: a framed client and a v0 line client share one TCP
/// listener; the framed peer drives control and traffic, the line peer
/// keeps working through the sniffed fallback, and the session replays
/// bit-identically.
#[test]
fn framed_and_line_peers_share_a_listener() {
    let clock = ManualClock::new();
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Homo4kWs2),
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
    );
    config.seed = 11;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    let (engine, handle) =
        ServeEngine::new(config, Box::new(DreamScheduler::new(DreamConfig::full()))).unwrap();
    let server = std::thread::spawn(move || engine.run());
    let (addr, socket_server) = listen_tcp(&handle, "127.0.0.1:0").unwrap();

    // --- framed peer ---
    let mut v1 = WireClient::connect_tcp(addr).unwrap();
    assert_eq!(v1.version(), PROTOCOL_VERSION);
    v1.ping().unwrap();

    // --- v0 line peer on the same listener, interleaved ---
    let line_stream = TcpStream::connect(addr).unwrap();
    let mut line_reader = BufReader::new(line_stream.try_clone().unwrap());
    let mut line_writer = line_stream;
    writeln!(line_writer, "ping").unwrap();
    let mut line = String::new();
    line_reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "ok", "v0 fallback still answers");

    // Framed traffic: stamped submissions, pipelined batch, control.
    for i in 0..10u64 {
        v1.submit_at(PipelineId(0), NodeId(0), SimTime::from_ns(i * 2_000_000))
            .unwrap();
        clock.advance_by(SimTime::from_ns(2_000_000));
    }
    let batch: Vec<_> = (0..6u64)
        .map(|_| (PipelineId(1), NodeId(0), None))
        .collect();
    for result in v1.submit_batch(&batch).unwrap() {
        result.unwrap();
    }
    v1.swap("vr_gaming", 0.5).unwrap();
    v1.fault(
        AcceleratorId(0),
        FaultKind::Stall {
            duration: SimTime::from_ns(5_000_000),
        },
        None,
    )
    .unwrap();

    // Degenerate fault parameters are rejected at decode time with a
    // typed error code — and exactly one rejected_invalid.
    let err = v1
        .fault(
            AcceleratorId(0),
            FaultKind::Stall {
                duration: SimTime::from_ns(0),
            },
            None,
        )
        .unwrap_err();
    match err {
        dream_serve::ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Invalid),
        other => panic!("expected typed server error, got {other}"),
    }

    // Line traffic keeps flowing mid-session.
    writeln!(line_writer, "r 0 0").unwrap();
    line_writer.flush().unwrap();

    // A raw framed peer claiming v1 still handshakes (min-of-versions),
    // and a garbage frame gets a Malformed reply (funnel-accounted).
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xD7, 0x44, 0x52, 0x4D, 0x01, 0x00])
        .unwrap();
    let mut hello = [0u8; 6];
    raw.read_exact(&mut hello).unwrap();
    assert_eq!(hello, [0xD7, 0x64, 0x72, 0x6D, 0x02, 0x00]);
    write_frame(&mut raw, &[0xFF, 1, 2, 3]).unwrap();
    let payload = read_frame(&mut raw).unwrap();
    match Reply::decode_versioned(&payload, 1).unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }
    drop(raw);

    // Snapshots become available over the framed face.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let snapshot = loop {
        match v1.snapshot() {
            Ok(snap) if snap.admitted >= 17 => break snap,
            Ok(_) | Err(dream_serve::ClientError::Server { .. }) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "snapshot never reflected traffic"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("snapshot transport failed: {other}"),
        }
    };
    assert!(snapshot.fingerprint != 0 || snapshot.admitted > 0);
    // The v2 face carries the fault plane: the stall injected above is
    // visible in the snapshot's counters.
    assert!(
        snapshot.faults_injected >= 1,
        "v2 snapshot must carry the injected stall"
    );

    // A v1 peer asking for the same snapshot gets the original v1 frame
    // shape: the v2-only fields simply don't travel, and decode at the
    // negotiated version zeroes them.
    let mut old_peer = TcpStream::connect(addr).unwrap();
    old_peer
        .write_all(&[0xD7, 0x44, 0x52, 0x4D, 0x01, 0x00])
        .unwrap();
    let mut hello = [0u8; 6];
    old_peer.read_exact(&mut hello).unwrap();
    write_frame(&mut old_peer, &Request::Snapshot.encode()).unwrap();
    let payload = read_frame(&mut old_peer).unwrap();
    let Reply::Snapshot(v1_snap) = Reply::decode_versioned(&payload, 1).unwrap() else {
        panic!("v1 peer must still receive a decodable snapshot");
    };
    assert!(v1_snap.admitted >= 17);
    assert_eq!(
        v1_snap.faults_injected, 0,
        "v2 fields never reach a v1 peer"
    );
    assert!(v1_snap.sojourn_hist.is_empty());
    drop(old_peer);

    v1.drain().unwrap();
    let report = server.join().unwrap().unwrap();
    socket_server.shutdown();

    // Funnel identity per source, including the framed peer's one
    // decode-time rejection.
    for source in &report.sources {
        assert_eq!(
            source.submitted,
            source.funnel_total(),
            "funnel identity must hold for {}",
            source.label
        );
    }
    let framed_sources: Vec<_> = report
        .sources
        .iter()
        .filter(|s| s.label.starts_with("tcp:"))
        .collect();
    assert_eq!(
        framed_sources
            .iter()
            .map(|s| s.rejected_invalid)
            .sum::<u64>(),
        2,
        "zero-duration fault + garbage frame = two invalid rejections"
    );
    assert_eq!(
        framed_sources.iter().map(|s| s.admitted).sum::<u64>(),
        17,
        "10 stamped + 6 batched framed + 1 line submission admitted"
    );

    // The socket-fed session replays bit-identically — protocol v1 does
    // not perturb the determinism contract.
    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let batch_outcome = report.record.replay(&mut fresh).unwrap();
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        batch_outcome.metrics().fingerprint(),
        "mixed v0/v1 session must replay bit-identically"
    );

    // The frame-size guard is part of the public contract: an oversize
    // frame is refused at write time, before any bytes hit the wire.
    let mut sink = Vec::new();
    assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME_BYTES + 1]).is_err());
    assert!(sink.is_empty());
}
