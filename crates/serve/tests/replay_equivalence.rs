//! The headline guarantee of `dream-serve`: a recorded live session —
//! channel *and* socket ingress, two scenarios with a mid-session
//! hot-swap, multiple seeds — re-run through the batch simulator yields
//! **bit-identical** scheduling `Metrics`.
//!
//! Replay equivalence is unconditional on timing: whatever the wall
//! clock and thread interleavings admitted is what the record replays.
//! The assertions on coverage (both sources admitted, both phases
//! reached) make sure the sessions exercised the paths they claim to.

// Test harness timeouts read the wall clock; exempt from the
// workspace determinism lint (replay determinism is what the test
// itself asserts).
#![allow(clippy::disallowed_methods)]
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_serve::{
    listen_tcp, AdmissionPolicy, ManualClock, MetricsSnapshot, ServeConfig, ServeEngine,
    WatchReceiver,
};
use dream_sim::{Scheduler, SimTime};

fn scenario(kind: ScenarioKind) -> Scenario {
    Scenario::new(kind, CascadeProbability::default_paper())
}

fn wait_for(
    rx: &mut WatchReceiver<MetricsSnapshot>,
    what: &str,
    mut cond: impl FnMut(&MetricsSnapshot) -> bool,
) -> Arc<MetricsSnapshot> {
    let deadline = Instant::now() + Duration::from_secs(30);
    if let Some(snap) = rx.latest() {
        if cond(&snap) {
            return snap;
        }
    }
    while Instant::now() < deadline {
        if let Some(snap) = rx.wait_for_update(Duration::from_millis(500)) {
            if cond(&snap) {
                return snap;
            }
        }
    }
    panic!("timed out waiting for: {what}");
}

fn scheduler() -> Box<dyn Scheduler> {
    Box::new(DreamScheduler::new(DreamConfig::full()))
}

/// Runs one live session (channel + TCP ingress, AR_Call → VR_Gaming
/// hot-swap) and asserts its batch replay is bit-identical.
fn run_session(seed: u64) {
    let clock = ManualClock::new();
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        scenario(ScenarioKind::ArCall),
    );
    config.seed = seed;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    config.policy = AdmissionPolicy::ShedOldest;
    let (engine, handle) = ServeEngine::new(config, scheduler()).unwrap();
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());

    // Socket ingress: speak the wire protocol over a real TCP connection.
    let (addr, socket_server) = listen_tcp(&handle, "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Channel ingress.
    let client = handle.client("channel:test");

    // Phase 0 (AR_Call): drive both ingress paths.
    for i in 0..40u64 {
        client.submit(PipelineId(0), NodeId(0)).unwrap();
        writeln!(writer, "r 1 0").unwrap();
        clock.advance_by(SimTime::from_ns(2_000_000 + seed * 1_000 + i * 7_000));
    }
    writer.flush().unwrap();
    wait_for(&mut snapshots, "phase-0 traffic admitted", |s| {
        s.admitted >= 80
    });

    // Hot-swap to VR_Gaming mid-session.
    handle.swap(scenario(ScenarioKind::VrGaming));
    wait_for(&mut snapshots, "swap ordered", |s| s.phase == 1);

    // Phase 1 (VR_Gaming): both paths again; the boundary clamp is
    // exercised because stamps land before the announced phase start.
    for i in 0..40u64 {
        client.submit(PipelineId(0), NodeId(0)).unwrap();
        writeln!(writer, "r 2 0").unwrap();
        clock.advance_by(SimTime::from_ns(3_000_000 + i * 11_000));
    }
    writer.flush().unwrap();
    wait_for(&mut snapshots, "phase-1 traffic admitted", |s| {
        s.admitted >= 160
    });

    // Drain through the socket control path.
    writeln!(writer, "drain").unwrap();
    writer.flush().unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.starts_with("ok draining"), "unexpected ack: {ack:?}");

    let report = server.join().unwrap().unwrap();
    socket_server.shutdown();

    // Coverage: both ingress paths admitted traffic, both phases ran.
    let channel_admitted: u64 = report
        .sources
        .iter()
        .filter(|s| s.label.starts_with("channel:"))
        .map(|s| s.admitted)
        .sum();
    let socket_admitted: u64 = report
        .sources
        .iter()
        .filter(|s| s.label.starts_with("tcp:"))
        .map(|s| s.admitted)
        .sum();
    assert!(
        channel_admitted >= 80,
        "channel admitted {channel_admitted}"
    );
    assert!(socket_admitted >= 80, "socket admitted {socket_admitted}");
    assert_eq!(report.record.phases().len(), 2, "hot-swap recorded");
    assert_eq!(
        report.record.trace().len() as u64,
        channel_admitted + socket_admitted
    );
    assert_eq!(report.record.seed(), seed);

    // The guarantee: a fresh scheduler replaying the record through the
    // batch simulator reproduces the live metrics bit-for-bit.
    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let batch = report.record.replay(&mut fresh).unwrap();
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        batch.metrics().fingerprint(),
        "live session (seed {seed}) must replay bit-identically"
    );
    assert_eq!(report.outcome.final_time(), batch.final_time());
    // The live path really scheduled work, not just bookkeeping.
    assert!(report.outcome.metrics().layer_executions > 0);
}

#[test]
fn live_sessions_replay_bit_identically_across_seeds() {
    for seed in [2024, 7, 99] {
        run_session(seed);
    }
}
