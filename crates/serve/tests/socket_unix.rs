//! Unix-domain-socket ingress: protocol round trip, error replies, and
//! replay equivalence of a socket-fed session.

// Test harness timeouts read the wall clock; exempt from the
// workspace determinism lint (replay determinism is what the test
// itself asserts).
#![allow(clippy::disallowed_methods)]
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_serve::{listen_unix, ManualClock, ServeConfig, ServeEngine};
use dream_sim::SimTime;

#[test]
fn unix_socket_sessions_record_and_replay() {
    let dir = std::env::temp_dir().join(format!("dream-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.sock");

    let clock = ManualClock::new();
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Homo4kWs2),
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
    );
    config.seed = 5;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    let (engine, handle) =
        ServeEngine::new(config, Box::new(DreamScheduler::new(DreamConfig::full()))).unwrap();
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());
    let socket_server = listen_unix(&handle, &path).unwrap();

    let stream = UnixStream::connect(&path).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Liveness + error replies.
    writeln!(writer, "ping").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "ok");
    writeln!(writer, "r 99 0").unwrap(); // parses, but no such pipeline
    writeln!(writer, "bogus").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("err unknown command"), "{line:?}");

    // Real traffic with explicit stamps, then drain.
    for i in 0..25u64 {
        writeln!(writer, "r 0 0 {}", i * 2_000_000).unwrap();
        writeln!(writer, "r 1 0").unwrap();
        clock.advance_by(SimTime::from_ns(2_000_000));
    }
    writer.flush().unwrap();
    // A command whose bytes straddle read-timeout windows must survive
    // intact (the reader accumulates partial lines across timeouts).
    write!(writer, "r ").unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(250));
    write!(writer, "0").unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(250));
    writeln!(writer, " 0").unwrap();
    writer.flush().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(snap) = snapshots.wait_for_update(Duration::from_millis(500)) {
            // 51 valid requests (incl. the fragmented one); the `r 99 0`
            // one lands in rejected.
            if snap.admitted >= 51 && snap.rejected >= 1 {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "traffic never admitted"
        );
    }
    writeln!(writer, "drain").unwrap();
    writer.flush().unwrap();

    let report = server.join().unwrap().unwrap();
    socket_server.shutdown();
    let unix_source = report
        .sources
        .iter()
        .find(|s| s.label.starts_with("unix:"))
        .expect("unix source registered");
    assert_eq!(unix_source.admitted, 51);
    // `r 99 0` (unknown pipeline) + `bogus` (wire parse reject): parse
    // failures enter the funnel as rejected_invalid too.
    assert_eq!(unix_source.rejected_invalid, 2);
    assert_eq!(unix_source.submitted, unix_source.funnel_total());

    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let batch = report.record.replay(&mut fresh).unwrap();
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        batch.metrics().fingerprint(),
        "unix-socket session must replay bit-identically"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

fn spawn_engine(
    seed: u64,
) -> (
    std::thread::JoinHandle<Result<dream_serve::SessionReport, dream_sim::LiveError>>,
    dream_serve::ServeHandle,
) {
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Homo4kWs2),
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
    );
    config.seed = seed;
    config.clock = Arc::new(ManualClock::new());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    let (engine, handle) =
        ServeEngine::new(config, Box::new(DreamScheduler::new(DreamConfig::full()))).unwrap();
    (std::thread::spawn(move || engine.run()), handle)
}

/// Regression (wire v1 PR): a final partial line at peer disconnect —
/// no trailing newline before EOF — must never execute, must answer
/// with a typed truncation error, and must enter the funnel as exactly
/// one `rejected_invalid` so `submitted == admitted + shed +
/// rejected_* + backlog` still holds.
#[test]
fn truncated_final_line_is_accounted_not_executed() {
    let dir = std::env::temp_dir().join(format!("dream-serve-tail-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tail.sock");

    let (server, handle) = spawn_engine(6);
    let mut snapshots = handle.snapshots();
    let socket_server = listen_unix(&handle, &path).unwrap();

    let stream = UnixStream::connect(&path).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "r 0 0").unwrap();
    writeln!(writer, "r 1 0").unwrap();
    // The tail: a prefix of a valid stamped submission, then EOF with no
    // terminator. The peer cannot know whether the stamp arrived whole,
    // so the server must not guess.
    write!(writer, "r 0 0 12345").unwrap();
    writer.flush().unwrap();
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "err truncated line at end of stream");
    drop(reader);
    drop(writer);

    // Both whole lines admitted, the tail rejected — then drain via a
    // second connection (the first is gone).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(snap) = snapshots.wait_for_update(Duration::from_millis(500)) {
            if snap.admitted >= 2 && snap.rejected >= 1 {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "traffic never admitted"
        );
    }
    let mut drainer = UnixStream::connect(&path).unwrap();
    writeln!(drainer, "drain").unwrap();
    drainer.flush().unwrap();

    let report = server.join().unwrap().unwrap();
    socket_server.shutdown();
    let unix: Vec<_> = report
        .sources
        .iter()
        .filter(|s| s.label.starts_with("unix:"))
        .collect();
    assert_eq!(
        unix.iter().map(|s| s.admitted).sum::<u64>(),
        2,
        "the truncated fragment must not execute as a third submission"
    );
    assert_eq!(
        unix.iter().map(|s| s.rejected_invalid).sum::<u64>(),
        1,
        "the truncated tail is accounted exactly once"
    );
    for source in &report.sources {
        assert_eq!(
            source.submitted,
            source.funnel_total(),
            "funnel identity must hold for {}",
            source.label
        );
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Regression (wire v1 PR): degenerate fault windows — zero-duration
/// stall/slow and non-finite or `< 1` slowdown factors — are rejected
/// at parse time with a typed error and exactly one `rejected_invalid`
/// each; they never reach the engine as no-op or NaN-poisoned events.
#[test]
fn degenerate_fault_windows_are_rejected_at_parse_time() {
    let dir = std::env::temp_dir().join(format!("dream-serve-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fault.sock");

    let (server, handle) = spawn_engine(7);
    let socket_server = listen_unix(&handle, &path).unwrap();

    let stream = UnixStream::connect(&path).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |cmd: &str| -> String {
        writeln!(writer, "{cmd}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim().to_string()
    };

    assert_eq!(
        roundtrip("fault 0 stall 0"),
        "err fault window duration must be > 0"
    );
    assert_eq!(
        roundtrip("fault 0 slow 0 2.0"),
        "err fault window duration must be > 0"
    );
    assert_eq!(
        roundtrip("fault 0 slow 5000000 0.5"),
        "err factor 0.5 must be finite and >= 1"
    );
    assert_eq!(
        roundtrip("fault 0 slow 5000000 nan"),
        "err factor NaN must be finite and >= 1"
    );
    assert_eq!(
        roundtrip("fault 0 slow 5000000 inf"),
        "err factor inf must be finite and >= 1"
    );
    // Well-formed windows still land.
    assert_eq!(roundtrip("fault 0 stall 5000000"), "ok fault ordered");
    assert_eq!(roundtrip("fault 0 slow 5000000 2.0"), "ok fault ordered");
    assert_eq!(roundtrip("drain"), "ok draining");

    let report = server.join().unwrap().unwrap();
    socket_server.shutdown();
    let source = report
        .sources
        .iter()
        .find(|s| s.label.starts_with("unix:"))
        .expect("unix source registered");
    assert_eq!(
        source.rejected_invalid, 5,
        "each degenerate fault counts exactly once"
    );
    assert_eq!(source.submitted, source.funnel_total());

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
