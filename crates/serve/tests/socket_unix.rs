//! Unix-domain-socket ingress: protocol round trip, error replies, and
//! replay equivalence of a socket-fed session.

// Test harness timeouts read the wall clock; exempt from the
// workspace determinism lint (replay determinism is what the test
// itself asserts).
#![allow(clippy::disallowed_methods)]
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_serve::{listen_unix, ManualClock, ServeConfig, ServeEngine};
use dream_sim::SimTime;

#[test]
fn unix_socket_sessions_record_and_replay() {
    let dir = std::env::temp_dir().join(format!("dream-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.sock");

    let clock = ManualClock::new();
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Homo4kWs2),
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
    );
    config.seed = 5;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    let (engine, handle) =
        ServeEngine::new(config, Box::new(DreamScheduler::new(DreamConfig::full()))).unwrap();
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());
    let socket_server = listen_unix(&handle, &path).unwrap();

    let stream = UnixStream::connect(&path).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Liveness + error replies.
    writeln!(writer, "ping").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "ok");
    writeln!(writer, "r 99 0").unwrap(); // parses, but no such pipeline
    writeln!(writer, "bogus").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("err unknown command"), "{line:?}");

    // Real traffic with explicit stamps, then drain.
    for i in 0..25u64 {
        writeln!(writer, "r 0 0 {}", i * 2_000_000).unwrap();
        writeln!(writer, "r 1 0").unwrap();
        clock.advance_by(SimTime::from_ns(2_000_000));
    }
    writer.flush().unwrap();
    // A command whose bytes straddle read-timeout windows must survive
    // intact (the reader accumulates partial lines across timeouts).
    write!(writer, "r ").unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(250));
    write!(writer, "0").unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(250));
    writeln!(writer, " 0").unwrap();
    writer.flush().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(snap) = snapshots.wait_for_update(Duration::from_millis(500)) {
            // 51 valid requests (incl. the fragmented one); the `r 99 0`
            // one lands in rejected.
            if snap.admitted >= 51 && snap.rejected >= 1 {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "traffic never admitted"
        );
    }
    writeln!(writer, "drain").unwrap();
    writer.flush().unwrap();

    let report = server.join().unwrap().unwrap();
    socket_server.shutdown();
    let unix_source = report
        .sources
        .iter()
        .find(|s| s.label.starts_with("unix:"))
        .expect("unix source registered");
    assert_eq!(unix_source.admitted, 51);
    // `r 99 0` (unknown pipeline) + `bogus` (wire parse reject): parse
    // failures enter the funnel as rejected_invalid too.
    assert_eq!(unix_source.rejected_invalid, 2);
    assert_eq!(unix_source.submitted, unix_source.funnel_total());

    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let batch = report.record.replay(&mut fresh).unwrap();
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        batch.metrics().fingerprint(),
        "unix-socket session must replay bit-identically"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
