//! Calibration probe: per-scenario utilization/violations under a greedy scheduler.
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::*;

struct Greedy;
impl Scheduler for Greedy {
    fn name(&self) -> &str {
        "greedy"
    }
    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut d = Decision::none();
        let mut ready: Vec<_> = view.ready_tasks().collect();
        ready.sort_by_key(|t| (t.deadline(), t.id()));
        let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        idle.reverse();
        for t in ready {
            let Some(acc) = idle.pop() else { break };
            d.assignments.push(Assignment::single(t.id(), acc));
        }
        d
    }
}

fn main() {
    for preset in [
        PlatformPreset::Hetero4kWs1Os2,
        PlatformPreset::Homo4kWs2,
        PlatformPreset::Hetero8kWs1Os2,
    ] {
        println!("== {} ==", preset.name());
        for kind in ScenarioKind::all() {
            let platform = Platform::preset(preset);
            let scenario = Scenario::new(kind, CascadeProbability::default_paper());
            let mut s = Greedy;
            let m = SimulationBuilder::new(platform, scenario)
                .duration(Millis::new(2000))
                .seed(1)
                .run(&mut s)
                .unwrap()
                .into_metrics();
            println!(
                "  {:15} util={:.3} meanDLV={:.3} energyN={:.3} layers={}",
                kind.name(),
                m.mean_utilization(),
                m.mean_violation_rate(),
                m.mean_normalized_energy(),
                m.layer_executions
            );
            for (_, s) in m.models() {
                println!(
                    "      {:18} rel={:4} onT={:4} late={:3} viol={:.3}",
                    s.model_name,
                    s.released,
                    s.completed_on_time,
                    s.completed_late,
                    s.raw_violation_rate().unwrap_or(0.0)
                );
            }
        }
    }
}
