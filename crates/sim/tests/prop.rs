//! Property-based tests on the simulator: deterministic coins, time
//! arithmetic, and end-to-end conservation invariants under random seeds
//! and horizons.

use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{
    Assignment, Decision, DeterministicCoin, Metrics, Millis, Scheduler, SimTime,
    SimulationBuilder, SystemView,
};
use proptest::prelude::*;

struct Greedy;
impl Scheduler for Greedy {
    fn name(&self) -> &str {
        "greedy"
    }
    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut d = Decision::none();
        let mut ready: Vec<_> = view.ready_tasks().collect();
        ready.sort_by_key(|t| (t.deadline(), t.id()));
        let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        for t in ready {
            let Some(acc) = idle.pop() else { break };
            d.assignments.push(Assignment::single(t.id(), acc));
        }
        d
    }
}

fn run(kind: ScenarioKind, cascade: f64, seed: u64, ms: u64) -> Metrics {
    let scenario = Scenario::new(kind, CascadeProbability::new(cascade).unwrap());
    let mut s = Greedy;
    SimulationBuilder::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario)
        .duration(Millis::new(ms))
        .seed(seed)
        .run(&mut s)
        .unwrap()
        .into_metrics()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: outcomes partition released frames; energy is
    /// non-negative; utilisation is a fraction — for arbitrary seeds,
    /// cascade probabilities, and horizons.
    #[test]
    fn outcome_conservation(
        seed in 0u64..1_000,
        cascade in 0.0f64..1.0,
        ms in 120u64..600,
    ) {
        let m = run(ScenarioKind::VrGaming, cascade, seed, ms);
        for (_, s) in m.models() {
            prop_assert!(s.completed_on_time + s.completed_late + s.dropped <= s.released,
                "{}: outcome counts exceed releases", s.model_name);
            prop_assert!(s.energy_pj >= 0.0);
            prop_assert!(s.violated() <= s.released);
        }
        prop_assert!((0.0..=1.0).contains(&m.mean_utilization()));
        prop_assert_eq!(m.invalid_decisions, 0);
    }

    /// Cascade probability monotonicity: more cascades → at least as many
    /// released child frames (same seed ⇒ coupled coin draws).
    #[test]
    fn cascades_monotone_in_probability(seed in 0u64..200) {
        let lo = run(ScenarioKind::ArCall, 0.2, seed, 800);
        let hi = run(ScenarioKind::ArCall, 0.9, seed, 800);
        let gnmt = |m: &Metrics| {
            m.models()
                .find(|(_, s)| s.model_name == "GNMT")
                .map(|(_, s)| s.released + s.censored)
                .unwrap_or(0)
        };
        prop_assert!(gnmt(&hi) >= gnmt(&lo), "lo {} hi {}", gnmt(&lo), gnmt(&hi));
    }

    /// The deterministic coin honours probability bounds exactly at 0 and 1
    /// and is pure.
    #[test]
    fn coin_is_pure_and_bounded(
        seed in any::<u64>(),
        pl in 0usize..64,
        node in 0usize..64,
        frame in 0u64..10_000,
        gate in 0u64..4_096,
        p in 0.0f64..1.0,
    ) {
        let coin = DeterministicCoin::new(seed);
        prop_assert_eq!(
            coin.decide(pl, node, frame, gate, p),
            coin.decide(pl, node, frame, gate, p)
        );
        prop_assert!(!coin.decide(pl, node, frame, gate, 0.0));
        prop_assert!(coin.decide(pl, node, frame, gate, 1.0));
        let u = coin.uniform(pl, node, frame, gate);
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// SimTime arithmetic: saturating subtraction and signed deltas agree.
    #[test]
    fn simtime_arithmetic(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let ta = SimTime::from_ns(a);
        let tb = SimTime::from_ns(b);
        let delta = ta.signed_delta_ns(tb);
        prop_assert_eq!(delta, i128::from(a) - i128::from(b));
        prop_assert_eq!(ta.saturating_sub(tb).as_ns(), a.saturating_sub(b));
        prop_assert_eq!((ta + tb).as_ns(), a + b);
    }

    /// from_ns_f64 rounds up and never loses time.
    #[test]
    fn simtime_float_rounding(x in 0.0f64..1e15) {
        let t = SimTime::from_ns_f64(x);
        prop_assert!(t.as_ns_f64() >= x);
        prop_assert!(t.as_ns_f64() - x < 1.0 + x * 1e-9);
    }
}
