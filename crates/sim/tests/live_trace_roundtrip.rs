//! Live-session trace round trips: a session's recorded `ArrivalTrace`
//! survives CSV serialization — record → save → load → replay is
//! bit-identical to replaying the in-memory trace (and to the live run
//! itself) — including arrivals that land exactly on phase-boundary,
//! drain, and horizon instants.

use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{
    ArrivalTrace, Assignment, Decision, LiveSession, LiveSessionBuilder, Scheduler, SimTime,
    SystemView,
};

#[derive(Default)]
struct Greedy;
impl Scheduler for Greedy {
    fn name(&self) -> &str {
        "greedy"
    }
    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut d = Decision::none();
        let mut ready: Vec<_> = view.ready_tasks().collect();
        ready.sort_by_key(|t| (t.deadline(), t.id()));
        let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        for t in ready {
            let Some(acc) = idle.pop() else { break };
            d.assignments.push(Assignment::single(t.id(), acc));
        }
        d
    }
}

fn scenario(kind: ScenarioKind) -> Scenario {
    Scenario::new(kind, CascadeProbability::default_paper())
}

fn start_session(seed: u64) -> LiveSession {
    LiveSessionBuilder::new(
        Platform::preset(PlatformPreset::Hetero4kWs1Os2),
        scenario(ScenarioKind::ArCall),
    )
    .seed(seed)
    .start(Box::new(Greedy))
    .unwrap()
}

/// Admits a spread of traffic, hot-swaps once (so the trace contains
/// arrivals landing *exactly on* the phase-boundary instant via the
/// transition-window clamp), and drains.
fn run_live(seed: u64) -> (u64, dream_sim::LiveSessionRecord) {
    let mut s = start_session(seed);
    let keys: Vec<_> = s
        .workload()
        .nodes()
        .filter(|n| n.key().phase == 0 && n.parent().is_none())
        .map(|n| n.key())
        .collect();
    let mut t = 0u64;
    for i in 0..90u64 {
        let k = keys[(i % keys.len() as u64) as usize];
        t += 800_000 + seed * 1_000 + (i % 5) * 90_000;
        s.admit(k.pipeline, k.node, SimTime::from_ns(t)).unwrap();
        if i % 20 == 0 {
            s.step_until(SimTime::from_ns(t));
        }
    }
    s.step_until(SimTime::from_ns(t));
    let boundary = s
        .swap_scenario(scenario(ScenarioKind::ArSocial), s.next_stamp())
        .unwrap();
    let new_keys: Vec<_> = s
        .workload()
        .nodes()
        .filter(|n| n.key().phase == 1 && n.parent().is_none())
        .map(|n| n.key())
        .collect();
    // Stamps before the boundary clamp *onto* it: these arrivals land
    // exactly on the phase-start instant.
    let clamped = s
        .admit(new_keys[0].pipeline, new_keys[0].node, s.next_stamp())
        .unwrap();
    assert_eq!(
        clamped.at, boundary,
        "transition stamps clamp to the boundary"
    );
    for i in 0..60u64 {
        let k = new_keys[(i % new_keys.len() as u64) as usize];
        s.admit(k.pipeline, k.node, boundary + SimTime::from_ns(i * 600_000))
            .unwrap();
    }
    let (outcome, record) = s.finish().unwrap();
    (outcome.metrics().fingerprint(), record)
}

#[test]
fn recorded_live_trace_round_trips_through_csv() {
    for seed in [3, 17] {
        let (live_fp, record) = run_live(seed);

        // Direct replay of the in-memory trace.
        let direct = record.replay(&mut Greedy).unwrap();
        assert_eq!(direct.metrics().fingerprint(), live_fp);

        // record → save CSV → load → replay.
        let dir = std::env::temp_dir().join(format!("dream-live-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("session-{seed}.csv"));
        std::fs::write(&path, record.trace().to_csv()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let loaded = ArrivalTrace::parse("live-session", &text).unwrap();
        assert_eq!(&loaded, record.trace(), "CSV round trip is lossless");
        assert_eq!(loaded.digest(), record.trace().digest());
        let reloaded = record.replay_trace(loaded, &mut Greedy).unwrap();
        assert_eq!(
            reloaded.metrics().fingerprint(),
            direct.metrics().fingerprint(),
            "seed {seed}: loaded-CSV replay must equal in-memory replay"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}

/// Arrivals at exactly the drain/horizon instant are censored by
/// construction (PR 2 boundary semantics): appending one to the saved
/// CSV neither fails validation nor changes the replayed metrics.
#[test]
fn arrival_exactly_at_horizon_is_ignored_on_replay() {
    let (live_fp, record) = run_live(23);
    let horizon = record.horizon();
    let mut csv = record.trace().to_csv();
    // The recorded trace never contains an at-horizon entry…
    assert!(record
        .trace()
        .keys()
        .all(|k| record.trace().times(k).iter().all(|&t| t < horizon)));
    // …but a log captured externally may: the last phase's roots, stamped
    // exactly at the horizon instant.
    let last_phase = record.phases().len() - 1;
    csv.push_str(&format!("{},{last_phase},0,0\n", horizon.as_ns()));
    let loaded = ArrivalTrace::parse("with-horizon-entry", &csv).unwrap();
    assert_eq!(loaded.len(), record.trace().len() + 1);
    let replayed = record.replay_trace(loaded, &mut Greedy).unwrap();
    assert_eq!(
        replayed.metrics().fingerprint(),
        live_fp,
        "an at-horizon arrival must censor naturally, not perturb metrics"
    );
}

/// An arrival landing exactly on a phase-flush (swap-boundary) instant
/// belongs to the *new* phase and replays losslessly — the half-open
/// `[start, end)` windows make the instant unambiguous.
#[test]
fn boundary_instant_arrivals_replay_losslessly() {
    let (live_fp, record) = run_live(41);
    let boundary = record.phases()[1].0;
    let at_boundary: usize = record
        .trace()
        .keys()
        .filter(|k| k.phase == 1)
        .map(|k| {
            record
                .trace()
                .times(k)
                .iter()
                .filter(|&&t| t == boundary)
                .count()
        })
        .sum();
    assert!(
        at_boundary >= 1,
        "the session admitted arrivals exactly on the boundary instant"
    );
    let direct = record.replay(&mut Greedy).unwrap();
    assert_eq!(direct.metrics().fingerprint(), live_fp);
}
