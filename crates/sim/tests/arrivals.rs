//! Arrival-seam properties: the trace source replays the periodic
//! generator bit-for-bit, stochastic sources are seed-deterministic, and
//! the censoring boundary conditions (phase end, horizon) balance.

use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{
    ArrivalSource, ArrivalTrace, Assignment, Decision, Metrics, MmppArrivals, PeriodicArrivals,
    PoissonArrivals, Scheduler, SimError, SimTime, SimulationBuilder, SystemView, TraceArrivals,
};
use proptest::prelude::*;

struct Greedy;
impl Scheduler for Greedy {
    fn name(&self) -> &str {
        "greedy"
    }
    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut d = Decision::none();
        let mut ready: Vec<_> = view.ready_tasks().collect();
        ready.sort_by_key(|t| (t.deadline(), t.id()));
        let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        for t in ready {
            let Some(acc) = idle.pop() else { break };
            d.assignments.push(Assignment::single(t.id(), acc));
        }
        d
    }
}

fn builder(kind: ScenarioKind, seed: u64, horizon: SimTime) -> SimulationBuilder {
    let scenario = Scenario::new(kind, CascadeProbability::default_paper());
    SimulationBuilder::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario)
        .duration(horizon)
        .seed(seed)
}

fn run(b: SimulationBuilder) -> Metrics {
    let mut s = Greedy;
    b.run(&mut s).unwrap().into_metrics()
}

/// Records `source` offline against the builder's workload and returns
/// the metrics of replaying it through [`TraceArrivals`].
fn run_recorded(
    kind: ScenarioKind,
    seed: u64,
    horizon: SimTime,
    source: &mut dyn ArrivalSource,
) -> Metrics {
    let ws = builder(kind, seed, horizon).build_workload().unwrap();
    let trace = ArrivalTrace::record("recorded", &ws, horizon, seed, source);
    run(builder(kind, seed, horizon).arrivals(TraceArrivals::new(trace)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole property (a): a periodic trace replayed through the trace
    /// source is bit-identical to the built-in periodic generator — same
    /// arrival times, same frame numbering, same coin draws, same metrics.
    #[test]
    fn periodic_trace_replay_matches_builtin(
        seed in 0u64..500,
        ms in 150u64..400,
        kind in prop_oneof![
            Just(ScenarioKind::ArCall),
            Just(ScenarioKind::VrGaming),
            Just(ScenarioKind::DroneOutdoor),
        ],
    ) {
        let horizon = SimTime::from(dream_sim::Millis::new(ms));
        let direct = run(builder(kind, seed, horizon));
        let replayed = run_recorded(kind, seed, horizon, &mut PeriodicArrivals);
        prop_assert_eq!(direct.fingerprint(), replayed.fingerprint());
    }

    /// Tentpole property (b): stochastic sources are seed-deterministic —
    /// the same seed realizes the identical stream (and metrics), and the
    /// round-trip through a recorded trace reproduces it exactly.
    #[test]
    fn stochastic_sources_are_seed_deterministic(seed in 0u64..500) {
        let horizon = SimTime::from(dream_sim::Millis::new(300));
        let poisson = || PoissonArrivals::new(1.25);
        let a = run(builder(ScenarioKind::ArCall, seed, horizon).arrivals(poisson()));
        let b = run(builder(ScenarioKind::ArCall, seed, horizon).arrivals(poisson()));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        let replayed = run_recorded(ScenarioKind::ArCall, seed, horizon, &mut poisson());
        prop_assert_eq!(a.fingerprint(), replayed.fingerprint());

        let mmpp = || MmppArrivals::new(0.8, 3.0, 0.15, 0.3);
        let c = run(builder(ScenarioKind::ArCall, seed, horizon).arrivals(mmpp()));
        let d = run(builder(ScenarioKind::ArCall, seed, horizon).arrivals(mmpp()));
        prop_assert_eq!(c.fingerprint(), d.fingerprint());
        // Different processes realize different traffic.
        prop_assert!(a.fingerprint() != c.fingerprint());
    }
}

#[test]
fn different_seeds_realize_different_poisson_streams() {
    let horizon = SimTime::from(dream_sim::Millis::new(300));
    let a = run(builder(ScenarioKind::ArCall, 1, horizon).arrivals(PoissonArrivals::new(1.0)));
    let b = run(builder(ScenarioKind::ArCall, 2, horizon).arrivals(PoissonArrivals::new(1.0)));
    assert_ne!(a.fingerprint(), b.fingerprint());
}

/// Expected periodic arrival/censoring counts for a root node with
/// period `p` over `[0, stop)` (arrivals strictly before `stop`,
/// deadlines counted iff `<= stop`).
fn expected_counts(p: u64, stop: u64) -> (u64, u64) {
    let arrivals = stop.div_ceil(p);
    let censored = (0..arrivals).filter(|k| (k + 1) * p > stop).count() as u64;
    (arrivals, censored)
}

/// Censoring boundary: horizon an exact multiple of a root's period. The
/// boundary frame's deadline == horizon must be *counted* (inclusive),
/// arrivals stop strictly before the horizon, and released + censored
/// accounts for every arrival.
#[test]
fn censoring_balances_at_exact_horizon() {
    const SKIPNET_PERIOD: u64 = 33_333_333;
    let horizon = SimTime::from_ns(12 * SKIPNET_PERIOD);
    let b = builder(ScenarioKind::ArCall, 3, horizon);
    let ws = b.build_workload().unwrap();
    let m = run(b);
    for node in ws.nodes().filter(|n| n.parent().is_none()) {
        let stats = m.model(node.key()).unwrap();
        let (arrivals, censored) = expected_counts(node.period().as_ns(), horizon.as_ns());
        assert_eq!(
            stats.released + stats.censored,
            arrivals,
            "{}: every arrival is released or censored",
            stats.model_name
        );
        assert_eq!(stats.censored, censored, "{}", stats.model_name);
    }
    // SkipNet's period divides the horizon: its boundary frame (deadline
    // exactly at the horizon) is counted, so nothing is censored.
    let skipnet = m.models().find(|(_, s)| s.model_name == "SkipNet").unwrap();
    assert_eq!(skipnet.1.released, 12);
    assert_eq!(skipnet.1.censored, 0);
    // KWS (15 fps) does not divide it: its last frame is censored.
    let kws = m
        .models()
        .find(|(_, s)| s.model_name == "KWS_res8")
        .unwrap();
    assert_eq!(kws.1.censored, 1);
}

/// One tick short of the multiple: the boundary frame's deadline now
/// falls past the horizon, flipping it from counted to censored.
#[test]
fn censoring_balances_just_inside_horizon() {
    const SKIPNET_PERIOD: u64 = 33_333_333;
    let horizon = SimTime::from_ns(12 * SKIPNET_PERIOD - 1);
    let b = builder(ScenarioKind::ArCall, 3, horizon);
    let ws = b.build_workload().unwrap();
    let m = run(b);
    for node in ws.nodes().filter(|n| n.parent().is_none()) {
        let stats = m.model(node.key()).unwrap();
        let (arrivals, censored) = expected_counts(node.period().as_ns(), horizon.as_ns());
        assert_eq!(
            stats.released + stats.censored,
            arrivals,
            "{}",
            stats.model_name
        );
        assert_eq!(stats.censored, censored, "{}", stats.model_name);
    }
    let skipnet = m.models().find(|(_, s)| s.model_name == "SkipNet").unwrap();
    assert_eq!(skipnet.1.released, 11);
    assert_eq!(skipnet.1.censored, 1);
}

/// Censoring boundary at a phase end: the phase switches exactly at a
/// period multiple, so the boundary frame's deadline == phase end is
/// counted while arrivals stop strictly before it.
#[test]
fn censoring_balances_at_exact_phase_end() {
    const SKIPNET_PERIOD: u64 = 33_333_333;
    let boundary = SimTime::from_ns(12 * SKIPNET_PERIOD);
    let horizon = SimTime::from_ns(24 * SKIPNET_PERIOD);
    let p = CascadeProbability::default_paper();
    let make = || {
        SimulationBuilder::new(
            Platform::preset(PlatformPreset::Hetero4kWs1Os2),
            Scenario::new(ScenarioKind::ArCall, p),
        )
        .add_phase(boundary, Scenario::new(ScenarioKind::DroneOutdoor, p))
        .duration(horizon)
        .seed(4)
    };
    let ws = make().build_workload().unwrap();
    let m = run(make());
    for node in ws
        .nodes()
        .filter(|n| n.key().phase == 0 && n.parent().is_none())
    {
        let stats = m.model(node.key()).unwrap();
        let (arrivals, censored) = expected_counts(node.period().as_ns(), boundary.as_ns());
        assert_eq!(
            stats.released + stats.censored,
            arrivals,
            "{}: phase-0 arrivals all accounted",
            stats.model_name
        );
        assert_eq!(stats.censored, censored, "{}", stats.model_name);
    }
    let skipnet = m
        .models()
        .find(|(k, s)| k.phase == 0 && s.model_name == "SkipNet")
        .unwrap();
    assert_eq!(skipnet.1.released, 12, "deadline == phase end is counted");
    assert_eq!(skipnet.1.censored, 0);
}

#[test]
fn trace_validation_rejects_inconsistent_traces() {
    let horizon = SimTime::from(dream_sim::Millis::new(200));
    // Unknown pipeline.
    let t = ArrivalTrace::parse("bad", "0,0,9,0").unwrap();
    let err = builder(ScenarioKind::ArCall, 0, horizon)
        .arrivals(TraceArrivals::new(t))
        .run(&mut Greedy)
        .unwrap_err();
    assert!(matches!(err, SimError::InvalidTrace { .. }), "{err}");
    // Cascade child (GNMT is node 1 of pipeline 0).
    let t = ArrivalTrace::parse("child", "0,0,0,1").unwrap();
    let err = builder(ScenarioKind::ArCall, 0, horizon)
        .arrivals(TraceArrivals::new(t))
        .run(&mut Greedy)
        .unwrap_err();
    assert!(matches!(err, SimError::InvalidTrace { .. }), "{err}");
    // Entry outside its phase window (phase 0 ends at the horizon here,
    // so declare a nonexistent later phase instead: also invalid).
    let t = ArrivalTrace::parse("phase", "0,3,0,0").unwrap();
    let err = builder(ScenarioKind::ArCall, 0, horizon)
        .arrivals(TraceArrivals::new(t))
        .run(&mut Greedy)
        .unwrap_err();
    assert!(matches!(err, SimError::InvalidTrace { .. }), "{err}");
}

#[test]
fn trace_entries_beyond_horizon_are_ignored() {
    let horizon = SimTime::from(dream_sim::Millis::new(100));
    // Two in-window arrivals for SkipNet plus one far past the horizon.
    let text = "0,0,1,0\n50000000,0,1,0\n999000000,0,1,0";
    let trace = ArrivalTrace::parse("t", text).unwrap();
    let m = run(builder(ScenarioKind::ArCall, 0, horizon).arrivals(TraceArrivals::new(trace)));
    let skipnet = m.models().find(|(_, s)| s.model_name == "SkipNet").unwrap();
    assert_eq!(skipnet.1.released + skipnet.1.censored, 2);
    // KWS got no arrivals at all: open-loop traffic is per-key.
    let kws = m
        .models()
        .find(|(_, s)| s.model_name == "KWS_res8")
        .unwrap();
    assert_eq!(kws.1.released + kws.1.censored, 0);
}

#[test]
fn open_loop_traffic_reports_sojourn_percentiles() {
    let horizon = SimTime::from(dream_sim::Millis::new(400));
    let m = run(builder(ScenarioKind::ArCall, 7, horizon).arrivals(PoissonArrivals::new(1.5)));
    let p50 = m.sojourn_percentile_ms(0.50).unwrap();
    let p95 = m.sojourn_percentile_ms(0.95).unwrap();
    let p99 = m.sojourn_percentile_ms(0.99).unwrap();
    assert!(p50 > 0.0);
    assert!(p50 <= p95 && p95 <= p99, "{p50} <= {p95} <= {p99}");
    assert!(m.sojourn_percentile_ms(0.0).is_none());
    assert!(m.sojourn_percentile_ms(1.5).is_none());
    // Per-model percentiles are bounded by the pooled extremes.
    for (_, s) in m.models() {
        if let Some(mp99) = s.sojourn_percentile_ms(0.99) {
            assert!(mp99 <= m.sojourn_percentile_ms(1.0).unwrap());
        }
    }
}
