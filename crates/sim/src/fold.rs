//! The canonical float fold.
//!
//! Every cost/to-go sum on the replay-sensitive path must run one
//! operation sequence so that cached sums, live replays, and
//! thread-count-varied runs produce bit-identical `f64`s. That sequence
//! is the one `<f64 as Sum>` defines: a left-to-right fold seeded with
//! `-0.0` (the additive identity that keeps empty sums bit-identical to
//! `iter.sum::<f64>()` — a `+0.0` seed differs on the empty case).
//!
//! [`canonical_sum`] is that fold as a named function. Ad-hoc float folds
//! elsewhere in the deterministic crates are flagged by `detlint`'s
//! `float-fold` rule; routing them through this helper both documents the
//! contract and keeps the operation order in exactly one place.

/// Sums `it` with the canonical fold: left-to-right `+=` seeded with
/// `-0.0`, bit-identical to `it.sum::<f64>()` on every input (including
/// the empty one, whose sum is `-0.0`).
// detlint: canonical-fold -- this IS the canonical fold; every other float fold replays it
pub fn canonical_sum<I: IntoIterator<Item = f64>>(it: I) -> f64 {
    let mut acc = -0.0f64;
    for x in it {
        acc += x;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determ::DeterministicCoin;

    #[test]
    fn empty_sum_is_negative_zero() {
        let s = canonical_sum(std::iter::empty());
        assert_eq!(s.to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            s.to_bits(),
            std::iter::empty::<f64>().sum::<f64>().to_bits()
        );
    }

    /// Bit-identity with `Iterator::sum` under wild magnitudes and signs,
    /// where any reassociation or different seed would show up.
    #[test]
    fn bit_identical_to_iterator_sum() {
        let coin = DeterministicCoin::new(0xD7EA_F01D);
        for len in 0usize..64 {
            let xs: Vec<f64> = (0..len)
                .map(|i| {
                    // Spread signs and exponents wide: any reassociation
                    // or different seed changes low mantissa bits here.
                    let unit = coin.uniform(9, len, i as u64, 0) - 0.5;
                    let exp = (coin.uniform(9, len, i as u64, 1) * 600.0) as i32 - 300;
                    unit * (2.0f64).powi(exp)
                })
                .collect();
            let reference: f64 = xs.iter().copied().sum();
            let canonical = canonical_sum(xs.iter().copied());
            assert_eq!(
                canonical.to_bits(),
                reference.to_bits(),
                "len={len}: {canonical:e} vs {reference:e}"
            );
        }
    }
}
