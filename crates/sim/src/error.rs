use std::error::Error;
use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulation was configured with a zero duration.
    ZeroDuration,
    /// A workload phase starts at or after the end of the simulation, or
    /// phases are not strictly ordered in time.
    InvalidPhase {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An arrival trace is inconsistent with the workload (unknown key,
    /// non-root target, entry outside its phase window) or malformed.
    InvalidTrace {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A fault plan is inconsistent with the platform (accelerator index
    /// out of range, slowdown factor below 1) or malformed.
    InvalidFault {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A prebuilt [`WorkloadSet`](crate::WorkloadSet) handed to
    /// [`SimulationBuilder::prebuilt_workload`](crate::SimulationBuilder::prebuilt_workload)
    /// does not match the builder's configuration (different platform
    /// width or phase schedule).
    WorkloadMismatch {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// Propagated model-construction error.
    Model(dream_models::ModelError),
    /// Propagated cost-model error.
    Cost(dream_cost::CostError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroDuration => write!(f, "simulation duration must be positive"),
            SimError::InvalidPhase { reason } => write!(f, "invalid workload phase: {reason}"),
            SimError::InvalidTrace { reason } => write!(f, "invalid arrival trace: {reason}"),
            SimError::InvalidFault { reason } => write!(f, "invalid fault plan: {reason}"),
            SimError::WorkloadMismatch { reason } => {
                write!(f, "prebuilt workload mismatch: {reason}")
            }
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Cost(e) => write!(f, "cost model error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Cost(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dream_models::ModelError> for SimError {
    fn from(e: dream_models::ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<dream_cost::CostError> for SimError {
    fn from(e: dream_cost::CostError) -> Self {
        SimError::Cost(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Model(dream_models::ModelError::EmptyModel { name: "m".into() });
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        assert!(SimError::ZeroDuration.source().is_none());
    }
}
