use std::collections::BTreeMap;

use crate::fold::canonical_sum;
use crate::workload::ModelKey;
use crate::SimTime;

/// Number of buckets in a [`Histogram`]: bucket 0 holds the value 0,
/// bucket `b` (1..=64) holds values in `[2^(b-1), 2^b)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A mergeable log2-bucketed histogram of `u64` samples (nanoseconds in
/// practice).
///
/// Recording is O(1) (a `leading_zeros` and an increment), the memory
/// bound is fixed ([`HISTOGRAM_BUCKETS`] counters), and two histograms
/// merge by adding counts — which is what lets per-model histograms pool
/// into one view, per-snapshot histograms publish over the wire, and
/// per-worker histograms aggregate into a fleet view, all without
/// shipping raw samples. Quantiles resolve to the containing bucket's
/// **upper bound** (nearest-rank), so a reported quantile is always `>=`
/// the exact sample quantile and at most 2× it.
///
/// Like the raw sojourn samples, histograms are **excluded** from
/// [`Metrics::fingerprint`] — they are an observability surface, never a
/// decision input (detlint's D4 enforces the latter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The largest value bucket `idx` can hold (`u64::MAX` for the last).
    pub fn bucket_upper_bound(idx: usize) -> u64 {
        match idx {
            0 => 0,
            64.. => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Resets every count (reusable scratch).
    pub fn clear(&mut self) {
        self.counts = [0; HISTOGRAM_BUCKETS];
        self.total = 0;
    }

    /// The nearest-rank `q`-quantile (`0 < q <= 1`) as the containing
    /// bucket's upper bound. `None` when empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 || !(0.0 < q && q <= 1.0) {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(idx));
            }
        }
        // Unreachable: counts sum to total and rank <= total.
        Some(u64::MAX)
    }

    /// [`quantile`](Self::quantile) in milliseconds (samples are ns).
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.quantile(q).map(|ns| ns as f64 / 1.0e6)
    }

    /// The non-empty buckets as `(bucket index, count)` pairs, ascending —
    /// the sparse form wire snapshots carry.
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuilds a histogram from its [`sparse`](Self::sparse) form.
    /// Out-of-range bucket indices saturate into the last bucket (a
    /// hostile or future peer cannot make this panic).
    pub fn from_sparse(pairs: &[(u32, u64)]) -> Self {
        let mut h = Histogram::new();
        for &(idx, count) in pairs {
            let idx = (idx as usize).min(HISTOGRAM_BUCKETS - 1);
            h.counts[idx] += count;
            h.total += count;
        }
        h
    }
}

/// Per-model outcome counters over the measurement horizon.
///
/// "Counted" frames are those whose deadline falls inside both the
/// simulation horizon and their workload phase; frames cut off at either
/// boundary are *censored* and excluded, so rates are unbiased.
#[derive(Debug, Clone)]
pub struct ModelStats {
    /// The deployed network's name.
    pub model_name: &'static str,
    /// Target FPS.
    pub fps: f64,
    /// Counted frames released.
    pub released: u64,
    /// Frames excluded from metrics (deadline beyond the horizon/phase).
    pub censored: u64,
    /// Counted frames that completed by their deadline.
    pub completed_on_time: u64,
    /// Counted frames that completed after their deadline.
    pub completed_late: u64,
    /// Counted frames dropped by the scheduler.
    pub dropped: u64,
    /// Frames flushed by a phase change (censored by construction).
    pub flushed: u64,
    /// Energy consumed by counted frames (pJ).
    pub energy_pj: f64,
    /// Worst-case energy bound: counted frames × worst per-frame energy.
    pub worst_energy_pj: f64,
    /// Executions per supernet variant (index = variant id).
    pub variant_runs: Vec<u64>,
    /// Total queueing delay accumulated by counted frames (ns).
    pub wait_ns: u64,
    /// Per-request sojourn time of every counted completion, in ns:
    /// originating frame arrival → this model's completion (end-to-end
    /// through the cascade for child models). Dropped and never-finished
    /// frames contribute no sample. Unordered; percentile accessors sort.
    pub sojourn_ns: Vec<u64>,
    /// Log2-bucketed histogram of the same sojourn samples — the bounded,
    /// mergeable form live snapshots and the wire publish. Kept by
    /// [`Metrics::clone_counters`] (fixed size); excluded from the
    /// fingerprint like the raw samples.
    pub sojourn_hist: Histogram,
}

impl ModelStats {
    pub(crate) fn new(model_name: &'static str, fps: f64, variant_count: usize) -> Self {
        ModelStats {
            model_name,
            fps,
            released: 0,
            censored: 0,
            completed_on_time: 0,
            completed_late: 0,
            dropped: 0,
            flushed: 0,
            energy_pj: 0.0,
            worst_energy_pj: 0.0,
            variant_runs: vec![0; variant_count],
            wait_ns: 0,
            sojourn_ns: Vec::new(),
            sojourn_hist: Histogram::new(),
        }
    }

    /// Records one counted completion's sojourn time into both the raw
    /// sample buffer and the bounded histogram.
    pub(crate) fn record_sojourn(&mut self, ns: u64) {
        self.sojourn_ns.push(ns);
        self.sojourn_hist.record(ns);
    }

    /// Counted frames that violated their deadline: completed late, were
    /// dropped (per §4.2.1 drops count as violations), or never finished.
    pub fn violated(&self) -> u64 {
        self.released.saturating_sub(self.completed_on_time)
    }

    /// Deadline-violation rate over counted frames (Algorithm 2 line 6),
    /// with the paper's `1/(2·total)` floor when no violation occurred
    /// (lines 7–8). Returns `None` when no frames were counted.
    pub fn violation_rate(&self) -> Option<f64> {
        if self.released == 0 {
            return None;
        }
        let v = self.violated();
        if v == 0 {
            Some(1.0 / (2.0 * self.released as f64))
        } else {
            Some(v as f64 / self.released as f64)
        }
    }

    /// Raw violation rate without the zero floor (used for violation-rate
    /// reporting, e.g. Figure 2).
    pub fn raw_violation_rate(&self) -> Option<f64> {
        if self.released == 0 {
            None
        } else {
            Some(self.violated() as f64 / self.released as f64)
        }
    }

    /// The `q`-quantile (nearest-rank, `0 < q <= 1`) of this model's
    /// per-request sojourn times, in milliseconds. `None` when no counted
    /// frame completed or `q` is out of range.
    pub fn sojourn_percentile_ms(&self, q: f64) -> Option<f64> {
        self.sojourn_percentiles_ms(&[q])[0]
    }

    /// Several sojourn quantiles at once, copying and sorting the sample
    /// buffer a **single** time (the former single-quantile accessor
    /// cloned and re-sorted per call — 3× per p50/p95/p99 triple).
    pub fn sojourn_percentiles_ms(&self, qs: &[f64]) -> Vec<Option<f64>> {
        let mut samples = self.sojourn_ns.clone();
        samples.sort_unstable();
        qs.iter()
            .map(|&q| sorted_percentile_ms(&samples, q))
            .collect()
    }

    /// Energy normalised to the worst case (Algorithm 2 line 5). `None`
    /// when no frames were counted.
    pub fn normalized_energy(&self) -> Option<f64> {
        if self.released == 0 || self.worst_energy_pj <= 0.0 {
            None
        } else {
            Some(self.energy_pj / self.worst_energy_pj)
        }
    }
}

/// Nearest-rank quantile over an already-sorted sample buffer, in
/// milliseconds.
fn sorted_percentile_ms(sorted: &[u64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0 < q && q <= 1.0) {
        return None;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1] as f64 / 1.0e6)
}

/// Aggregated simulation results.
#[derive(Debug, Clone)]
pub struct Metrics {
    horizon: SimTime,
    stats: BTreeMap<ModelKey, ModelStats>,
    /// Number of scheduler invocations.
    pub scheduler_invocations: u64,
    /// Decision entries the engine rejected (busy accelerator, unknown
    /// task, illegal switch, …). Always zero for well-behaved schedulers.
    pub invalid_decisions: u64,
    /// Layers executed.
    pub layer_executions: u64,
    /// Context switches charged.
    pub context_switches: u64,
    /// Per-accelerator busy time (ns).
    pub acc_busy_ns: Vec<u64>,
    /// Events processed.
    pub events_processed: u64,
    /// Fault events applied (stall/fail/slowdown starts). **Excluded from
    /// [`fingerprint`](Self::fingerprint)** — fingerprints compare
    /// degraded runs against the same schedule replayed, and the schedule
    /// itself is pinned by [`FaultPlan::digest`](crate::FaultPlan::digest).
    pub faults_injected: u64,
    /// In-flight layers aborted and requeued by permanent accelerator
    /// failures. Fingerprint-excluded (diagnostic).
    pub fault_requeues: u64,
    /// Counted frames that missed their deadline (completed late or were
    /// dropped) while at least one fault was in effect — the
    /// degradation-attribution axis the chaos soak compares schedulers on.
    /// Fingerprint-excluded (diagnostic).
    pub deadline_miss_under_faults: u64,
}

impl Metrics {
    pub(crate) fn new(horizon: SimTime, acc_count: usize) -> Self {
        Metrics {
            horizon,
            stats: BTreeMap::new(),
            scheduler_invocations: 0,
            invalid_decisions: 0,
            layer_executions: 0,
            context_switches: 0,
            acc_busy_ns: vec![0; acc_count],
            events_processed: 0,
            faults_injected: 0,
            fault_requeues: 0,
            deadline_miss_under_faults: 0,
        }
    }

    pub(crate) fn entry(
        &mut self,
        key: ModelKey,
        name: &'static str,
        fps: f64,
        variants: usize,
    ) -> &mut ModelStats {
        self.stats
            .entry(key)
            .or_insert_with(|| ModelStats::new(name, fps, variants))
    }

    pub(crate) fn get_mut(&mut self, key: ModelKey) -> Option<&mut ModelStats> {
        self.stats.get_mut(&key)
    }

    /// Re-pins the measurement horizon — used by a live session when a
    /// drain resolves the provisional open-ended horizon into the real
    /// one, so the finished metrics fingerprint the same window a batch
    /// replay of the session would.
    pub(crate) fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// The measurement horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Per-model stats in deterministic key order.
    pub fn models(&self) -> impl Iterator<Item = (&ModelKey, &ModelStats)> {
        self.stats.iter()
    }

    /// Stats for one model.
    pub fn model(&self, key: ModelKey) -> Option<&ModelStats> {
        self.stats.get(&key)
    }

    /// Number of tracked models.
    pub fn model_count(&self) -> usize {
        self.stats.len()
    }

    /// Sum of per-model violation rates (Algorithm 2 line 10), including
    /// the zero-violation floor. Models with no counted frames are skipped.
    pub fn overall_violation_rate(&self) -> f64 {
        canonical_sum(self.stats.values().filter_map(ModelStats::violation_rate))
    }

    /// Sum of per-model raw violation rates (no floor), for violation-rate
    /// plots.
    pub fn overall_raw_violation_rate(&self) -> f64 {
        canonical_sum(
            self.stats
                .values()
                .filter_map(ModelStats::raw_violation_rate),
        )
    }

    /// Mean of per-model raw violation rates (a platform-comparable
    /// number in `[0, 1]`).
    pub fn mean_violation_rate(&self) -> f64 {
        let rates: Vec<f64> = self
            .stats
            .values()
            .filter_map(ModelStats::raw_violation_rate)
            .collect();
        if rates.is_empty() {
            0.0
        } else {
            canonical_sum(rates.iter().copied()) / rates.len() as f64
        }
    }

    /// Sum of per-model normalised energies (Algorithm 2 line 11).
    pub fn overall_normalized_energy(&self) -> f64 {
        canonical_sum(
            self.stats
                .values()
                .filter_map(ModelStats::normalized_energy),
        )
    }

    /// Mean of per-model normalised energies (platform-comparable, `[0,1]`).
    pub fn mean_normalized_energy(&self) -> f64 {
        let es: Vec<f64> = self
            .stats
            .values()
            .filter_map(ModelStats::normalized_energy)
            .collect();
        if es.is_empty() {
            0.0
        } else {
            canonical_sum(es.iter().copied()) / es.len() as f64
        }
    }

    /// The `q`-quantile (nearest-rank, `0 < q <= 1`) of per-request
    /// sojourn times pooled across every model, in milliseconds — the
    /// served-traffic latency axis (p50/p95/p99). `None` when no counted
    /// frame completed.
    pub fn sojourn_percentile_ms(&self, q: f64) -> Option<f64> {
        self.sojourn_percentiles_ms(&[q])[0]
    }

    /// Several pooled sojourn quantiles at once, sorting the pooled
    /// samples a single time (use this for p50/p95/p99 triples).
    pub fn sojourn_percentiles_ms(&self, qs: &[f64]) -> Vec<Option<f64>> {
        let mut pooled: Vec<u64> = self
            .stats
            .values()
            .flat_map(|s| s.sojourn_ns.iter().copied())
            .collect();
        pooled.sort_unstable();
        qs.iter()
            .map(|&q| sorted_percentile_ms(&pooled, q))
            .collect()
    }

    /// The sojourn histograms of every model merged into one pooled view —
    /// the bounded counterpart of [`sojourn_percentiles_ms`](Self::sojourn_percentiles_ms),
    /// and the summary live snapshots and the wire `Snapshot` reply carry.
    pub fn sojourn_histogram(&self) -> Histogram {
        let mut pooled = Histogram::new();
        for s in self.stats.values() {
            pooled.merge(&s.sojourn_hist);
        }
        pooled
    }

    /// Total energy consumed by counted frames, in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        canonical_sum(self.stats.values().map(|s| s.energy_pj)) / 1.0e9
    }

    /// A deterministic digest of every counter and energy value in the
    /// metrics (f64s hashed by bit pattern). Two runs produce the same
    /// fingerprint iff their metrics are bit-identical — the witness the
    /// determinism property tests and the `ExperimentGrid` thread-count
    /// equivalence check compare.
    ///
    /// The per-request sojourn samples are deliberately *not* part of the
    /// digest: the counters and energies fully pin down a run's outcome,
    /// and keeping the field set fixed keeps fingerprints comparable with
    /// values recorded before the samples existed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::Fnv64::new();
        let mut mix = |v: u64| h.mix(v);
        mix(self.horizon.as_ns());
        mix(self.scheduler_invocations);
        mix(self.invalid_decisions);
        mix(self.layer_executions);
        mix(self.context_switches);
        mix(self.events_processed);
        for &busy in &self.acc_busy_ns {
            mix(busy);
        }
        for (key, s) in &self.stats {
            mix(key.phase as u64);
            mix(key.pipeline.0 as u64);
            mix(key.node.0 as u64);
            mix(s.released);
            mix(s.censored);
            mix(s.completed_on_time);
            mix(s.completed_late);
            mix(s.dropped);
            mix(s.flushed);
            mix(s.energy_pj.to_bits());
            mix(s.worst_energy_pj.to_bits());
            mix(s.wait_ns);
            for &v in &s.variant_runs {
                mix(v);
            }
        }
        h.finish()
    }

    /// A clone with the per-request sojourn sample vectors left empty:
    /// every counter, energy, and histogram is copied, but the raw
    /// samples — which grow one entry per completion, without bound over
    /// a long-running session — are not. This is the bounded-size form
    /// live snapshots publish; the counters fully pin down a run's
    /// outcome (the samples are excluded from [`fingerprint`](Self::fingerprint)
    /// for the same reason).
    pub fn clone_counters(&self) -> Metrics {
        Metrics {
            horizon: self.horizon,
            stats: self
                .stats
                .iter()
                .map(|(&key, s)| {
                    (
                        key,
                        ModelStats {
                            model_name: s.model_name,
                            fps: s.fps,
                            released: s.released,
                            censored: s.censored,
                            completed_on_time: s.completed_on_time,
                            completed_late: s.completed_late,
                            dropped: s.dropped,
                            flushed: s.flushed,
                            energy_pj: s.energy_pj,
                            worst_energy_pj: s.worst_energy_pj,
                            variant_runs: s.variant_runs.clone(),
                            wait_ns: s.wait_ns,
                            sojourn_ns: Vec::new(),
                            sojourn_hist: s.sojourn_hist.clone(),
                        },
                    )
                })
                .collect(),
            scheduler_invocations: self.scheduler_invocations,
            invalid_decisions: self.invalid_decisions,
            layer_executions: self.layer_executions,
            context_switches: self.context_switches,
            acc_busy_ns: self.acc_busy_ns.clone(),
            events_processed: self.events_processed,
            faults_injected: self.faults_injected,
            fault_requeues: self.fault_requeues,
            deadline_miss_under_faults: self.deadline_miss_under_faults,
        }
    }

    /// Mean accelerator utilisation over the horizon, in `[0, 1]`.
    pub fn mean_utilization(&self) -> f64 {
        if self.acc_busy_ns.is_empty() || self.horizon.as_ns() == 0 {
            return 0.0;
        }
        let total: u64 = self.acc_busy_ns.iter().sum();
        total as f64 / (self.horizon.as_ns() as f64 * self.acc_busy_ns.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_models::{NodeId, PipelineId};

    fn key(n: usize) -> ModelKey {
        ModelKey {
            phase: 0,
            pipeline: PipelineId(0),
            node: NodeId(n),
        }
    }

    #[test]
    fn violation_rate_floor_matches_algorithm2() {
        let mut s = ModelStats::new("m", 30.0, 1);
        s.released = 60;
        s.completed_on_time = 60;
        // Zero violations → 1 / (2·60).
        assert!((s.violation_rate().unwrap() - 1.0 / 120.0).abs() < 1e-12);
        assert_eq!(s.raw_violation_rate().unwrap(), 0.0);

        s.completed_on_time = 45;
        s.completed_late = 10;
        s.dropped = 5;
        assert_eq!(s.violated(), 15);
        assert!((s.violation_rate().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unfinished_frames_count_as_violations() {
        let mut s = ModelStats::new("m", 30.0, 1);
        s.released = 10;
        s.completed_on_time = 7;
        // 3 frames never finished.
        assert_eq!(s.violated(), 3);
    }

    #[test]
    fn empty_model_yields_none() {
        let s = ModelStats::new("m", 30.0, 1);
        assert!(s.violation_rate().is_none());
        assert!(s.normalized_energy().is_none());
    }

    #[test]
    fn normalized_energy_ratio() {
        let mut s = ModelStats::new("m", 30.0, 1);
        s.released = 10;
        s.energy_pj = 30.0;
        s.worst_energy_pj = 100.0;
        assert!((s.normalized_energy().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn metrics_aggregation_sums_models() {
        let mut m = Metrics::new(SimTime::from_ns(1_000_000_000), 2);
        {
            let a = m.entry(key(0), "a", 30.0, 1);
            a.released = 10;
            a.completed_on_time = 5;
            a.energy_pj = 50.0;
            a.worst_energy_pj = 100.0;
        }
        {
            let b = m.entry(key(1), "b", 60.0, 1);
            b.released = 20;
            b.completed_on_time = 20;
            b.energy_pj = 20.0;
            b.worst_energy_pj = 100.0;
        }
        assert_eq!(m.model_count(), 2);
        // 0.5 + floor(1/40).
        assert!((m.overall_violation_rate() - (0.5 + 0.025)).abs() < 1e-12);
        assert!((m.overall_raw_violation_rate() - 0.5).abs() < 1e-12);
        assert!((m.overall_normalized_energy() - 0.7).abs() < 1e-12);
        assert!((m.mean_violation_rate() - 0.25).abs() < 1e-12);
        assert!((m.total_energy_mj() - 70.0 / 1.0e9).abs() < 1e-18);
    }

    #[test]
    fn clone_counters_drops_samples_but_fingerprints_identically() {
        let mut m = Metrics::new(SimTime::from_ns(1_000), 1);
        {
            let s = m.entry(key(0), "a", 30.0, 2);
            s.released = 3;
            s.completed_on_time = 3;
            s.variant_runs = vec![2, 1];
            s.record_sojourn(5);
            s.record_sojourn(9);
            s.record_sojourn(7);
            s.energy_pj = 12.5;
        }
        m.layer_executions = 4;
        let c = m.clone_counters();
        assert!(c.model(key(0)).unwrap().sojourn_ns.is_empty());
        assert_eq!(c.model(key(0)).unwrap().variant_runs, vec![2, 1]);
        assert_eq!(c.layer_executions, 4);
        // Samples are not part of the fingerprint, so the counter clone
        // fingerprints identically.
        assert_eq!(c.fingerprint(), m.fingerprint());
        assert!(c.sojourn_percentile_ms(0.5).is_none());
        assert_eq!(m.sojourn_percentile_ms(0.5), Some(7.0 / 1.0e6));
        // The bounded histogram survives the counter clone (it is O(1)
        // per model, unlike the raw sample buffer).
        assert_eq!(c.sojourn_histogram(), m.sojourn_histogram());
        assert_eq!(c.sojourn_histogram().total(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert!(h.quantile(0.5).is_none());
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(1000);
        assert_eq!(h.total(), 4);
        // Nearest-rank on totals: p25 is the first sample (0), p50 the
        // second (1 → bucket upper bound 1), p100 the last
        // (1000 → bucket [512, 1024) upper bound 1023).
        assert_eq!(h.quantile(0.25), Some(0));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.75), Some(7));
        assert_eq!(h.quantile(1.0), Some(1023));
        // The bucket bound always dominates the exact sample and stays
        // within 2× of it.
        assert!(h.quantile(1.0).unwrap() >= 1000);
        assert!(h.quantile(1.0).unwrap() < 2000);
        assert!(h.quantile(0.0).is_none());
        assert!(h.quantile(1.5).is_none());
    }

    #[test]
    fn histogram_merge_matches_pooled_records() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut pooled = Histogram::new();
        for v in [3u64, 90, 1 << 40] {
            a.record(v);
            pooled.record(v);
        }
        for v in [0u64, 7, u64::MAX] {
            b.record(v);
            pooled.record(v);
        }
        a.merge(&b);
        assert_eq!(a, pooled);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn histogram_sparse_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 2, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let sparse = h.sparse();
        // Only the occupied buckets appear.
        assert!(sparse.len() < 8);
        assert_eq!(Histogram::from_sparse(&sparse), h);
        // Out-of-range indices saturate into the last bucket instead of
        // panicking on malformed wire input.
        let bad = vec![(9999u32, 5u64)];
        assert_eq!(Histogram::from_sparse(&bad).total(), 5);
    }

    #[test]
    fn sojourn_percentiles_sort_once_and_agree_with_single() {
        let mut m = Metrics::new(SimTime::from_ns(1_000), 1);
        {
            let s = m.entry(key(0), "a", 30.0, 1);
            for v in [40u64, 10, 30, 20, 50] {
                s.record_sojourn(v);
            }
        }
        let batch = m
            .model(key(0))
            .unwrap()
            .sojourn_percentiles_ms(&[0.5, 0.95, 0.99]);
        for (q, got) in [0.5, 0.95, 0.99].iter().zip(&batch) {
            assert_eq!(*got, m.model(key(0)).unwrap().sojourn_percentile_ms(*q));
        }
        assert_eq!(batch[0], Some(30.0 / 1.0e6));
    }

    #[test]
    fn utilization_fraction() {
        let mut m = Metrics::new(SimTime::from_ns(1000), 2);
        m.acc_busy_ns = vec![500, 1000];
        assert!((m.mean_utilization() - 0.75).abs() < 1e-12);
    }
}
