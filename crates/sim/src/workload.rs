use std::collections::BTreeMap;

use dream_cost::{AcceleratorId, CostBackend, Platform, SwitchCost, SwitchFactors};
use dream_models::{
    CascadeProbability, ExitPoint, Layer, NodeId, PipelineId, Rate, Scenario, SkipBlock, VariantId,
};

use crate::{SimError, SimTime};

/// Global index of a layer within a [`WorkloadSet`] (spans every model,
/// variant, and phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub usize);

/// Identity of one deployed model instance: which phase, pipeline, and node
/// it occupies. This is the key metrics are aggregated under (the same
/// network deployed twice — e.g. SSD for hands and faces — is two keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelKey {
    /// Workload phase (0 unless task-level dynamicity is configured).
    pub phase: usize,
    /// Pipeline within the phase's scenario.
    pub pipeline: PipelineId,
    /// Node within the pipeline.
    pub node: NodeId,
}

impl ModelKey {
    /// The deterministic-coin "pipeline" coordinate: disambiguates
    /// identical pipeline indices across phases so draws never collide.
    pub(crate) fn coin_channel(self) -> usize {
        self.phase * 4096 + self.pipeline.0
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}.{}.{}", self.phase, self.pipeline.0, self.node.0)
    }
}

/// Pre-resolved static description of one model node: layer ids per
/// variant, gates, timing contract, and cascade structure.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    pub(crate) key: ModelKey,
    pub(crate) model_name: &'static str,
    pub(crate) rate: Rate,
    pub(crate) period: SimTime,
    pub(crate) parent: Option<NodeId>,
    pub(crate) cascade: Option<CascadeProbability>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) variants: Vec<VariantPlan>,
    pub(crate) worst_frame_energy_pj: f64,
}

/// One executable variant of a node: its global layer ids plus gates in
/// graph-index space.
#[derive(Debug, Clone)]
pub struct VariantPlan {
    pub(crate) name: &'static str,
    pub(crate) layers: Vec<LayerId>,
    pub(crate) skip_blocks: Vec<SkipBlock>,
    pub(crate) exit_points: Vec<ExitPoint>,
}

impl NodeInfo {
    /// The node's identity.
    pub fn key(&self) -> ModelKey {
        self.key
    }

    /// The deployed network's name (Table 3 naming).
    pub fn model_name(&self) -> &'static str {
        self.model_name
    }

    /// Target frame rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Frame period (= relative deadline).
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Parent node in the cascade, if any.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Probability the parent's completion launches this node.
    pub fn cascade(&self) -> Option<CascadeProbability> {
        self.cascade
    }

    /// Child nodes (same pipeline) that depend on this node.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Whether no other model depends on this one — the only nodes DREAM's
    /// frame-drop Condition 3 may drop.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of variants (1 for ordinary models).
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// Whether this node deploys a multi-variant supernet.
    pub fn is_supernet(&self) -> bool {
        self.variants.len() > 1
    }

    /// Global layer ids of a variant.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    pub fn variant_layers(&self, variant: VariantId) -> &[LayerId] {
        &self.variants[variant.0].layers
    }

    /// The variant's human-readable name.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    pub fn variant_name(&self, variant: VariantId) -> &'static str {
        self.variants[variant.0].name
    }

    /// Skip gates of a variant (graph-index space).
    pub(crate) fn variant(&self, variant: VariantId) -> &VariantPlan {
        &self.variants[variant.0]
    }

    /// Worst-case energy of one frame: every default-variant layer on its
    /// most expensive accelerator (Algorithm 2's normalisation denominator).
    pub fn worst_frame_energy_pj(&self) -> f64 {
        self.worst_frame_energy_pj
    }
}

/// One workload phase: a scenario active during `[start, end)`.
#[derive(Debug, Clone)]
pub struct Phase {
    pub(crate) start: SimTime,
    pub(crate) end: SimTime,
    pub(crate) scenario: Scenario,
}

impl Phase {
    /// Creates a phase: `scenario` is active during `[start, end)`.
    ///
    /// Phases handed to [`WorkloadSet::build`] must be non-overlapping
    /// and time-ordered; *gaps* between consecutive phases are legal and
    /// mean no scenario is deployed during the gap (no arrivals occur
    /// there — see [`WorkloadSet::active_phase_at`]).
    pub fn new(start: SimTime, end: SimTime, scenario: Scenario) -> Self {
        Phase {
            start,
            end,
            scenario,
        }
    }

    /// Phase start time (inclusive).
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Phase end time (exclusive).
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// The scenario active in this phase.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }
}

/// The fully-resolved workload a simulation executes: phases, nodes,
/// flattened layers, and the offline latency/energy tables DREAM consumes
/// (the paper's `EstLatency` / `EstEnergy` inputs, Figure 4).
///
/// Beyond the raw tables, [`WorkloadSet::build`] precomputes every
/// MapScore term that is constant per (layer, accelerator) pair — the
/// static half of Algorithm 1's static/dynamic split (cf. Sparse-DySta):
///
/// * `lat_pref[layer, acc]   = Σᵢ lat(layer, i) / lat(layer, acc)`
/// * `pref_energy[layer, acc] = Σᵢ E(layer, i) / E(layer, acc)`
/// * `cold_switch_ratio[layer, acc]` — the context-switch energy ratio of
///   a *cold* accelerator (nothing to flush, only the incoming fetch)
/// * `switch_energy_pj_per_byte[acc]` — DRAM energy per switched byte, so
///   the warm-switch ratio needs only the dynamic flush volume online
/// * `avg_lat[layer]` — the across-accelerator mean (`ToGo`'s per-layer
///   term)
///
/// Each cached value is produced by the *identical* floating-point
/// operation sequence the former online path used, so schedulers reading
/// the tables are bit-for-bit equal to a from-scratch recomputation via
/// the [`CostBackend`] (property-tested in `dream-core`).
///
/// The backend is consulted only here, at build time — every
/// per-(layer, accelerator) quantity the decision path needs is resolved
/// into these flat tables, so swapping backends (analytical vs. a
/// MAESTRO-style table import) never adds dispatch cost to a decision.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    phases: Vec<Phase>,
    nodes: BTreeMap<ModelKey, NodeInfo>,
    layers: Vec<Layer>,
    acc_count: usize,
    lat: Vec<f64>,
    energy: Vec<f64>,
    sum_lat: Vec<f64>,
    avg_lat: Vec<f64>,
    min_lat: Vec<f64>,
    sum_energy: Vec<f64>,
    max_energy: Vec<f64>,
    input_bytes: Vec<u64>,
    output_bytes: Vec<u64>,
    lat_pref: Vec<f64>,
    pref_energy: Vec<f64>,
    cold_switch_ratio: Vec<f64>,
    switch_factors: Vec<SwitchFactors>,
    cost_digest: u64,
}

impl WorkloadSet {
    /// Resolves `phases` against `platform`, computing the per-layer cost
    /// tables with `cost` (any [`CostBackend`] — the analytical model or
    /// an imported table).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPhase`] if phases are empty or not
    /// strictly ordered, and [`SimError::Cost`] when the backend cannot
    /// answer a (layer, accelerator) query the workload needs.
    pub fn build(
        phases: Vec<Phase>,
        platform: &Platform,
        cost: &dyn CostBackend,
    ) -> Result<Self, SimError> {
        if phases.is_empty() {
            return Err(SimError::InvalidPhase {
                reason: "no workload phases configured".into(),
            });
        }
        for p in &phases {
            if p.end <= p.start {
                return Err(SimError::InvalidPhase {
                    reason: format!("phase [{}, {}) is empty", p.start, p.end),
                });
            }
        }
        // Gaps between consecutive phases are legal (no scenario deployed
        // during the gap); only overlaps are rejected.
        for w in phases.windows(2) {
            if w[1].start < w[0].end {
                return Err(SimError::InvalidPhase {
                    reason: format!(
                        "phase starting at {} overlaps phase ending at {}",
                        w[1].start, w[0].end
                    ),
                });
            }
        }
        // Per-accelerator switch factors: the static half of Algorithm 1's
        // Cost_switch term and of the engine's dispatch-time switch
        // charges — resolved once here so the backend is never consulted
        // on the decision path.
        let switch_factors = platform
            .accelerators()
            .iter()
            .map(|acc| cost.switch_factors(acc))
            .collect::<Result<Vec<SwitchFactors>, _>>()?;
        let mut ws = WorkloadSet {
            phases,
            nodes: BTreeMap::new(),
            layers: Vec::new(),
            acc_count: platform.len(),
            lat: Vec::new(),
            energy: Vec::new(),
            sum_lat: Vec::new(),
            avg_lat: Vec::new(),
            min_lat: Vec::new(),
            sum_energy: Vec::new(),
            max_energy: Vec::new(),
            input_bytes: Vec::new(),
            output_bytes: Vec::new(),
            lat_pref: Vec::new(),
            pref_energy: Vec::new(),
            cold_switch_ratio: Vec::new(),
            switch_factors,
            cost_digest: cost.calibration_digest(),
        };
        let phases_snapshot = ws.phases.clone();
        for (phase_idx, phase) in phases_snapshot.iter().enumerate() {
            for (pl_idx, pipeline) in phase.scenario.pipelines().iter().enumerate() {
                // First pass: children lists.
                let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); pipeline.nodes().len()];
                for (n_idx, node) in pipeline.nodes().iter().enumerate() {
                    if let Some(p) = node.parent {
                        children[p.0].push(NodeId(n_idx));
                    }
                }
                for (n_idx, node) in pipeline.nodes().iter().enumerate() {
                    let key = ModelKey {
                        phase: phase_idx,
                        pipeline: PipelineId(pl_idx),
                        node: NodeId(n_idx),
                    };
                    let mut variants = Vec::with_capacity(node.model.variant_count());
                    for graph in node.model.variants() {
                        let mut layer_ids = Vec::with_capacity(graph.len());
                        for layer in graph.layers() {
                            layer_ids.push(ws.register_layer(layer.clone(), platform, cost)?);
                        }
                        variants.push(VariantPlan {
                            name: graph.name(),
                            layers: layer_ids,
                            skip_blocks: graph.skip_blocks().to_vec(),
                            exit_points: graph.exit_points().to_vec(),
                        });
                    }
                    let worst_frame_energy_pj = crate::fold::canonical_sum(
                        variants[0].layers.iter().map(|&l| ws.max_energy[l.0]),
                    );
                    ws.nodes.insert(
                        key,
                        NodeInfo {
                            key,
                            model_name: node.model.name(),
                            rate: node.rate,
                            period: SimTime::from_ns(node.rate.period_ns()),
                            parent: node.parent,
                            cascade: node.cascade,
                            children: children[n_idx].clone(),
                            variants,
                            worst_frame_energy_pj,
                        },
                    );
                }
            }
        }
        Ok(ws)
    }

    // detlint: canonical-fold -- per-accelerator cost-table fold in platform order: the reference sequence the cached min/max/avg tables replay
    fn register_layer(
        &mut self,
        layer: Layer,
        platform: &Platform,
        cost: &dyn CostBackend,
    ) -> Result<LayerId, SimError> {
        let id = LayerId(self.layers.len());
        let stats = layer.stats();
        let mut sum_l = 0.0;
        let mut min_l = f64::INFINITY;
        let mut sum_e = 0.0;
        let mut max_e: f64 = 0.0;
        let base = id.0 * self.acc_count;
        for acc in platform.accelerators() {
            let c = cost.layer_cost(&layer, acc)?;
            self.lat.push(c.latency_ns);
            self.energy.push(c.energy_pj);
            sum_l += c.latency_ns;
            min_l = min_l.min(c.latency_ns);
            sum_e += c.energy_pj;
            max_e = max_e.max(c.energy_pj);
        }
        // Second pass: the static MapScore terms. Each expression repeats
        // the exact operation sequence the online path would perform
        // (sum / entry, incoming-bytes · per-byte / entry), keeping the
        // cached tables bit-identical to on-demand recomputation.
        for i in 0..self.acc_count {
            self.lat_pref.push(sum_l / self.lat[base + i]);
            self.pref_energy.push(sum_e / self.energy[base + i]);
            self.cold_switch_ratio.push(
                stats.input_bytes as f64 * self.switch_factors[i].energy_pj_per_byte
                    / self.energy[base + i],
            );
        }
        self.sum_lat.push(sum_l);
        self.avg_lat.push(sum_l / self.acc_count as f64);
        self.min_lat.push(min_l);
        self.sum_energy.push(sum_e);
        self.max_energy.push(max_e);
        self.input_bytes.push(stats.input_bytes);
        self.output_bytes.push(stats.output_bytes);
        self.layers.push(layer);
        Ok(id)
    }

    /// The workload phases in time order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The phase index governing `time`: the phase whose `[start, end)`
    /// window contains it, or — since phases may be separated by gaps in
    /// which no scenario is deployed — the phase the workload is
    /// transitioning *into* (the next phase to start). Times at/after the
    /// last phase's end clamp to the last phase, times before the first
    /// phase's start clamp to the first.
    ///
    /// Use [`active_phase_at`](Self::active_phase_at) to distinguish a
    /// gap from an active phase.
    pub fn phase_at(&self, time: SimTime) -> usize {
        if let Some(active) = self.active_phase_at(time) {
            return active;
        }
        // In a gap (or outside the schedule): the next phase to start,
        // clamped to the last phase once the schedule is over.
        self.phases
            .iter()
            .position(|p| time < p.start)
            .unwrap_or(self.phases.len() - 1)
    }

    /// The phase whose half-open window `[start, end)` contains `time`,
    /// or `None` when `time` falls in an inter-phase gap, before the
    /// first phase, or at/after the end of the last one.
    pub fn active_phase_at(&self, time: SimTime) -> Option<usize> {
        self.phases
            .iter()
            .position(|p| time >= p.start && time < p.end)
    }

    /// All model nodes across all phases.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.values()
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if `key` was not produced by this workload set.
    pub fn node(&self, key: ModelKey) -> &NodeInfo {
        &self.nodes[&key]
    }

    /// Non-panicking node lookup — for validating externally supplied
    /// keys (trace entries, live admissions).
    pub fn try_node(&self, key: ModelKey) -> Option<&NodeInfo> {
        self.nodes.get(&key)
    }

    /// Number of sub-accelerators the tables were built for.
    pub fn acc_count(&self) -> usize {
        self.acc_count
    }

    /// Total number of registered (flattened) layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layer object behind an id (for on-demand cost queries, e.g.
    /// Planaria's gang costing).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: LayerId) -> &Layer {
        &self.layers[layer.0]
    }

    /// All registered layers in [`LayerId`] order — the layer universe a
    /// cost-table export ([`dream_cost::TableBackend::derive`]) must
    /// cover to replay this workload.
    pub fn layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter()
    }

    /// Estimated latency of `layer` on `acc` in nanoseconds — the paper's
    /// `EstLatency(layer, acc)`.
    pub fn latency_ns(&self, layer: LayerId, acc: AcceleratorId) -> f64 {
        self.lat[layer.0 * self.acc_count + acc.0]
    }

    /// Estimated energy of `layer` on `acc` in picojoules — the paper's
    /// `EstEnergy(layer, acc)`.
    pub fn energy_pj(&self, layer: LayerId, acc: AcceleratorId) -> f64 {
        self.energy[layer.0 * self.acc_count + acc.0]
    }

    /// Σ over accelerators of `latency_ns` (Algorithm 1's preference
    /// numerator).
    pub fn sum_latency_ns(&self, layer: LayerId) -> f64 {
        self.sum_lat[layer.0]
    }

    /// Mean latency across accelerators (Algorithm 1's `ToGo` term),
    /// precomputed at build time.
    pub fn avg_latency_ns(&self, layer: LayerId) -> f64 {
        self.avg_lat[layer.0]
    }

    /// Best-case latency across accelerators (smart frame drop's
    /// `minimum_to_go` term).
    pub fn min_latency_ns(&self, layer: LayerId) -> f64 {
        self.min_lat[layer.0]
    }

    /// Σ over accelerators of `energy_pj` (energy preference numerator).
    pub fn sum_energy_pj(&self, layer: LayerId) -> f64 {
        self.sum_energy[layer.0]
    }

    /// Worst-case energy across accelerators (UXCost normalisation).
    pub fn max_energy_pj(&self, layer: LayerId) -> f64 {
        self.max_energy[layer.0]
    }

    /// Input activation bytes of a layer (context-switch fetch volume).
    pub fn input_bytes(&self, layer: LayerId) -> u64 {
        self.input_bytes[layer.0]
    }

    /// Output activation bytes of a layer (context-switch flush volume).
    pub fn output_bytes(&self, layer: LayerId) -> u64 {
        self.output_bytes[layer.0]
    }

    /// Precomputed `ScoreLatPref(layer, acc)` — Algorithm 1 line 8's
    /// `Σᵢ lat(layer, i) / lat(layer, acc)`, hoisted offline.
    pub fn lat_pref(&self, layer: LayerId, acc: AcceleratorId) -> f64 {
        self.lat_pref[layer.0 * self.acc_count + acc.0]
    }

    /// Precomputed `PrefEnergy(layer, acc)` — Algorithm 1 line 11's
    /// `Σᵢ E(layer, i) / E(layer, acc)`, hoisted offline.
    pub fn pref_energy(&self, layer: LayerId, acc: AcceleratorId) -> f64 {
        self.pref_energy[layer.0 * self.acc_count + acc.0]
    }

    /// Precomputed cold context-switch energy ratio — Algorithm 1 line
    /// 10's `CswitchEnergy / EstEnergy(layer, acc)` when the accelerator
    /// has nothing to flush (`last_output_bytes == 0`): only the incoming
    /// working-set fetch is paid.
    pub fn cold_switch_ratio(&self, layer: LayerId, acc: AcceleratorId) -> f64 {
        self.cold_switch_ratio[layer.0 * self.acc_count + acc.0]
    }

    /// DRAM energy per context-switched byte on `acc` (pJ/byte) — the
    /// static factor of the warm-switch ratio, whose only online input is
    /// the departing task's flush volume.
    pub fn switch_energy_pj_per_byte(&self, acc: AcceleratorId) -> f64 {
        self.switch_factors[acc.0].energy_pj_per_byte
    }

    /// Both per-byte context-switch factors of `acc`, as resolved from
    /// the backend at build time.
    pub fn switch_factors(&self, acc: AcceleratorId) -> SwitchFactors {
        self.switch_factors[acc.0]
    }

    /// The cost of a context switch fetching `incoming_bytes` and
    /// flushing `outgoing_bytes` through `acc`, served from the
    /// build-time factors with the one shared formula
    /// ([`SwitchFactors::cost`]) — bit-identical to asking the backend,
    /// without the dynamic dispatch. This is what the engine charges on
    /// dispatch.
    pub fn switch_cost(
        &self,
        incoming_bytes: u64,
        outgoing_bytes: u64,
        acc: AcceleratorId,
    ) -> SwitchCost {
        self.switch_factors[acc.0].cost(incoming_bytes, outgoing_bytes)
    }

    /// The digest of the backend calibration these tables were built
    /// with ([`CostBackend::calibration_digest`]). Two workloads built
    /// from backends with different digests hold different tables; the
    /// engine uses this to reject a prebuilt workload whose backend
    /// disagrees with the simulation's.
    pub fn cost_digest(&self) -> u64 {
        self.cost_digest
    }

    /// The distinct model names active in `phase` — the "inference model
    /// list" DREAM's adaptivity engine watches for workload changes.
    pub fn model_names(&self, phase: usize) -> Vec<&'static str> {
        self.phases
            .get(phase)
            .map(|p| p.scenario.model_names())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{CostModel, PlatformPreset};
    use dream_models::ScenarioKind;

    fn build_default() -> (WorkloadSet, Platform) {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let cost = CostModel::paper_default();
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let ws = WorkloadSet::build(
            vec![Phase {
                start: SimTime::ZERO,
                end: SimTime::from(crate::Millis::new(1000)),
                scenario,
            }],
            &platform,
            &cost,
        )
        .unwrap();
        (ws, platform)
    }

    #[test]
    fn builds_ar_call_nodes() {
        let (ws, _) = build_default();
        // AR_Call: KWS, GNMT, SkipNet.
        assert_eq!(ws.nodes().count(), 3);
        let names: Vec<_> = ws.nodes().map(NodeInfo::model_name).collect();
        assert!(names.contains(&"GNMT"));
        assert!(names.contains(&"SkipNet"));
    }

    #[test]
    fn tables_cover_every_layer_accelerator_pair() {
        let (ws, platform) = build_default();
        assert_eq!(ws.acc_count(), 3);
        for node in ws.nodes() {
            for v in 0..node.variant_count() {
                for &l in node.variant_layers(VariantId(v)) {
                    for acc in platform.ids() {
                        let lat = ws.latency_ns(l, acc);
                        let e = ws.energy_pj(l, acc);
                        assert!(lat.is_finite() && lat > 0.0);
                        assert!(e.is_finite() && e > 0.0);
                    }
                    assert!(ws.min_latency_ns(l) <= ws.avg_latency_ns(l));
                    assert!(ws.max_energy_pj(l) * 3.0 >= ws.sum_energy_pj(l));
                }
            }
        }
    }

    #[test]
    fn precomputed_score_tables_match_from_scratch_bitwise() {
        let (ws, platform) = build_default();
        let cost = CostModel::paper_default();
        for node in ws.nodes() {
            for v in 0..node.variant_count() {
                for &l in node.variant_layers(VariantId(v)) {
                    for acc in platform.ids() {
                        let lp = ws.sum_latency_ns(l) / ws.latency_ns(l, acc);
                        assert_eq!(ws.lat_pref(l, acc).to_bits(), lp.to_bits());
                        let pe = ws.sum_energy_pj(l) / ws.energy_pj(l, acc);
                        assert_eq!(ws.pref_energy(l, acc).to_bits(), pe.to_bits());
                        let config = platform.accelerator(acc).unwrap();
                        let sw = cost.switch_cost(ws.input_bytes(l), 0, config);
                        let cold = sw.energy_pj / ws.energy_pj(l, acc);
                        assert_eq!(ws.cold_switch_ratio(l, acc).to_bits(), cold.to_bits());
                        let per_byte = cost.switch_cost(1, 0, config).energy_pj;
                        assert_eq!(
                            ws.switch_energy_pj_per_byte(acc).to_bits(),
                            per_byte.to_bits()
                        );
                    }
                    let avg = ws.sum_latency_ns(l) / ws.acc_count() as f64;
                    assert_eq!(ws.avg_latency_ns(l).to_bits(), avg.to_bits());
                }
            }
        }
    }

    #[test]
    fn cascade_structure_resolved() {
        let (ws, _) = build_default();
        let audio_parent = ModelKey {
            phase: 0,
            pipeline: PipelineId(0),
            node: NodeId(0),
        };
        let kws = ws.node(audio_parent);
        assert_eq!(kws.model_name(), "KWS_res8");
        assert!(!kws.is_leaf());
        assert_eq!(kws.children(), &[NodeId(1)]);
        let gnmt = ws.node(ModelKey {
            phase: 0,
            pipeline: PipelineId(0),
            node: NodeId(1),
        });
        assert!(gnmt.is_leaf());
        assert_eq!(gnmt.parent(), Some(NodeId(0)));
    }

    #[test]
    fn worst_energy_bounds_any_single_assignment() {
        let (ws, platform) = build_default();
        for node in ws.nodes() {
            let worst = node.worst_frame_energy_pj();
            let single_acc: f64 = node
                .variant_layers(VariantId(0))
                .iter()
                .map(|&l| ws.energy_pj(l, AcceleratorId(0)))
                .sum();
            assert!(worst >= single_acc - 1e-9, "{}", node.model_name());
            let _ = platform;
        }
    }

    #[test]
    fn phase_lookup() {
        let (ws, _) = build_default();
        assert_eq!(ws.phase_at(SimTime::ZERO), 0);
        assert_eq!(ws.phase_at(SimTime::from_ns(u64::MAX / 2)), 0);
        assert_eq!(ws.model_names(0).len(), 3);
        assert!(ws.model_names(7).is_empty());
    }

    #[test]
    fn gapped_phases_resolve_per_window() {
        // Regression: phase_at used to return the previous, already-ended
        // phase for any time inside an inter-phase gap.
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let cost = CostModel::paper_default();
        let s = || Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let ws = WorkloadSet::build(
            vec![
                Phase::new(SimTime::from_ns(0), SimTime::from_ns(100), s()),
                // Gap: [100, 200) has no deployed scenario.
                Phase::new(SimTime::from_ns(200), SimTime::from_ns(300), s()),
            ],
            &platform,
            &cost,
        )
        .unwrap();
        // Inside the phases.
        assert_eq!(ws.active_phase_at(SimTime::from_ns(0)), Some(0));
        assert_eq!(ws.active_phase_at(SimTime::from_ns(99)), Some(0));
        assert_eq!(ws.active_phase_at(SimTime::from_ns(200)), Some(1));
        assert_eq!(ws.active_phase_at(SimTime::from_ns(299)), Some(1));
        // The gap: no active phase; phase_at reports the upcoming one.
        assert_eq!(ws.active_phase_at(SimTime::from_ns(100)), None);
        assert_eq!(ws.active_phase_at(SimTime::from_ns(150)), None);
        assert_eq!(ws.active_phase_at(SimTime::from_ns(199)), None);
        assert_eq!(ws.phase_at(SimTime::from_ns(150)), 1);
        // Past the schedule: clamped to the last phase, but not active.
        assert_eq!(ws.active_phase_at(SimTime::from_ns(300)), None);
        assert_eq!(ws.phase_at(SimTime::from_ns(1_000)), 1);
    }

    #[test]
    fn empty_phase_window_rejected() {
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let cost = CostModel::paper_default();
        let s = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let phases = vec![Phase::new(SimTime::from_ns(50), SimTime::from_ns(50), s)];
        assert!(WorkloadSet::build(phases, &platform, &cost).is_err());
    }

    #[test]
    fn overlapping_phases_rejected() {
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let cost = CostModel::paper_default();
        let s = || Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let phases = vec![
            Phase {
                start: SimTime::ZERO,
                end: SimTime::from_ns(100),
                scenario: s(),
            },
            Phase {
                start: SimTime::from_ns(50),
                end: SimTime::from_ns(200),
                scenario: s(),
            },
        ];
        assert!(WorkloadSet::build(phases, &platform, &cost).is_err());
    }

    #[test]
    fn empty_phases_rejected() {
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let cost = CostModel::paper_default();
        assert!(WorkloadSet::build(vec![], &platform, &cost).is_err());
    }
}
