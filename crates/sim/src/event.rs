use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dream_models::{NodeId, PipelineId};

use crate::{SimTime, TaskId};

/// What happens at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A periodic root frame arrives for `(phase, pipeline, node)`.
    FrameArrival {
        phase: usize,
        pipeline: PipelineId,
        node: NodeId,
        frame: u64,
    },
    /// The layer `task` was running finishes (freeing its accelerators).
    LayerDone { task: TaskId },
    /// A workload phase boundary: flush the previous phase's tasks.
    PhaseStart { phase: usize },
    /// End of the simulation horizon.
    End,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for the max-heap: earliest time first, then insertion
        // order for a deterministic tie-break.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(50), EventKind::End);
        q.push(
            SimTime::from_ns(10),
            EventKind::LayerDone { task: TaskId(1) },
        );
        q.push(
            SimTime::from_ns(10),
            EventKind::LayerDone { task: TaskId(2) },
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.kind, EventKind::LayerDone { task: TaskId(1) });
        assert_eq!(b.kind, EventKind::LayerDone { task: TaskId(2) });
        assert_eq!(c.kind, EventKind::End);
        assert!(q.pop().is_none());
    }
}
