use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dream_models::{NodeId, PipelineId};

use crate::{SimTime, TaskId};

/// What happens at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A periodic root frame arrives for `(phase, pipeline, node)`.
    FrameArrival {
        phase: usize,
        pipeline: PipelineId,
        node: NodeId,
        frame: u64,
    },
    /// The layer `task` was running finishes (freeing its accelerators).
    LayerDone { task: TaskId },
    /// A workload phase boundary: flush the previous phase's tasks.
    PhaseStart { phase: usize },
    /// End of the simulation horizon.
    End,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl EventKind {
    /// Processing rank among simultaneous events. Phase boundaries apply
    /// first, then the horizon, then completions, then new arrivals — so
    /// an instant's order is a pure function of the events at it, not of
    /// when each was pushed. That independence is what lets a live session
    /// inject arrivals as they are admitted (long after the recurrence
    /// would have pushed them) and still replay bit-identically through
    /// the batch path.
    fn rank(&self) -> u8 {
        match self {
            EventKind::PhaseStart { .. } => 0,
            EventKind::End => 1,
            EventKind::LayerDone { .. } => 2,
            EventKind::FrameArrival { .. } => 3,
        }
    }

    /// Canonical tie-break within a rank. Arrivals order by model key and
    /// frame; completions have no push-order-free identity, but their
    /// pushes happen in dispatch order, which *is* reproducible, so seq
    /// (compared by the caller) stays their tie-break.
    fn tie_key(&self) -> (usize, usize, usize, u64) {
        match self {
            EventKind::FrameArrival {
                phase,
                pipeline,
                node,
                frame,
            } => (*phase, pipeline.0, node.0, *frame),
            EventKind::PhaseStart { phase } => (*phase, 0, 0, 0),
            _ => (0, 0, 0, 0),
        }
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for the max-heap: earliest time first, then the
        // canonical kind rank and key, then insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.kind.tie_key().cmp(&self.kind.tie_key()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_events_order_by_rank_then_key_not_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(100);
        let arrival = |pl: usize, node: usize, frame: u64| EventKind::FrameArrival {
            phase: 0,
            pipeline: PipelineId(pl),
            node: NodeId(node),
            frame,
        };
        // Push in scrambled order: arrivals first, completion last.
        q.push(t, arrival(1, 0, 7));
        q.push(t, arrival(0, 2, 3));
        q.push(t, EventKind::PhaseStart { phase: 1 });
        q.push(t, arrival(0, 0, 4));
        q.push(t, EventKind::LayerDone { task: TaskId(9) });
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop().map(|e| e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PhaseStart { phase: 1 },
                EventKind::LayerDone { task: TaskId(9) },
                arrival(0, 0, 4),
                arrival(0, 2, 3),
                arrival(1, 0, 7),
            ],
            "an instant's order is canonical, not push order"
        );
    }

    #[test]
    fn end_precedes_simultaneous_completions() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.push(t, EventKind::LayerDone { task: TaskId(1) });
        q.push(t, EventKind::End);
        assert_eq!(q.pop().unwrap().kind, EventKind::End);
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::LayerDone { task: TaskId(1) }
        );
    }

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(50), EventKind::End);
        q.push(
            SimTime::from_ns(10),
            EventKind::LayerDone { task: TaskId(1) },
        );
        q.push(
            SimTime::from_ns(10),
            EventKind::LayerDone { task: TaskId(2) },
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.kind, EventKind::LayerDone { task: TaskId(1) });
        assert_eq!(b.kind, EventKind::LayerDone { task: TaskId(2) });
        assert_eq!(c.kind, EventKind::End);
        assert!(q.pop().is_none());
    }
}
