//! The time-bucketed, arena-backed event queue.
//!
//! # Canonical intra-instant order
//!
//! The queue's contract is *exactly* the comparator [`Event`] defines:
//! earliest time first, then the canonical kind rank
//! ([`EventKind::rank`]), then the canonical tie key
//! ([`EventKind::tie_key`]), then insertion order (`seq`). An instant's
//! processing order is a pure function of the events at it, never of when
//! each was pushed — the property that lets a live session inject
//! arrivals as they are admitted (long after the recurrence would have
//! pushed them) and still replay bit-identically through the batch path
//! (see [`crate::live`]).
//!
//! # Representation: per-instant cells, not a heap
//!
//! A binary heap pays the full comparator on every sift of every push and
//! pop. But everything about an instant's order is statically known — the
//! rank and tie key are fixed at push time — so the queue buckets events
//! into one **cell per pending instant** instead:
//!
//! * a push appends to its instant's cell in O(1) (the canonical sort key
//!   is computed once, at push);
//! * the first pop of an instant sorts the cell **once** by that key;
//!   every later pop of the instant is a cursor bump;
//! * cells live in a small vector ordered by time (earliest last), so
//!   finding the pop target is a tail read and finding a push target is a
//!   binary search over *instants* (a bare `u64` compare), not events;
//! * retired cell buffers return to an internal pool, so steady-state
//!   operation allocates nothing.
//!
//! The comparator stays the *definition* of order; the cells are only a
//! cheaper way to evaluate it. An event pushed at an instant that is
//! already draining (e.g. a stochastic arrival whose successor lands at
//! the same time) is inserted into the unpopped remainder at its
//! canonical position — precisely what a heap would do, since a heap also
//! orders only the events *currently present*. The property test at the
//! bottom of this file asserts pop-order equivalence against a reference
//! `BinaryHeap` under arbitrary push/pop interleavings, including
//! permutations of simultaneous instants.

use std::cmp::Ordering;

use dream_models::{NodeId, PipelineId};

use crate::{SimTime, TaskId};

/// What happens at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A periodic root frame arrives for `(phase, pipeline, node)`.
    FrameArrival {
        phase: usize,
        pipeline: PipelineId,
        node: NodeId,
        frame: u64,
    },
    /// The layer `task` was running finishes (freeing its accelerators).
    LayerDone { task: TaskId },
    /// A workload phase boundary: flush the previous phase's tasks.
    PhaseStart { phase: usize },
    /// End of the simulation horizon.
    End,
    /// Fault `fault` (a [`FaultPlan`](crate::FaultPlan) index) begins:
    /// mask the accelerator, abort on permanent failure, or start a
    /// slowdown window.
    FaultStart { fault: usize },
    /// Windowed fault `fault` ends: unmask the accelerator or retire its
    /// slowdown factor.
    FaultEnd { fault: usize },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl EventKind {
    /// Processing rank among simultaneous events. Phase boundaries apply
    /// first, then the horizon, then completions, then fault boundaries
    /// (ends before starts, so adjacent windows hand off cleanly), then
    /// new arrivals — so an instant's order is a pure function of the
    /// events at it, not of when each was pushed. That independence is
    /// what lets a live session inject arrivals (and faults) as they are
    /// admitted — long after the batch path would have pushed them — and
    /// still replay bit-identically. A layer completing exactly at a fault
    /// boundary therefore completes *before* the fault applies, mirroring
    /// the flush-at-boundary semantics.
    fn rank(&self) -> u8 {
        match self {
            EventKind::PhaseStart { .. } => 0,
            EventKind::End => 1,
            EventKind::LayerDone { .. } => 2,
            EventKind::FaultEnd { .. } => 3,
            EventKind::FaultStart { .. } => 4,
            EventKind::FrameArrival { .. } => 5,
        }
    }

    /// Canonical tie-break within a rank. Arrivals order by model key and
    /// frame; fault boundaries order by plan index (the plan's order *is*
    /// its identity, identical in live and batch runs); completions have
    /// no push-order-free identity, but their pushes happen in dispatch
    /// order, which *is* reproducible, so seq stays their tie-break.
    fn tie_key(&self) -> (usize, usize, usize, u64) {
        match self {
            EventKind::FrameArrival {
                phase,
                pipeline,
                node,
                frame,
            } => (*phase, pipeline.0, node.0, *frame),
            EventKind::PhaseStart { phase } => (*phase, 0, 0, 0),
            EventKind::FaultStart { fault } | EventKind::FaultEnd { fault } => (*fault, 0, 0, 0),
            _ => (0, 0, 0, 0),
        }
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a max-heap: earliest time first, then the canonical
        // kind rank and key, then insertion order. The bucket queue below
        // pops in exactly this order; the impl is kept as the executable
        // definition (and powers the reference heap in the equivalence
        // property test).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.kind.tie_key().cmp(&self.kind.tie_key()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The canonical order of one event *within its instant*, resolved once
/// at push so a cell sort compares plain integers instead of re-deriving
/// rank and tie key per comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CanonicalKey {
    rank: u8,
    tie: (usize, usize, usize, u64),
    seq: u64,
}

/// One pending event inside a cell.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: CanonicalKey,
    kind: EventKind,
}

/// All pending events at one instant.
#[derive(Debug)]
struct Cell {
    time: SimTime,
    /// Pushed slots; sorted ascending by [`CanonicalKey`] once the
    /// instant starts draining.
    slots: Vec<Slot>,
    /// Number of slots already popped (meaningful once `sorted`).
    cursor: usize,
    /// Whether `slots` is in canonical order (set by the instant's first
    /// pop; a later same-instant push inserts at its sorted position).
    sorted: bool,
}

/// A deterministic time-ordered event queue over per-instant cells.
///
/// See the [module docs](self) for the design and the equivalence
/// argument.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    /// Cells ordered by time **descending** — the earliest pending
    /// instant is last, so the hot pop path touches only the tail.
    cells: Vec<Cell>,
    /// Retired slot buffers, reused so steady-state pushes and pops
    /// allocate nothing.
    pool: Vec<Vec<Slot>>,
    next_seq: u64,
    len: usize,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = Slot {
            key: CanonicalKey {
                rank: kind.rank(),
                tie: kind.tie_key(),
                seq,
            },
            kind,
        };
        self.len += 1;
        // Cells are sorted descending by time, so an element compares
        // "less" in slice order when its time is greater.
        match self.cells.binary_search_by(|c| time.cmp(&c.time)) {
            Ok(pos) => {
                let cell = &mut self.cells[pos];
                if cell.sorted {
                    // The instant is (or was) draining: keep the unpopped
                    // remainder in canonical order. Keys are unique (seq),
                    // so Err is the only outcome.
                    let at = match cell.slots[cell.cursor..]
                        .binary_search_by(|s| s.key.cmp(&slot.key))
                    {
                        Err(i) => cell.cursor + i,
                        Ok(_) => unreachable!("seq makes canonical keys unique"),
                    };
                    cell.slots.insert(at, slot);
                } else {
                    cell.slots.push(slot);
                }
            }
            Err(pos) => {
                let mut slots = self.pool.pop().unwrap_or_default();
                slots.push(slot);
                self.cells.insert(
                    pos,
                    Cell {
                        time,
                        slots,
                        cursor: 0,
                        sorted: false,
                    },
                );
            }
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        let cell = self.cells.last_mut()?;
        if !cell.sorted {
            // The one sort this instant pays; pure integer-key compares.
            cell.slots.sort_unstable_by_key(|s| s.key);
            cell.sorted = true;
        }
        let slot = cell.slots[cell.cursor];
        cell.cursor += 1;
        self.len -= 1;
        let time = cell.time;
        if cell.cursor == cell.slots.len() {
            let mut retired = self.cells.pop().expect("cell exists").slots;
            retired.clear();
            self.pool.push(retired);
        }
        Some(Event {
            time,
            seq: slot.key.seq,
            kind: slot.kind,
        })
    }

    /// Pops the next event only if it lies exactly at `time` — the
    /// instant-draining step: a tail read plus a cursor bump, never a
    /// search. (`time` can only match the earliest pending instant, since
    /// the caller just observed it via [`peek_time`](Self::peek_time).)
    pub fn pop_if_at(&mut self, time: SimTime) -> Option<Event> {
        if self.cells.last()?.time != time {
            return None;
        }
        self.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.cells.last().map(|c| c.time)
    }

    /// Number of pending (not yet popped) events — the engine's
    /// event-queue pressure, surfaced up through
    /// [`LiveSession::event_queue_depth`](crate::live::LiveSession::event_queue_depth).
    pub fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_events_order_by_rank_then_key_not_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(100);
        let arrival = |pl: usize, node: usize, frame: u64| EventKind::FrameArrival {
            phase: 0,
            pipeline: PipelineId(pl),
            node: NodeId(node),
            frame,
        };
        // Push in scrambled order: arrivals first, completion last.
        q.push(t, arrival(1, 0, 7));
        q.push(t, arrival(0, 2, 3));
        q.push(t, EventKind::PhaseStart { phase: 1 });
        q.push(t, arrival(0, 0, 4));
        q.push(t, EventKind::LayerDone { task: TaskId(9) });
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop().map(|e| e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PhaseStart { phase: 1 },
                EventKind::LayerDone { task: TaskId(9) },
                arrival(0, 0, 4),
                arrival(0, 2, 3),
                arrival(1, 0, 7),
            ],
            "an instant's order is canonical, not push order"
        );
    }

    #[test]
    fn end_precedes_simultaneous_completions() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.push(t, EventKind::LayerDone { task: TaskId(1) });
        q.push(t, EventKind::End);
        assert_eq!(q.pop().unwrap().kind, EventKind::End);
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::LayerDone { task: TaskId(1) }
        );
    }

    #[test]
    fn fault_boundaries_rank_after_completions_ends_before_starts() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(42);
        // Scrambled push order: starts, arrival, end, completion.
        q.push(t, EventKind::FaultStart { fault: 3 });
        q.push(
            t,
            EventKind::FrameArrival {
                phase: 0,
                pipeline: PipelineId(0),
                node: NodeId(0),
                frame: 0,
            },
        );
        q.push(t, EventKind::FaultStart { fault: 1 });
        q.push(t, EventKind::FaultEnd { fault: 2 });
        q.push(t, EventKind::LayerDone { task: TaskId(5) });
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop().map(|e| e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::LayerDone { task: TaskId(5) },
                EventKind::FaultEnd { fault: 2 },
                EventKind::FaultStart { fault: 1 },
                EventKind::FaultStart { fault: 3 },
                EventKind::FrameArrival {
                    phase: 0,
                    pipeline: PipelineId(0),
                    node: NodeId(0),
                    frame: 0,
                },
            ],
            "completions beat fault boundaries; ends beat starts; starts order by plan index"
        );
    }

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(50), EventKind::End);
        q.push(
            SimTime::from_ns(10),
            EventKind::LayerDone { task: TaskId(1) },
        );
        q.push(
            SimTime::from_ns(10),
            EventKind::LayerDone { task: TaskId(2) },
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.kind, EventKind::LayerDone { task: TaskId(1) });
        assert_eq!(b.kind, EventKind::LayerDone { task: TaskId(2) });
        assert_eq!(c.kind, EventKind::End);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn push_into_draining_instant_lands_in_canonical_position() {
        // A heap orders only the events currently present; the bucket
        // queue must do the same when an instant gains events mid-drain.
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(7);
        q.push(t, EventKind::LayerDone { task: TaskId(3) });
        q.push(
            t,
            EventKind::FrameArrival {
                phase: 0,
                pipeline: PipelineId(1),
                node: NodeId(0),
                frame: 5,
            },
        );
        // Start draining: the completion pops first.
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::LayerDone { task: TaskId(3) }
        );
        // Now a lower-keyed arrival joins the same instant; it must pop
        // before the higher-keyed one that was already pending.
        q.push(
            t,
            EventKind::FrameArrival {
                phase: 0,
                pipeline: PipelineId(0),
                node: NodeId(0),
                frame: 6,
            },
        );
        let next = q.pop().unwrap().kind;
        assert_eq!(
            next,
            EventKind::FrameArrival {
                phase: 0,
                pipeline: PipelineId(0),
                node: NodeId(0),
                frame: 6,
            }
        );
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::FrameArrival {
                pipeline: PipelineId(1),
                ..
            }
        ));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_if_at_only_serves_the_exact_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), EventKind::End);
        assert!(q.pop_if_at(SimTime::from_ns(9)).is_none());
        assert!(q.pop_if_at(SimTime::from_ns(11)).is_none());
        assert_eq!(
            q.pop_if_at(SimTime::from_ns(10)).unwrap().kind,
            EventKind::End
        );
        assert!(q.pop_if_at(SimTime::from_ns(10)).is_none());
    }

    /// Satellite: the queue-equivalence property — for arbitrary
    /// (time, kind, push-order) sequences with interleaved pops, the
    /// bucket queue pops the identical sequence a reference `BinaryHeap`
    /// under the canonical comparator would, including permutations of
    /// simultaneous instants.
    mod equivalence {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BinaryHeap;

        /// A reference queue: the pre-refactor representation, verbatim.
        #[derive(Default)]
        struct HeapQueue {
            heap: BinaryHeap<Event>,
            next_seq: u64,
        }

        impl HeapQueue {
            fn push(&mut self, time: SimTime, kind: EventKind) {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(Event { time, seq, kind });
            }

            fn pop(&mut self) -> Option<Event> {
                self.heap.pop()
            }
        }

        /// Op stream: `pops` events are popped *before* this push (so
        /// drains interleave with pushes mid-instant), then `(time, kind)`
        /// is pushed to both queues.
        #[derive(Debug, Clone, Copy)]
        struct Op {
            pops: usize,
            time_ns: u64,
            kind: EventKind,
        }

        fn kind_strategy() -> impl Strategy<Value = EventKind> {
            prop_oneof![
                (0usize..3, 0usize..3, 0usize..3, 0u64..4).prop_map(|(phase, pl, node, frame)| {
                    EventKind::FrameArrival {
                        phase,
                        pipeline: PipelineId(pl),
                        node: NodeId(node),
                        frame,
                    }
                }),
                (0u64..16).prop_map(|t| EventKind::LayerDone { task: TaskId(t) }),
                (0usize..4).prop_map(|phase| EventKind::PhaseStart { phase }),
                Just(EventKind::End),
                (0usize..8).prop_map(|fault| EventKind::FaultStart { fault }),
                (0usize..8).prop_map(|fault| EventKind::FaultEnd { fault }),
            ]
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            // A handful of distinct instants maximises simultaneous-event
            // permutations — the case the canonical order exists for.
            (0usize..3, 0u64..6, kind_strategy()).prop_map(|(pops, time_ns, kind)| Op {
                pops,
                time_ns,
                kind,
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn bucket_queue_pops_in_heap_order(
                ops in proptest::collection::vec(op_strategy(), 1..60),
            ) {
                let mut bucket = EventQueue::new();
                let mut heap = HeapQueue::default();
                for op in &ops {
                    for _ in 0..op.pops {
                        let a = bucket.pop();
                        let b = heap.pop();
                        prop_assert_eq!(&a, &b, "mid-stream pops must agree");
                    }
                    let t = SimTime::from_ns(op.time_ns);
                    bucket.push(t, op.kind);
                    heap.push(t, op.kind);
                }
                // Drain both to exhaustion: the full remaining sequences
                // must be identical, event by event (time, seq, and kind).
                loop {
                    let a = bucket.pop();
                    let b = heap.pop();
                    prop_assert_eq!(&a, &b, "drain pops must agree");
                    if a.is_none() {
                        break;
                    }
                }
                prop_assert_eq!(bucket.len(), 0);
            }
        }
    }
}
