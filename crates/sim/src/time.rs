use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulation time in integer nanoseconds.
///
/// Integer time keeps event ordering exact and runs reproducible; cost-model
/// latencies (f64 ns) are rounded up on entry so zero-length busy intervals
/// cannot occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as "no deadline pressure" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from a floating-point nanosecond quantity, rounding up and
    /// clamping negatives to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            SimTime(0)
        } else if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.ceil() as u64)
        }
    }

    /// Nanoseconds since time zero.
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// This time as floating-point nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64
    }

    /// This time as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Signed distance `self - other` in nanoseconds (negative when `self`
    /// precedes `other`), for slack computations.
    pub fn signed_delta_ns(self, other: SimTime) -> i128 {
        i128::from(self.0) - i128::from(other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1} µs", self.0 as f64 / 1.0e3)
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

/// A duration in milliseconds, convertible to [`SimTime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Millis(u64);

impl Millis {
    /// Creates a millisecond duration.
    pub fn new(ms: u64) -> Self {
        Millis(ms)
    }
}

impl From<Millis> for SimTime {
    fn from(m: Millis) -> SimTime {
        SimTime(m.0.saturating_mul(1_000_000))
    }
}

/// A duration in microseconds, convertible to [`SimTime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Micros(u64);

impl Micros {
    /// Creates a microsecond duration.
    pub fn new(us: u64) -> Self {
        Micros(us)
    }
}

impl From<Micros> for SimTime {
    fn from(u: Micros) -> SimTime {
        SimTime(u.0.saturating_mul(1_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from(Millis::new(2)).as_ns(), 2_000_000);
        assert_eq!(SimTime::from(Micros::new(3)).as_ns(), 3_000);
        assert_eq!(SimTime::from_ns(7).as_ns(), 7);
    }

    #[test]
    fn float_rounding_is_conservative() {
        assert_eq!(SimTime::from_ns_f64(10.2).as_ns(), 11);
        assert_eq!(SimTime::from_ns_f64(-5.0).as_ns(), 0);
        assert_eq!(SimTime::from_ns_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(30);
        assert_eq!((a + b).as_ns(), 130);
        assert_eq!((a - b).as_ns(), 70);
        assert_eq!(b.saturating_sub(a).as_ns(), 0);
        assert_eq!(b.signed_delta_ns(a), -70);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_ns(500).to_string(), "500 ns");
        assert_eq!(SimTime::from_ns(1_500).to_string(), "1.5 µs");
        assert!(SimTime::from_ns(2_500_000).to_string().contains("ms"));
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimTime::from_ns(1), SimTime::MAX);
    }
}
