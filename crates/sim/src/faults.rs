//! Deterministic fault injection: replayable per-accelerator fault plans.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s — transient
//! stalls (the accelerator is unavailable for a window), permanent
//! failures, and slowdowns (a latency multiplier over a window) — that the
//! engine turns into canonical-rank events on the same queue as arrivals
//! and completions. A fault schedule is therefore *just another replayable
//! input*: the same plan under the same seed reproduces the same degraded
//! run bit-for-bit, so every failure scenario is auditable from its trace.
//!
//! Plans come from two sources, mirroring arrivals:
//!
//! * [`FaultPlan::storm`] — a randomized-but-seeded storm drawn from the
//!   counter-based [`DeterministicCoin`] (gate namespace `5000+`, after
//!   the cascade/skip/exit/arrival namespaces);
//! * [`FaultPlan::parse`] — a recorded text/CSV fault trace, the same
//!   loader idiom as [`ArrivalTrace`](crate::ArrivalTrace).
//!
//! **Order is identity.** An event's position in the plan is its tie-break
//! key inside the event queue, so two plans with the same events in a
//! different order are different plans. [`FaultPlan::to_csv`] preserves
//! construction order for exactly this reason, and live-admitted faults
//! (see [`LiveSession::admit_fault`](crate::LiveSession::admit_fault))
//! append after any installed plan so batch replay reconstructs identical
//! tie keys.
//!
//! # Trace file format
//!
//! One fault per line, `#` starts a comment and blank lines are ignored:
//!
//! ```text
//! # at_ns,acc,kind[,duration_ns[,factor]]
//! 1000000,0,stall,500000
//! 2000000,1,fail
//! 3000000,2,slow,4000000,2.5
//! ```
//!
//! `stall` takes a duration, `fail` is permanent (no further fields), and
//! `slow` takes a duration plus a latency factor `>= 1`.

use std::fmt::Write as _;

use dream_cost::AcceleratorId;

use crate::determ::{DeterministicCoin, Fnv64};
use crate::{SimError, SimTime};

/// Coin-gate namespace for fault-storm draws (cascade/skip/exit use 0,
/// 1000+, 2000+; arrival draws use 3000+/4000+; see `engine::dynamics`
/// and `arrivals`).
const GATE_FAULT: u64 = 5_000;

/// What goes wrong with an accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The accelerator is unavailable for new dispatches for `duration`.
    /// In-flight work finishes; the accelerator rejoins the idle pool when
    /// the stall window closes.
    Stall {
        /// How long the accelerator stays unavailable.
        duration: SimTime,
    },
    /// The accelerator fails permanently: in-flight work on it is aborted
    /// and requeued, and it never rejoins the idle pool.
    Fail,
    /// Layers dispatched to the accelerator run `factor` times slower for
    /// `duration`. Does not mask the accelerator; concurrent slowdowns
    /// compound multiplicatively.
    Slowdown {
        /// Latency multiplier, `>= 1`.
        factor: f64,
        /// How long the slowdown window lasts.
        duration: SimTime,
    },
}

impl FaultKind {
    /// The window length for windowed faults (`None` for [`FaultKind::Fail`],
    /// which is permanent).
    pub fn duration(&self) -> Option<SimTime> {
        match self {
            FaultKind::Stall { duration } | FaultKind::Slowdown { duration, .. } => Some(*duration),
            FaultKind::Fail => None,
        }
    }
}

/// One fault: what happens to which accelerator, when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// The accelerator it strikes.
    pub acc: AcceleratorId,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Randomized-but-seeded storm shape for [`FaultPlan::storm`].
///
/// The horizon is divided into `slot`-wide windows; per accelerator and
/// window the coin decides independently whether a stall, a slowdown, or a
/// permanent failure begins inside it (offsets, durations, and slowdown
/// factors are further uniform draws). All draws are pure functions of
/// `(seed, acc, slot, gate)`, so the storm is fully determined by its
/// seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormConfig {
    /// Draw-window width.
    pub slot: SimTime,
    /// Per-(acc, slot) probability that a stall begins in the slot.
    pub p_stall: f64,
    /// Per-(acc, slot) probability that a slowdown begins in the slot.
    pub p_slowdown: f64,
    /// Per-(acc, slot) probability of permanent failure (first hit wins;
    /// a failed accelerator draws no further faults).
    pub p_fail: f64,
    /// Slowdown factors are drawn uniformly from `[1, max_factor]`.
    pub max_factor: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            slot: SimTime::from_ns(10_000_000),
            p_stall: 0.10,
            p_slowdown: 0.10,
            p_fail: 0.01,
            max_factor: 4.0,
        }
    }
}

/// An ordered, replayable schedule of accelerator faults.
///
/// See the [module docs](self) for sources, ordering semantics, and the
/// trace file format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from events, preserving their order (order is the
    /// queue tie-break identity — see the [module docs](self)).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Appends one fault, returning its plan index.
    pub fn push(&mut self, event: FaultEvent) -> usize {
        self.events.push(event);
        self.events.len() - 1
    }

    /// The events in plan order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the plan against a platform width: accelerator indices must
    /// be in range and slowdown factors finite and `>= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] describing the first offending
    /// entry.
    pub fn validate(&self, acc_count: usize) -> Result<(), SimError> {
        for (idx, ev) in self.events.iter().enumerate() {
            if ev.acc.0 >= acc_count {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "fault {idx} targets accelerator {} but the platform has {acc_count}",
                        ev.acc.0
                    ),
                });
            }
            if let FaultKind::Slowdown { factor, .. } = ev.kind {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(SimError::InvalidFault {
                        reason: format!("fault {idx}: slowdown factor must be >= 1, got {factor}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Draws a seeded fault storm over `acc_count` accelerators and
    /// `[0, horizon)`. Same seed, same storm — see [`StormConfig`].
    pub fn storm(seed: u64, acc_count: usize, horizon: SimTime, cfg: StormConfig) -> Self {
        let coin = DeterministicCoin::new(seed);
        let slot_ns = cfg.slot.as_ns().max(1);
        let slots = horizon.as_ns().div_ceil(slot_ns);
        let mut events = Vec::new();
        for acc in 0..acc_count {
            'slots: for s in 0..slots {
                let base = s * slot_ns;
                let offset = |gate: u64| {
                    let u = coin.uniform(acc, 0, s, GATE_FAULT + gate);
                    SimTime::from_ns(base + (u * slot_ns as f64) as u64).min(horizon)
                };
                if coin.decide(acc, 0, s, GATE_FAULT, cfg.p_fail) {
                    let at = offset(1);
                    if at < horizon {
                        events.push(FaultEvent {
                            at,
                            acc: AcceleratorId(acc),
                            kind: FaultKind::Fail,
                        });
                    }
                    // A failed accelerator draws no further faults.
                    break 'slots;
                }
                if coin.decide(acc, 0, s, GATE_FAULT + 2, cfg.p_stall) {
                    let at = offset(3);
                    let u = coin.uniform(acc, 0, s, GATE_FAULT + 4);
                    let dur = SimTime::from_ns(((u * slot_ns as f64) as u64).max(1));
                    if at < horizon {
                        events.push(FaultEvent {
                            at,
                            acc: AcceleratorId(acc),
                            kind: FaultKind::Stall { duration: dur },
                        });
                    }
                }
                if coin.decide(acc, 0, s, GATE_FAULT + 5, cfg.p_slowdown) {
                    let at = offset(6);
                    let u_dur = coin.uniform(acc, 0, s, GATE_FAULT + 7);
                    let dur = SimTime::from_ns(((u_dur * slot_ns as f64) as u64).max(1));
                    let u_f = coin.uniform(acc, 0, s, GATE_FAULT + 8);
                    let factor = 1.0 + u_f * (cfg.max_factor - 1.0).max(0.0);
                    if at < horizon {
                        events.push(FaultEvent {
                            at,
                            acc: AcceleratorId(acc),
                            kind: FaultKind::Slowdown {
                                factor,
                                duration: dur,
                            },
                        });
                    }
                }
            }
        }
        FaultPlan { events }
    }

    /// Parses the text/CSV form (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |what: &str| SimError::InvalidFault {
                reason: format!("line {}: {what}: {line:?}", lineno + 1),
            };
            let mut fields = line.split(',').map(str::trim);
            let mut u64_field = |what: &str| {
                fields
                    .next()
                    .and_then(|f| f.parse::<u64>().ok())
                    .ok_or_else(|| bad(&format!("missing/invalid {what}")))
            };
            let at = SimTime::from_ns(u64_field("at_ns")?);
            let acc = AcceleratorId(u64_field("acc")? as usize);
            let kind = fields.next().ok_or_else(|| bad("missing kind"))?;
            let kind = match kind {
                "stall" => {
                    let dur = fields
                        .next()
                        .and_then(|f| f.parse::<u64>().ok())
                        .ok_or_else(|| bad("missing/invalid stall duration_ns"))?;
                    FaultKind::Stall {
                        duration: SimTime::from_ns(dur),
                    }
                }
                "fail" => FaultKind::Fail,
                "slow" => {
                    let dur = fields
                        .next()
                        .and_then(|f| f.parse::<u64>().ok())
                        .ok_or_else(|| bad("missing/invalid slowdown duration_ns"))?;
                    let factor = fields
                        .next()
                        .and_then(|f| f.parse::<f64>().ok())
                        .filter(|f| f.is_finite() && *f >= 1.0)
                        .ok_or_else(|| bad("missing/invalid slowdown factor (must be >= 1)"))?;
                    FaultKind::Slowdown {
                        factor,
                        duration: SimTime::from_ns(dur),
                    }
                }
                other => return Err(bad(&format!("unknown fault kind {other:?}"))),
            };
            if fields.next().is_some() {
                return Err(bad("too many fields"));
            }
            events.push(FaultEvent { at, acc, kind });
        }
        Ok(FaultPlan { events })
    }

    /// Renders the text/CSV form, preserving plan order (order is the
    /// queue tie-break identity, so this round-trips through
    /// [`FaultPlan::parse`] exactly).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# at_ns,acc,kind[,duration_ns[,factor]]\n");
        for ev in &self.events {
            match ev.kind {
                FaultKind::Stall { duration } => {
                    let _ = writeln!(
                        out,
                        "{},{},stall,{}",
                        ev.at.as_ns(),
                        ev.acc.0,
                        duration.as_ns()
                    );
                }
                FaultKind::Fail => {
                    let _ = writeln!(out, "{},{},fail", ev.at.as_ns(), ev.acc.0);
                }
                FaultKind::Slowdown { factor, duration } => {
                    let _ = writeln!(
                        out,
                        "{},{},slow,{},{}",
                        ev.at.as_ns(),
                        ev.acc.0,
                        duration.as_ns(),
                        factor
                    );
                }
            }
        }
        out
    }

    /// A deterministic digest of every entry, in plan order.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for ev in &self.events {
            h.mix(ev.at.as_ns());
            h.mix(ev.acc.0 as u64);
            match ev.kind {
                FaultKind::Stall { duration } => {
                    h.mix(1);
                    h.mix(duration.as_ns());
                }
                FaultKind::Fail => h.mix(2),
                FaultKind::Slowdown { factor, duration } => {
                    h.mix(3);
                    h.mix(duration.as_ns());
                    h.mix(factor.to_bits());
                }
            }
        }
        h.finish()
    }
}

/// Per-accelerator fault state the engine carries while a plan (or live
/// fault admissions) are installed. `None` on the engine means the fault
/// seam is completely inert.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    plan: FaultPlan,
    accs: Vec<AccFaultState>,
}

/// One accelerator's live fault state.
#[derive(Debug, Clone, Default)]
pub(crate) struct AccFaultState {
    /// Permanently failed (never unmasks).
    pub(crate) failed: bool,
    /// Number of open stall windows (masked while > 0).
    pub(crate) stall_depth: u32,
    /// Active slowdowns as `(plan index, factor)` in activation order —
    /// the canonical multiplication order for compounding.
    pub(crate) slow: Vec<(usize, f64)>,
}

impl AccFaultState {
    /// Whether the accelerator is currently excluded from dispatch.
    pub(crate) fn masked(&self) -> bool {
        self.failed || self.stall_depth > 0
    }
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan, acc_count: usize) -> Self {
        FaultRuntime {
            plan,
            accs: vec![AccFaultState::default(); acc_count],
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn event(&self, idx: usize) -> FaultEvent {
        self.plan.events[idx]
    }

    /// Appends a live-admitted fault, returning its plan index (the queue
    /// tie-break key batch replay will reconstruct).
    pub(crate) fn push_live(&mut self, event: FaultEvent) -> usize {
        self.plan.push(event)
    }

    pub(crate) fn acc(&self, acc: AcceleratorId) -> &AccFaultState {
        &self.accs[acc.0]
    }

    pub(crate) fn acc_mut(&mut self, acc: AcceleratorId) -> &mut AccFaultState {
        &mut self.accs[acc.0]
    }

    /// Whether any fault is in effect right now (drives the
    /// `deadline_miss_under_faults` attribution).
    pub(crate) fn any_active(&self) -> bool {
        self.accs
            .iter()
            .any(|a| a.failed || a.stall_depth > 0 || !a.slow.is_empty())
    }

    /// The latency multiplier a gang dispatch pays: per accelerator the
    /// product of its active slowdown factors in activation order, and the
    /// gang runs at its slowest member. Exactly `1.0` when no slowdown is
    /// active, so callers can skip the rescale entirely.
    pub(crate) fn gang_slow_factor(&self, accs: &[AcceleratorId]) -> f64 {
        let mut worst = 1.0f64;
        for &acc in accs {
            let mut product = 1.0f64;
            for &(_, factor) in &self.accs[acc.0].slow {
                product *= factor;
            }
            if product > worst {
                worst = product;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_is_seed_deterministic() {
        let cfg = StormConfig::default();
        let horizon = SimTime::from_ns(100_000_000);
        let a = FaultPlan::storm(7, 4, horizon, cfg);
        let b = FaultPlan::storm(7, 4, horizon, cfg);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = FaultPlan::storm(8, 4, horizon, cfg);
        assert_ne!(a.digest(), c.digest(), "seeds should decorrelate");
        assert!(
            !a.is_empty(),
            "default storm over 4 accs should draw faults"
        );
        for ev in a.events() {
            assert!(ev.at < horizon);
            assert!(ev.acc.0 < 4);
            if let FaultKind::Slowdown { factor, .. } = ev.kind {
                assert!((1.0..=4.0).contains(&factor));
            }
        }
    }

    #[test]
    fn failed_accelerator_draws_no_further_faults() {
        let cfg = StormConfig {
            p_fail: 1.0,
            ..StormConfig::default()
        };
        let plan = FaultPlan::storm(1, 3, SimTime::from_ns(100_000_000), cfg);
        assert_eq!(plan.len(), 3, "one permanent failure per accelerator");
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::Fail)));
    }

    #[test]
    fn csv_roundtrips_preserving_order() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: SimTime::from_ns(300),
                acc: AcceleratorId(2),
                kind: FaultKind::Slowdown {
                    factor: 2.5,
                    duration: SimTime::from_ns(40),
                },
            },
            FaultEvent {
                at: SimTime::from_ns(100),
                acc: AcceleratorId(0),
                kind: FaultKind::Stall {
                    duration: SimTime::from_ns(50),
                },
            },
            FaultEvent {
                at: SimTime::from_ns(200),
                acc: AcceleratorId(1),
                kind: FaultKind::Fail,
            },
        ]);
        let reparsed = FaultPlan::parse(&plan.to_csv()).unwrap();
        assert_eq!(plan, reparsed, "to_csv/parse must preserve plan order");
        assert_eq!(plan.digest(), reparsed.digest());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "abc,0,stall,5",
            "1,0,melt",
            "1,0,stall",
            "1,0,slow,5",
            "1,0,slow,5,0.5",
            "1,0,slow,5,nan",
            "1,0,fail,9",
            "1,0,stall,5,6",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidFault { .. }),
                "{bad:?} should be rejected, got {err:?}"
            );
        }
        assert!(FaultPlan::parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn validate_checks_range_and_factors() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: SimTime::ZERO,
            acc: AcceleratorId(3),
            kind: FaultKind::Fail,
        });
        assert!(plan.validate(4).is_ok());
        assert!(matches!(
            plan.validate(3),
            Err(SimError::InvalidFault { .. })
        ));
        plan.push(FaultEvent {
            at: SimTime::ZERO,
            acc: AcceleratorId(0),
            kind: FaultKind::Slowdown {
                factor: 0.5,
                duration: SimTime::from_ns(1),
            },
        });
        assert!(matches!(
            plan.validate(4),
            Err(SimError::InvalidFault { .. })
        ));
    }

    #[test]
    fn gang_slow_factor_compounds_and_takes_worst() {
        let mut rt = FaultRuntime::new(FaultPlan::new(), 3);
        assert_eq!(
            rt.gang_slow_factor(&[AcceleratorId(0), AcceleratorId(1)]),
            1.0
        );
        rt.acc_mut(AcceleratorId(0)).slow.push((0, 2.0));
        rt.acc_mut(AcceleratorId(0)).slow.push((1, 3.0));
        rt.acc_mut(AcceleratorId(1)).slow.push((2, 4.0));
        assert_eq!(rt.gang_slow_factor(&[AcceleratorId(0)]), 6.0);
        assert_eq!(
            rt.gang_slow_factor(&[AcceleratorId(0), AcceleratorId(1)]),
            6.0
        );
        assert_eq!(
            rt.gang_slow_factor(&[AcceleratorId(1), AcceleratorId(2)]),
            4.0
        );
        assert!(rt.any_active());
    }
}
