//! Wide stepping: many [`LiveSession`]s advanced round-robin against one
//! shared workload store.
//!
//! A serving shard hosts *hundreds* of concurrent sessions of the same
//! deployment — same platform, same scenario, same cost calibration. Run
//! naively, every session would rebuild and privately own the offline
//! cost tables (the expensive, immutable majority of a session's state).
//! [`MultiSession`] amortizes that: it builds the [`WorkloadSet`] **once**
//! and installs the same `Arc` into every session through the
//! digest-validated prebuilt seam, so per-session state shrinks to the
//! genuinely dynamic part — the task arena, the event queue, and the
//! metrics.
//!
//! Stepping is deterministic round-robin: [`MultiSession::step_until`]
//! advances every session to the same frontier in index order. Sessions
//! share no mutable state, so the interleaving cannot couple them — each
//! session's outcome is bit-identical to running it alone (asserted by
//! the tests below), and each still carries the full per-session replay
//! guarantee of [`crate::live`].

use std::sync::Arc;

use dream_cost::{CostBackend, CostModel, Platform};
use dream_models::{NodeId, PipelineId, Scenario};

use crate::engine::SimOutcome;
use crate::live::{
    Admission, LiveError, LiveSession, LiveSessionBuilder, LiveSessionRecord, LiveStatus,
    DEFAULT_HORIZON_CAP_NS,
};
use crate::scheduler::Scheduler;
use crate::workload::WorkloadSet;
use crate::SimTime;

/// Configures and starts a [`MultiSession`].
#[derive(Debug)]
pub struct MultiSessionBuilder {
    platform: Platform,
    scenario: Scenario,
    seed_base: u64,
    cost: Arc<dyn CostBackend>,
    cap: SimTime,
}

impl MultiSessionBuilder {
    /// Starts a builder for sessions all serving `scenario` on `platform`.
    pub fn new(platform: Platform, scenario: Scenario) -> Self {
        MultiSessionBuilder {
            platform,
            scenario,
            seed_base: 0,
            cost: Arc::new(CostModel::paper_default()),
            cap: SimTime::from_ns(DEFAULT_HORIZON_CAP_NS),
        }
    }

    /// Sets the base workload-realization seed: session `i` runs with seed
    /// `base + i` (default base 0).
    pub fn seed_base(mut self, seed_base: u64) -> Self {
        self.seed_base = seed_base;
        self
    }

    /// Replaces the cost backend (default: the analytical model with the
    /// paper calibration). The offline tables are built once with it and
    /// shared by every session.
    pub fn cost_backend(mut self, backend: Arc<dyn CostBackend>) -> Self {
        self.cost = backend;
        self
    }

    /// Sets the per-session hard horizon cap (default:
    /// [`DEFAULT_HORIZON_CAP_NS`], effectively open-ended).
    pub fn horizon_cap(mut self, cap: impl Into<SimTime>) -> Self {
        self.cap = cap.into();
        self
    }

    /// Builds the shared workload once and starts `count` sessions, the
    /// `i`-th under the scheduler `make_scheduler(i)` returns.
    ///
    /// # Errors
    ///
    /// Fails when the backend cannot cost the scenario, or on a zero
    /// horizon cap.
    pub fn start(
        self,
        count: usize,
        mut make_scheduler: impl FnMut(usize) -> Box<dyn Scheduler>,
    ) -> Result<MultiSession, LiveError> {
        let proto = LiveSessionBuilder::new(self.platform.clone(), self.scenario.clone())
            .cost_backend(Arc::clone(&self.cost))
            .horizon_cap(self.cap);
        let shared = Arc::new(proto.build_workload()?);
        let mut sessions = Vec::with_capacity(count);
        for i in 0..count {
            let session = LiveSessionBuilder::new(self.platform.clone(), self.scenario.clone())
                .cost_backend(Arc::clone(&self.cost))
                .horizon_cap(self.cap)
                .seed(self.seed_base + i as u64)
                .prebuilt_workload(Arc::clone(&shared))
                .start(make_scheduler(i))?;
            sessions.push(session);
        }
        Ok(MultiSession { shared, sessions })
    }
}

/// Many concurrent [`LiveSession`]s over one shared workload store,
/// stepped round-robin to a common frontier.
///
/// See the [module docs](self) for the sharing and determinism model.
#[derive(Debug)]
pub struct MultiSession {
    shared: Arc<WorkloadSet>,
    sessions: Vec<LiveSession>,
}

impl MultiSession {
    /// Number of sessions (finished ones included).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the shard hosts no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The workload store every session shares.
    pub fn workload(&self) -> &Arc<WorkloadSet> {
        &self.shared
    }

    /// Borrows session `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn session(&self, index: usize) -> &LiveSession {
        &self.sessions[index]
    }

    /// Mutably borrows session `index` — for per-session orders (swap,
    /// drain) the round-robin API does not wrap.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn session_mut(&mut self, index: usize) -> &mut LiveSession {
        &mut self.sessions[index]
    }

    /// Admits one root-frame request into session `index` — exactly
    /// [`LiveSession::admit`].
    ///
    /// # Errors
    ///
    /// The session's admission errors, verbatim.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn admit(
        &mut self,
        index: usize,
        pipeline: PipelineId,
        node: NodeId,
        stamp: SimTime,
    ) -> Result<Admission, LiveError> {
        self.sessions[index].admit(pipeline, node, stamp)
    }

    /// Steps every session to `frontier`, in index order, and returns the
    /// number still running. The order is part of the determinism
    /// contract, but since sessions share no mutable state it cannot
    /// change any session's outcome — only the wall-clock interleaving.
    pub fn step_until(&mut self, frontier: SimTime) -> usize {
        let mut running = 0;
        for session in &mut self.sessions {
            if session.step_until(frontier) == LiveStatus::Running {
                running += 1;
            }
        }
        running
    }

    /// Total events pending across every session's queue — the shard's
    /// aggregate event backlog.
    pub fn event_queue_depth(&self) -> usize {
        self.sessions
            .iter()
            .map(LiveSession::event_queue_depth)
            .sum()
    }

    /// Finishes every session in index order (draining those not already
    /// drained), returning each outcome with its replayable record.
    ///
    /// # Errors
    ///
    /// Propagates the first session's finish error.
    pub fn finish(self) -> Result<Vec<(SimOutcome, LiveSessionRecord)>, LiveError> {
        self.sessions.into_iter().map(LiveSession::finish).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Assignment, Decision, SystemView};
    use crate::workload::{ModelKey, NodeInfo};
    use dream_cost::PlatformPreset;
    use dream_models::{CascadeProbability, ScenarioKind};

    /// First ready task onto the first idle accelerator (the in-crate
    /// stand-in for the downstream baselines).
    #[derive(Debug, Default)]
    struct Fcfs;

    impl Scheduler for Fcfs {
        fn name(&self) -> &str {
            "fcfs-stub"
        }

        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            let mut d = Decision::none();
            let mut idle = view.idle_ids().iter();
            for &task in view.ready_ids() {
                let Some(&acc) = idle.next() else { break };
                d.assignments.push(Assignment::single(task, acc));
            }
            d
        }
    }

    fn scenario() -> Scenario {
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::new(0.5).unwrap())
    }

    fn roots(ws: &WorkloadSet) -> Vec<ModelKey> {
        ws.nodes()
            .filter(|n| n.key().phase == 0 && n.parent().is_none())
            .map(NodeInfo::key)
            .collect()
    }

    /// Drives a distinct admission stream into each session, interleaved
    /// round-robin, occasionally advancing a frontier that stays strictly
    /// below every future stamp (so no admission is clamped and the same
    /// stamps can be fed to a solo session without any stepping at all).
    fn drive(
        admit: &mut dyn FnMut(usize, PipelineId, NodeId, SimTime),
        step: &mut dyn FnMut(SimTime),
        keys: &[ModelKey],
        sessions: usize,
    ) {
        let mut t = vec![0u64; sessions];
        for i in 0..60u64 {
            for (s, t) in t.iter_mut().enumerate() {
                let k = keys[((i + s as u64) % keys.len() as u64) as usize];
                *t += 600_000 + (s as u64 + 1) * 90_000 + (i % 5) * 40_000;
                admit(s, k.pipeline, k.node, SimTime::from_ns(*t));
            }
            if i % 4 == 3 {
                let min_t = *t.iter().min().unwrap();
                step(SimTime::from_ns(min_t - 500_000));
            }
        }
    }

    #[test]
    fn sessions_share_one_workload_store() {
        let multi =
            MultiSessionBuilder::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario())
                .start(3, |_| Box::new(Fcfs))
                .unwrap();
        for i in 0..multi.len() {
            assert!(
                Arc::ptr_eq(multi.workload(), multi.session(i).workload()),
                "session {i} must borrow the shared tables, not own a copy"
            );
        }
    }

    /// The wide-stepping guarantee: a session stepped round-robin inside a
    /// shard produces bit-identical metrics to the same session run alone.
    #[test]
    fn round_robin_stepping_is_invisible_per_session() {
        const N: usize = 3;
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);

        let multi = std::cell::RefCell::new(
            MultiSessionBuilder::new(platform.clone(), scenario())
                .seed_base(5)
                .start(N, |_| Box::new(Fcfs))
                .unwrap(),
        );
        let keys = roots(multi.borrow().workload());
        // Interleave admissions and frontier slices across sessions.
        drive(
            &mut |s, p, n, at| {
                multi.borrow_mut().admit(s, p, n, at).unwrap();
            },
            &mut |frontier| {
                multi.borrow_mut().step_until(frontier);
            },
            &keys,
            N,
        );
        let wide = multi.into_inner().finish().unwrap();

        for (s, (wide_outcome, _)) in wide.iter().enumerate() {
            let mut solo = LiveSessionBuilder::new(platform.clone(), scenario())
                .seed(5 + s as u64)
                .start(Box::new(Fcfs))
                .unwrap();
            // Same stamps, but never stepped until the end: the solo run
            // exercises a completely different slicing.
            drive(
                &mut |which, p, n, at| {
                    if which == s {
                        solo.admit(p, n, at).unwrap();
                    }
                },
                &mut |_| {},
                &keys,
                N,
            );
            let (solo_outcome, _) = solo.finish().unwrap();
            assert_eq!(
                wide_outcome.metrics().fingerprint(),
                solo_outcome.metrics().fingerprint(),
                "session {s} diverged when stepped inside the shard"
            );
        }
    }

    #[test]
    fn aggregate_queue_depth_sums_sessions() {
        let mut multi =
            MultiSessionBuilder::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario())
                .start(2, |_| Box::new(Fcfs))
                .unwrap();
        let keys = roots(multi.workload());
        let k = keys[0];
        // Each session starts with PhaseStart + End pending.
        let base = multi.event_queue_depth();
        assert_eq!(base, 4);
        multi
            .admit(0, k.pipeline, k.node, SimTime::from_ns(10))
            .unwrap();
        multi
            .admit(1, k.pipeline, k.node, SimTime::from_ns(10))
            .unwrap();
        assert_eq!(multi.event_queue_depth(), base + 2);
        assert_eq!(
            multi.event_queue_depth(),
            multi.session(0).event_queue_depth() + multi.session(1).event_queue_depth()
        );
    }
}
