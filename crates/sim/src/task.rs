use std::collections::VecDeque;

use dream_cost::AcceleratorId;
use dream_models::{ExitPoint, SkipBlock, VariantId};

use crate::fold::canonical_sum;
use crate::workload::{LayerId, ModelKey, NodeInfo, WorkloadSet};
use crate::SimTime;

/// Unique identifier of an inference task (one model × one frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Execution state of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for its next layer to be dispatched.
    Ready,
    /// Its current layer is executing on the given accelerator(s).
    Running(Vec<AcceleratorId>),
}

/// One layer still to execute, in queue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedLayer {
    /// Global layer id (cost-table key).
    pub layer: LayerId,
    /// Index of the layer within its variant graph (gate coordinate space).
    pub graph_idx: usize,
}

/// One remaining layer's contribution to the cached remaining-work terms,
/// aligned with the task's queue. Products are frozen against a gate set
/// (they only depend on gate state and the offline tables), so serving a
/// read after a head completion just re-sums the tail instead of
/// re-walking gates and tables.
#[derive(Debug, Clone, Copy)]
struct ToGoContrib {
    /// `layer_probability(graph_idx) · avg_latency_ns(layer)`.
    avg: f64,
    /// `min_latency_ns(layer)` — counted only when `certain`.
    min: f64,
    /// Whether the layer is certain to execute (`probability ≥ 1`).
    certain: bool,
}

/// Lazily maintained remaining-work state behind [`Task::to_go_avg_ns`]
/// and [`Task::min_to_go_ns`]. Mutations only *invalidate* (a head pop
/// additionally drops the head's frozen product — no float ops); the
/// first read after a mutation repairs exactly the stale level: a gate
/// change re-freezes the products (`O(layers · gates)`), a head pop just
/// re-folds the unchanged tail (`O(layers)` additions). Schedulers that
/// never read the terms — and the engine's own event loop — pay nothing.
#[derive(Debug, Clone)]
struct ToGoCache {
    /// Frozen per-layer products, aligned with `remaining` while
    /// `products_valid`.
    contrib: VecDeque<ToGoContrib>,
    /// Whether `contrib` reflects the current gate set and queue.
    products_valid: bool,
    /// `(ToGo, minimum_to_go)` folded from `contrib`; `None` when stale.
    sums: Option<(f64, f64)>,
}

/// An active inference request: the paper's `tsk`, with its remaining-layer
/// queue (`Q_task`), timing contract, and unresolved dynamic gates.
#[derive(Debug, Clone)]
pub struct Task {
    id: TaskId,
    key: ModelKey,
    variant: VariantId,
    frame: u64,
    frame_arrival: SimTime,
    released: SimTime,
    deadline: SimTime,
    counted: bool,
    state: TaskState,
    remaining: VecDeque<QueuedLayer>,
    pending_skips: Vec<SkipBlock>,
    pending_exits: Vec<ExitPoint>,
    last_completion: SimTime,
    executed_layers: u32,
    energy_pj: f64,
    /// Lazy remaining-work cache (see [`ToGoCache`]). Interior mutability
    /// lets shared-view readers (the scheduler's `&Task`) repair it; the
    /// borrow never escapes a single accessor call.
    to_go: std::cell::RefCell<ToGoCache>,
}

impl Task {
    // Crate-internal constructor with one caller per release path; the
    // timing contract reads better flat than behind a params struct.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: TaskId,
        node: &NodeInfo,
        frame: u64,
        frame_arrival: SimTime,
        released: SimTime,
        deadline: SimTime,
        counted: bool,
        ws: &WorkloadSet,
    ) -> Self {
        let mut task = Task {
            id,
            key: node.key(),
            variant: VariantId(0),
            frame,
            frame_arrival,
            released,
            deadline,
            counted,
            state: TaskState::Ready,
            remaining: VecDeque::new(),
            pending_skips: Vec::new(),
            pending_exits: Vec::new(),
            last_completion: released,
            executed_layers: 0,
            energy_pj: 0.0,
            to_go: std::cell::RefCell::new(ToGoCache {
                contrib: VecDeque::new(),
                products_valid: false,
                sums: None,
            }),
        };
        // Delegate to reinit so a fresh task and a recycled shell run the
        // identical initialisation (and float-op) sequence.
        task.reinit(
            id,
            node,
            frame,
            frame_arrival,
            released,
            deadline,
            counted,
            ws,
        );
        task
    }

    /// Reinitialises a retired task shell in place for a new release —
    /// field-for-field what [`Task::new`] produces, but reusing the
    /// shell's queue and gate buffers so steady-state task release
    /// allocates nothing (the engine pools shells of finished, flushed,
    /// and dropped tasks).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reinit(
        &mut self,
        id: TaskId,
        node: &NodeInfo,
        frame: u64,
        frame_arrival: SimTime,
        released: SimTime,
        deadline: SimTime,
        counted: bool,
        ws: &WorkloadSet,
    ) {
        let variant = VariantId(0);
        let plan = node.variant(variant);
        self.id = id;
        self.key = node.key();
        self.variant = variant;
        self.frame = frame;
        self.frame_arrival = frame_arrival;
        self.released = released;
        self.deadline = deadline;
        self.counted = counted;
        self.state = TaskState::Ready;
        self.remaining.clear();
        self.remaining.extend(
            plan.layers
                .iter()
                .enumerate()
                .map(|(graph_idx, &layer)| QueuedLayer { layer, graph_idx }),
        );
        self.pending_skips.clear();
        self.pending_skips.extend_from_slice(&plan.skip_blocks);
        self.pending_exits.clear();
        self.pending_exits.extend_from_slice(&plan.exit_points);
        self.last_completion = released;
        self.executed_layers = 0;
        self.energy_pj = 0.0;
        self.invalidate_to_go();
        let _ = ws;
    }

    /// Marks the remaining-work cache wholly stale after a gate-set or
    /// queue-replacement mutation: the frozen products no longer match,
    /// so the next read re-freezes them before re-folding. Invalidation
    /// is the *only* per-mutation cost — the engine's event loop never
    /// walks tables or sums.
    fn invalidate_to_go(&mut self) {
        let cache = self.to_go.get_mut();
        cache.products_valid = false;
        cache.sums = None;
    }

    /// The canonical `ToGo(tsk)` walk: `Σ p(layer) · avg_lat(layer)` over
    /// the remaining queue, left to right. Cached reads serve exactly
    /// this sum's bits.
    fn compute_to_go_avg(&self, ws: &WorkloadSet) -> f64 {
        canonical_sum(
            self.remaining
                .iter()
                .map(|q| self.layer_probability(q.graph_idx) * ws.avg_latency_ns(q.layer)),
        )
    }

    fn compute_min_to_go(&self, ws: &WorkloadSet) -> f64 {
        canonical_sum(
            self.remaining
                .iter()
                .filter(|q| self.layer_probability(q.graph_idx) >= 1.0)
                .map(|q| ws.min_latency_ns(q.layer)),
        )
    }

    /// Unique id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Which deployed model this task is an inference of.
    pub fn key(&self) -> ModelKey {
        self.key
    }

    /// The variant currently selected (always 0 unless a scheduler switched
    /// a supernet task).
    pub fn variant(&self) -> VariantId {
        self.variant
    }

    /// Frame index within its pipeline stream.
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Arrival time of the originating (root) frame.
    pub fn frame_arrival(&self) -> SimTime {
        self.frame_arrival
    }

    /// When this task became ready (for roots: frame arrival; for cascade
    /// children: the parent's completion).
    pub fn released(&self) -> SimTime {
        self.released
    }

    /// Absolute deadline.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// Whether this frame counts toward metrics (false for frames whose
    /// deadline falls outside the measurement horizon).
    pub fn counted(&self) -> bool {
        self.counted
    }

    /// Current execution state.
    pub fn state(&self) -> &TaskState {
        &self.state
    }

    /// Whether the task is waiting for dispatch.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, TaskState::Ready)
    }

    /// Remaining layers, head first (`Q_task`).
    pub fn remaining(&self) -> impl ExactSizeIterator<Item = &QueuedLayer> {
        self.remaining.iter()
    }

    /// The head of the queue — Algorithm 1's `NextLayer(tsk)`.
    pub fn next_layer(&self) -> Option<QueuedLayer> {
        self.remaining.front().copied()
    }

    /// Completion time of the lastly scheduled layer (the paper's
    /// `Tcmpl`), initialised to the release time.
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// Number of layers already executed.
    pub fn executed_layers(&self) -> u32 {
        self.executed_layers
    }

    /// Whether any layer has executed (variant switches are only legal
    /// before this point).
    pub fn started(&self) -> bool {
        self.executed_layers > 0
    }

    /// Energy charged to this task so far (pJ).
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Probability that the remaining layer at `graph_idx` actually
    /// executes, given the gates still unresolved. Resolved gates no longer
    /// contribute — this is the *conditional* execution probability the
    /// paper's "constrained dynamicity" exposes to the scheduler.
    pub fn layer_probability(&self, graph_idx: usize) -> f64 {
        let mut p = 1.0;
        for blk in &self.pending_skips {
            if graph_idx >= blk.first && graph_idx <= blk.last {
                p *= 1.0 - blk.p_skip;
            }
        }
        for exit in &self.pending_exits {
            if graph_idx > exit.after {
                p *= 1.0 - exit.p_exit;
            }
        }
        p
    }

    /// Serves the cached `(ToGo, minimum_to_go)` pair, repairing exactly
    /// the stale cache level first (see [`ToGoCache`]). The re-freeze and
    /// the `-0.0`-seeded left-to-right fold repeat byte-for-byte the
    /// operations of the reference `.sum()` walks
    /// ([`Task::compute_to_go_avg`] / [`Task::compute_min_to_go`]), so a
    /// cached read is bit-identical to a fresh walk — the debug asserts
    /// in the public accessors pin that down.
    // detlint: canonical-fold -- interleaved avg/min fold over cached contribs; replays the reference canonical_sum walks bit-for-bit (pinned by debug asserts in the accessors)
    fn to_go_pair(&self, ws: &WorkloadSet) -> (f64, f64) {
        let mut cache = self.to_go.borrow_mut();
        if !cache.products_valid {
            cache.contrib.clear();
            for q in &self.remaining {
                let p = self.layer_probability(q.graph_idx);
                cache.contrib.push_back(ToGoContrib {
                    avg: p * ws.avg_latency_ns(q.layer),
                    min: ws.min_latency_ns(q.layer),
                    certain: p >= 1.0,
                });
            }
            cache.products_valid = true;
        }
        if cache.sums.is_none() {
            // -0.0 is `<f64 as Sum>`'s fold identity; starting from +0.0
            // would flip empty sums to +0.0 and break bit-identity with
            // the reference `.sum()` walks.
            let mut avg = -0.0f64;
            let mut min = -0.0f64;
            for c in &cache.contrib {
                avg += c.avg;
                if c.certain {
                    min += c.min;
                }
            }
            cache.sums = Some((avg, min));
        }
        cache.sums.expect("folded just above")
    }

    /// Expected remaining work using the across-accelerator *average*
    /// latency per layer — Algorithm 1 line 2's `ToGo(tsk)`, extended with
    /// execution probabilities for dynamic layers. Computed lazily at the
    /// first read after a queue/gate mutation — bit-identical to a fresh
    /// walk, since queue and gates are unchanged between mutation and
    /// read — then O(1) until the next mutation.
    pub fn to_go_avg_ns(&self, ws: &WorkloadSet) -> f64 {
        let served = self.to_go_pair(ws).0;
        debug_assert_eq!(
            served.to_bits(),
            self.compute_to_go_avg(ws).to_bits(),
            "cached ToGo diverged from a fresh walk on {}",
            self.id
        );
        served
    }

    /// Best-case remaining work: only layers certain to execute, each on its
    /// best-latency accelerator, no context switches — the smart frame
    /// drop's `minimum_to_go` (§4.2.1). Cached like
    /// [`to_go_avg_ns`](Self::to_go_avg_ns).
    pub fn min_to_go_ns(&self, ws: &WorkloadSet) -> f64 {
        let served = self.to_go_pair(ws).1;
        debug_assert_eq!(
            served.to_bits(),
            self.compute_min_to_go(ws).to_bits(),
            "cached minimum_to_go diverged from a fresh walk on {}",
            self.id
        );
        served
    }

    /// Worst-case remaining work: every remaining layer on the
    /// across-accelerator average (all gates assumed not taken).
    pub fn worst_to_go_ns(&self, ws: &WorkloadSet) -> f64 {
        canonical_sum(self.remaining.iter().map(|q| ws.avg_latency_ns(q.layer)))
    }

    /// Remaining time to the deadline (the paper's `Slack`), negative if
    /// already past due.
    pub fn slack_ns(&self, now: SimTime) -> f64 {
        self.deadline.signed_delta_ns(now) as f64
    }

    /// Whether the queue is exhausted.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }

    // ---- engine-side mutators (crate-private) ----

    pub(crate) fn set_running(&mut self, accs: Vec<AcceleratorId>) {
        debug_assert!(self.is_ready(), "dispatching a non-ready task");
        self.state = TaskState::Running(accs);
    }

    /// Reverts a running task to ready without completing its head layer —
    /// the dispatch was aborted by an accelerator failure. Nothing was
    /// executed, so no energy is charged and `Tcmpl` keeps its previous
    /// stamp; the remaining-work cache is invalidated through the same
    /// lazy seam a gate mutation uses, so the next scheduler read repairs
    /// it from the unchanged queue.
    pub(crate) fn abort_running(&mut self) {
        debug_assert!(
            matches!(self.state, TaskState::Running(_)),
            "aborting a task that is not running"
        );
        self.state = TaskState::Ready;
        self.invalidate_to_go();
    }

    /// Pops the completed head layer, charging energy and stamping `Tcmpl`.
    pub(crate) fn complete_head(
        &mut self,
        now: SimTime,
        energy_pj: f64,
        ws: &WorkloadSet,
    ) -> QueuedLayer {
        let head = self
            .remaining
            .pop_front()
            .expect("completing a layer on an empty queue");
        self.state = TaskState::Ready;
        self.last_completion = now;
        self.executed_layers += 1;
        self.energy_pj += energy_pj;
        // Gates are untouched by a head pop, so any frozen products stay
        // valid for the tail — drop the head's and mark only the sums
        // stale (re-folded at the next read, not here).
        let cache = self.to_go.get_mut();
        if cache.products_valid {
            cache
                .contrib
                .pop_front()
                .expect("contributions stay aligned with the queue");
        }
        cache.sums = None;
        let _ = ws;
        head
    }

    /// Resolves a skip decision for the block starting at `first`:
    /// removes the block's layers when `skip` is true. The gate is dropped
    /// from the pending set either way, and any exit points strictly inside
    /// a skipped span vanish with it.
    pub(crate) fn resolve_skip(&mut self, first: usize, skip: bool, ws: &WorkloadSet) {
        let Some(pos) = self.pending_skips.iter().position(|b| b.first == first) else {
            return;
        };
        let blk = self.pending_skips.remove(pos);
        if skip {
            self.remaining
                .retain(|q| q.graph_idx < blk.first || q.graph_idx > blk.last);
            self.pending_exits
                .retain(|e| e.after < blk.first || e.after > blk.last);
        }
        self.invalidate_to_go();
        let _ = ws;
    }

    /// Resolves an exit decision at `after`: when taken, the rest of the
    /// queue is discarded (successful early completion).
    pub(crate) fn resolve_exit(&mut self, after: usize, exit: bool, ws: &WorkloadSet) {
        let Some(pos) = self.pending_exits.iter().position(|e| e.after == after) else {
            return;
        };
        self.pending_exits.remove(pos);
        if exit {
            self.remaining.clear();
            self.pending_skips.clear();
            self.pending_exits.clear();
        }
        self.invalidate_to_go();
        let _ = ws;
    }

    /// Replaces the remaining queue with another variant's layers. Only
    /// legal before any layer has executed.
    pub(crate) fn switch_variant(
        &mut self,
        node: &NodeInfo,
        variant: VariantId,
        ws: &WorkloadSet,
    ) -> bool {
        if self.started() || variant.0 >= node.variant_count() {
            return false;
        }
        let plan = node.variant(variant);
        self.variant = variant;
        self.remaining = plan
            .layers
            .iter()
            .enumerate()
            .map(|(graph_idx, &layer)| QueuedLayer { layer, graph_idx })
            .collect();
        self.pending_skips = plan.skip_blocks.clone();
        self.pending_exits = plan.exit_points.clone();
        self.invalidate_to_go();
        let _ = ws;
        true
    }

    pub(crate) fn pending_skip_starting_at(&self, first: usize) -> Option<SkipBlock> {
        self.pending_skips
            .iter()
            .find(|b| b.first == first)
            .copied()
    }

    pub(crate) fn pending_exit_after(&self, after: usize) -> Option<ExitPoint> {
        self.pending_exits
            .iter()
            .find(|e| e.after == after)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Phase, WorkloadSet};
    use crate::Millis;
    use dream_cost::{CostModel, Platform, PlatformPreset};
    use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};

    fn ar_call_ws() -> WorkloadSet {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        WorkloadSet::build(
            vec![Phase {
                start: SimTime::ZERO,
                end: SimTime::from(Millis::new(1000)),
                scenario: Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
            }],
            &platform,
            &CostModel::paper_default(),
        )
        .unwrap()
    }

    fn skipnet_task(ws: &WorkloadSet) -> Task {
        let key = ModelKey {
            phase: 0,
            pipeline: PipelineId(1),
            node: NodeId(0),
        };
        Task::new(
            TaskId(1),
            ws.node(key),
            0,
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from(Millis::new(33)),
            true,
            ws,
        )
    }

    #[test]
    fn new_task_queues_all_layers() {
        let ws = ar_call_ws();
        let t = skipnet_task(&ws);
        assert_eq!(
            t.remaining().len(),
            ws.node(t.key()).variant_layers(VariantId(0)).len()
        );
        assert!(t.is_ready());
        assert!(!t.started());
        assert_eq!(t.next_layer().unwrap().graph_idx, 0);
    }

    #[test]
    fn to_go_accounts_for_skip_probabilities() {
        let ws = ar_call_ws();
        let t = skipnet_task(&ws);
        let expected = t.to_go_avg_ns(&ws);
        let worst = t.worst_to_go_ns(&ws);
        assert!(expected < worst, "expected {expected} worst {worst}");
        let min = t.min_to_go_ns(&ws);
        assert!(min < expected, "min {min} expected {expected}");
        assert!(min > 0.0);
    }

    #[test]
    fn skip_resolution_removes_block() {
        let ws = ar_call_ws();
        let mut t = skipnet_task(&ws);
        let blk = t.pending_skips[0];
        let before = t.remaining().len();
        t.resolve_skip(blk.first, true, &ws);
        let after = t.remaining().len();
        assert_eq!(before - after, blk.last - blk.first + 1);
        // Resolving again is a no-op.
        t.resolve_skip(blk.first, true, &ws);
        assert_eq!(t.remaining().len(), after);
    }

    #[test]
    fn no_skip_resolution_sets_probability_to_one() {
        let ws = ar_call_ws();
        let mut t = skipnet_task(&ws);
        let blk = t.pending_skips[0];
        assert!(t.layer_probability(blk.first) < 1.0);
        t.resolve_skip(blk.first, false, &ws);
        assert_eq!(t.layer_probability(blk.first), 1.0);
        assert_eq!(
            t.remaining().len(),
            ws.node(t.key()).variant_layers(VariantId(0)).len()
        );
    }

    #[test]
    fn exit_resolution_clears_queue() {
        let ws = ar_call_ws();
        // RAPID-RL lives in Drone_Indoor; emulate with a manual exit on the
        // SkipNet task by resolving a synthetic exit: use resolve_exit on a
        // pending one — SkipNet has none, so this is a no-op.
        let mut t = skipnet_task(&ws);
        t.resolve_exit(3, true, &ws);
        assert!(!t.is_complete(), "no-op on models without exits");
    }

    #[test]
    fn complete_head_advances_queue_and_energy() {
        let ws = ar_call_ws();
        let mut t = skipnet_task(&ws);
        let now = SimTime::from_ns(500);
        t.set_running(vec![dream_cost::AcceleratorId(0)]);
        let head = t.complete_head(now, 42.0, &ws);
        assert_eq!(head.graph_idx, 0);
        assert_eq!(t.last_completion(), now);
        assert_eq!(t.energy_pj(), 42.0);
        assert!(t.started());
        assert!(t.is_ready());
    }

    #[test]
    fn abort_running_requeues_without_charging() {
        let ws = ar_call_ws();
        let mut t = skipnet_task(&ws);
        let before = t.to_go_avg_ns(&ws);
        t.set_running(vec![dream_cost::AcceleratorId(0)]);
        t.abort_running();
        assert!(t.is_ready());
        assert!(!t.started(), "an aborted layer never executed");
        assert_eq!(t.energy_pj(), 0.0);
        assert_eq!(
            t.remaining().len(),
            ws.node(t.key()).variant_layers(VariantId(0)).len()
        );
        // The invalidated cache repairs to the identical bits.
        assert_eq!(t.to_go_avg_ns(&ws).to_bits(), before.to_bits());
    }

    #[test]
    fn variant_switch_only_before_start() {
        let ws = ar_call_ws();
        // Use a supernet-bearing workload: VR_Gaming context node.
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let ws2 = WorkloadSet::build(
            vec![Phase {
                start: SimTime::ZERO,
                end: SimTime::from(Millis::new(1000)),
                scenario: Scenario::new(
                    ScenarioKind::VrGaming,
                    CascadeProbability::default_paper(),
                ),
            }],
            &platform,
            &CostModel::paper_default(),
        )
        .unwrap();
        let ofa_key = ws2
            .nodes()
            .find(|n| n.is_supernet())
            .expect("VR_Gaming contains the OFA supernet")
            .key();
        let node = ws2.node(ofa_key);
        let mut t = Task::new(
            TaskId(9),
            node,
            0,
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from(Millis::new(33)),
            true,
            &ws2,
        );
        let full = t.remaining().len();
        assert!(t.switch_variant(node, VariantId(3), &ws2));
        assert!(t.remaining().len() < full);
        assert_eq!(t.variant(), VariantId(3));
        // Out-of-range variant rejected.
        assert!(!t.switch_variant(node, VariantId(9), &ws2));
        // After execution starts, switching is rejected.
        t.set_running(vec![dream_cost::AcceleratorId(0)]);
        t.complete_head(SimTime::from_ns(10), 1.0, &ws2);
        assert!(!t.switch_variant(node, VariantId(0), &ws2));
        let _ = ws;
    }

    #[test]
    fn slack_goes_negative_past_deadline() {
        let ws = ar_call_ws();
        let t = skipnet_task(&ws);
        assert!(t.slack_ns(SimTime::ZERO) > 0.0);
        assert!(t.slack_ns(SimTime::from(Millis::new(50))) < 0.0);
    }
}
