//! The arrival seam: pluggable sources of root-frame releases.
//!
//! Stage 1a of the engine asks an [`ArrivalSource`] *when* each root
//! model's frames arrive instead of hard-coding the `now + period`
//! recurrence. Three sources ship with the crate:
//!
//! * [`PeriodicArrivals`] — the paper's fixed-FPS pipelines (the default;
//!   bit-identical metrics to the pre-seam engine);
//! * [`PoissonArrivals`] / [`MmppArrivals`] — open-loop stochastic
//!   streams whose inter-arrival draws come from the counter-based
//!   [`DeterministicCoin`], so a seed fully determines the stream and two
//!   schedulers face the identical realized traffic;
//! * [`TraceArrivals`] — replay of a recorded [`ArrivalTrace`]
//!   (`Vec<(SimTime, ModelKey)>` under the hood, with a text/CSV loader).
//!
//! Regardless of the source, a frame's relative deadline stays the node's
//! period (the model's timing contract), and the engine's censoring rules
//! are unchanged: frames arrive strictly before their phase end and the
//! horizon, and a frame is *counted* iff its deadline falls at or before
//! both boundaries.
//!
//! # Trace file format
//!
//! One arrival per line, `arrival_ns,phase,pipeline,node` (all unsigned
//! integers); `#` starts a comment and blank lines are ignored:
//!
//! ```text
//! # time_ns,phase,pipeline,node
//! 0,0,0,0
//! 33333333,0,1,0
//! ```
//!
//! Entries must target root nodes of the workload and lie inside the
//! declared phase's window; entries at or beyond the simulation horizon
//! are ignored (censored by construction). Within a key, entries replay
//! in time order and are numbered `frame = 0, 1, 2, …`, which is the
//! coordinate the [`DeterministicCoin`] uses for cascade/skip/exit draws —
//! so a periodic trace realizes exactly the same workload as the built-in
//! periodic generator.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use dream_models::{NodeId, PipelineId};

use crate::determ::DeterministicCoin;
use crate::workload::{ModelKey, NodeInfo, Phase, WorkloadSet};
use crate::{SimError, SimTime};

/// Coin-gate namespace for inter-arrival draws (cascade/skip/exit draws
/// use 0, 1000+, and 2000+; see `engine::dynamics`).
const GATE_ARRIVAL: u64 = 3_000;
/// Coin-gate namespace for MMPP burst-state flips.
const GATE_ARRIVAL_STATE: u64 = 4_000;

/// A pluggable stream of root-frame arrival times — the seam between the
/// staged executor and the traffic model.
///
/// The engine calls [`first_arrival`](ArrivalSource::first_arrival) once
/// per root node when its phase starts, then
/// [`next_arrival`](ArrivalSource::next_arrival) after each released
/// frame. Returning `None` ends the node's stream; times at/after the
/// phase end or the horizon are discarded by the engine, which also stops
/// the recurrence. Sources must never return a time earlier than the
/// frame they follow.
///
/// Implementations that randomize must draw through the provided
/// [`DeterministicCoin`] (or otherwise be a pure function of the seed) so
/// that every scheduler faces the identical arrival stream. `Send` so
/// configured simulations can move across threads.
pub trait ArrivalSource: std::fmt::Debug + Send {
    /// Display name for run labels and diagnostics.
    fn name(&self) -> &str;

    /// Checks the source against the resolved workload before the run
    /// starts (e.g. trace keys must name root nodes).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] (or another variant) describing
    /// the inconsistency.
    fn validate(&self, ws: &WorkloadSet, horizon: SimTime) -> Result<(), SimError> {
        let _ = (ws, horizon);
        Ok(())
    }

    /// The arrival time of `node`'s frame 0 within `phase`, or `None` for
    /// an empty stream. Must be at or after `phase.start()`.
    fn first_arrival(
        &mut self,
        node: &NodeInfo,
        phase: &Phase,
        coin: &DeterministicCoin,
    ) -> Option<SimTime>;

    /// The arrival following frame `frame` of `node`, which arrived at
    /// `prev`. Must be at or after `prev`.
    fn next_arrival(
        &mut self,
        node: &NodeInfo,
        phase: &Phase,
        frame: u64,
        prev: SimTime,
        coin: &DeterministicCoin,
    ) -> Option<SimTime>;
}

/// The default fixed-FPS generator: frame 0 at the phase start, then one
/// frame per period — DREAM's periodic pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeriodicArrivals;

impl ArrivalSource for PeriodicArrivals {
    fn name(&self) -> &str {
        "periodic"
    }

    fn first_arrival(
        &mut self,
        _node: &NodeInfo,
        phase: &Phase,
        _coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        Some(phase.start())
    }

    fn next_arrival(
        &mut self,
        node: &NodeInfo,
        _phase: &Phase,
        _frame: u64,
        prev: SimTime,
        _coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        Some(prev + node.period())
    }
}

/// Draws an exponential inter-arrival with the given mean, at least 1 ns
/// so streams always advance.
fn exp_interarrival(
    node: &NodeInfo,
    frame: u64,
    mean_ns: f64,
    coin: &DeterministicCoin,
) -> SimTime {
    let key = node.key();
    let u = coin.uniform(key.coin_channel(), key.node.0, frame, GATE_ARRIVAL);
    // Inverse-CDF sampling; 1 - u is in (0, 1] so ln is finite.
    let dt = -mean_ns * (1.0 - u).ln();
    SimTime::from_ns_f64(dt.max(1.0))
}

/// An open-loop Poisson stream per root node. `intensity` scales the
/// node's nominal rate: the mean inter-arrival time is
/// `period / intensity`, so `1.0` offers the periodic load in
/// expectation, `2.0` doubles it.
///
/// Frame 0 arrives one draw after the phase start (the process starts
/// empty). Draws are pure functions of `(seed, node, frame)`, so the
/// realized stream is identical for every scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    intensity: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson source with the given intensity multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not finite and positive.
    pub fn new(intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "arrival intensity must be positive, got {intensity}"
        );
        PoissonArrivals { intensity }
    }

    /// The intensity multiplier.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    fn mean_ns(&self, node: &NodeInfo) -> f64 {
        node.period().as_ns_f64() / self.intensity
    }
}

impl ArrivalSource for PoissonArrivals {
    fn name(&self) -> &str {
        "poisson"
    }

    fn first_arrival(
        &mut self,
        node: &NodeInfo,
        phase: &Phase,
        coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        Some(phase.start() + exp_interarrival(node, 0, self.mean_ns(node), coin))
    }

    fn next_arrival(
        &mut self,
        node: &NodeInfo,
        _phase: &Phase,
        frame: u64,
        prev: SimTime,
        coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        Some(prev + exp_interarrival(node, frame + 1, self.mean_ns(node), coin))
    }
}

/// A two-state Markov-modulated Poisson process per root node: traffic
/// alternates between a *calm* and a *burst* intensity (both multipliers
/// of the node's nominal rate, as in [`PoissonArrivals`]). Before each
/// draw the state flips with the configured probability, so bursts have
/// geometrically distributed lengths.
///
/// State transitions and inter-arrivals both come from the counter-based
/// coin; the per-node state is re-derived frame by frame, so the stream
/// is still a pure function of the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct MmppArrivals {
    calm: f64,
    burst: f64,
    p_enter: f64,
    p_exit: f64,
    bursting: BTreeMap<ModelKey, bool>,
}

impl MmppArrivals {
    /// Creates a bursty source: `calm`/`burst` intensity multipliers and
    /// the per-frame probabilities of entering/leaving a burst.
    ///
    /// # Panics
    ///
    /// Panics if an intensity is not positive or a probability is outside
    /// `[0, 1]`.
    pub fn new(calm: f64, burst: f64, p_enter: f64, p_exit: f64) -> Self {
        assert!(
            calm.is_finite() && calm > 0.0 && burst.is_finite() && burst > 0.0,
            "MMPP intensities must be positive, got {calm}/{burst}"
        );
        assert!(
            (0.0..=1.0).contains(&p_enter) && (0.0..=1.0).contains(&p_exit),
            "MMPP switch probabilities must be in [0, 1], got {p_enter}/{p_exit}"
        );
        MmppArrivals {
            calm,
            burst,
            p_enter,
            p_exit,
            bursting: BTreeMap::new(),
        }
    }

    fn draw(&mut self, node: &NodeInfo, frame: u64, coin: &DeterministicCoin) -> SimTime {
        let key = node.key();
        let state = self.bursting.entry(key).or_insert(false);
        let p_flip = if *state { self.p_exit } else { self.p_enter };
        if coin.decide(
            key.coin_channel(),
            key.node.0,
            frame,
            GATE_ARRIVAL_STATE,
            p_flip,
        ) {
            *state = !*state;
        }
        let intensity = if *state { self.burst } else { self.calm };
        exp_interarrival(node, frame, node.period().as_ns_f64() / intensity, coin)
    }
}

impl ArrivalSource for MmppArrivals {
    fn name(&self) -> &str {
        "mmpp"
    }

    fn first_arrival(
        &mut self,
        node: &NodeInfo,
        phase: &Phase,
        coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        let dt = self.draw(node, 0, coin);
        Some(phase.start() + dt)
    }

    fn next_arrival(
        &mut self,
        node: &NodeInfo,
        _phase: &Phase,
        frame: u64,
        prev: SimTime,
        coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        let dt = self.draw(node, frame + 1, coin);
        Some(prev + dt)
    }
}

/// A recorded arrival stream: per root node, the times its frames arrive.
///
/// See the [module docs](self) for the text format and replay semantics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrivalTrace {
    name: String,
    per_key: BTreeMap<ModelKey, Vec<SimTime>>,
}

impl ArrivalTrace {
    /// Builds a trace from `(time, key)` events. Events are grouped by
    /// key and sorted by time within each key.
    pub fn from_events(name: impl Into<String>, events: Vec<(SimTime, ModelKey)>) -> Self {
        let mut per_key: BTreeMap<ModelKey, Vec<SimTime>> = BTreeMap::new();
        for (t, key) in events {
            per_key.entry(key).or_default().push(t);
        }
        for times in per_key.values_mut() {
            times.sort_unstable();
        }
        ArrivalTrace {
            name: name.into(),
            per_key,
        }
    }

    /// Parses the text/CSV form (`arrival_ns,phase,pipeline,node` per
    /// line, `#` comments).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] naming the offending line.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, SimError> {
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split(',').map(str::trim);
            let mut field = |what: &str| {
                fields
                    .next()
                    .and_then(|f| f.parse::<u64>().ok())
                    .ok_or_else(|| SimError::InvalidTrace {
                        reason: format!("line {}: missing/invalid {what}: {line:?}", lineno + 1),
                    })
            };
            let t = field("arrival_ns")?;
            let phase = field("phase")?;
            let pipeline = field("pipeline")?;
            let node = field("node")?;
            if fields.next().is_some() {
                return Err(SimError::InvalidTrace {
                    reason: format!("line {}: too many fields: {line:?}", lineno + 1),
                });
            }
            events.push((
                SimTime::from_ns(t),
                ModelKey {
                    phase: phase as usize,
                    pipeline: PipelineId(pipeline as usize),
                    node: NodeId(node as usize),
                },
            ));
        }
        Ok(Self::from_events(name, events))
    }

    /// Renders the text/CSV form: all entries, globally time-ordered.
    pub fn to_csv(&self) -> String {
        let mut events: Vec<(SimTime, ModelKey)> = self
            .per_key
            .iter()
            .flat_map(|(&key, times)| times.iter().map(move |&t| (t, key)))
            .collect();
        events.sort_unstable();
        let mut out = String::from("# arrival_ns,phase,pipeline,node\n");
        for (t, key) in events {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                t.as_ns(),
                key.phase,
                key.pipeline.0,
                key.node.0
            );
        }
        out
    }

    /// Materializes any [`ArrivalSource`] into a trace by replaying the
    /// engine's recurrence offline: per phase, per root node, arrivals
    /// strictly before the phase end and `horizon`. Replaying the result
    /// through [`TraceArrivals`] with the same `seed` reproduces the
    /// source's stream exactly.
    pub fn record(
        name: impl Into<String>,
        ws: &WorkloadSet,
        horizon: SimTime,
        seed: u64,
        source: &mut dyn ArrivalSource,
    ) -> Self {
        let coin = DeterministicCoin::new(seed);
        let mut events = Vec::new();
        for (phase_idx, phase) in ws.phases().iter().enumerate() {
            let roots: Vec<ModelKey> = ws
                .nodes()
                .filter(|n| n.key().phase == phase_idx && n.parent().is_none())
                .map(NodeInfo::key)
                .collect();
            for key in roots {
                let node = ws.node(key);
                let stop = phase.end().min(horizon);
                let mut frame = 0u64;
                let mut t = match source.first_arrival(node, phase, &coin) {
                    Some(t) if t >= phase.start() && t < stop => t,
                    _ => continue,
                };
                loop {
                    events.push((t, key));
                    t = match source.next_arrival(node, phase, frame, t, &coin) {
                        Some(next) if next >= t && next < stop => next,
                        _ => break,
                    };
                    frame += 1;
                }
            }
        }
        Self::from_events(name, events)
    }

    /// The trace's name (used in labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of arrivals.
    pub fn len(&self) -> usize {
        self.per_key.values().map(Vec::len).sum()
    }

    /// Whether the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.per_key.is_empty()
    }

    /// The arrival times recorded for `key`.
    pub fn times(&self, key: ModelKey) -> &[SimTime] {
        self.per_key.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The keys with at least one arrival, ascending.
    pub fn keys(&self) -> impl Iterator<Item = ModelKey> + '_ {
        self.per_key.keys().copied()
    }

    /// A deterministic digest of every entry (for labels and dedup).
    pub fn digest(&self) -> u64 {
        let mut h = crate::Fnv64::new();
        for (key, times) in &self.per_key {
            h.mix(key.phase as u64);
            h.mix(key.pipeline.0 as u64);
            h.mix(key.node.0 as u64);
            for t in times {
                h.mix(t.as_ns());
            }
        }
        h.finish()
    }
}

/// Replays an [`ArrivalTrace`]: each key's entries release in time order,
/// numbered `frame = 0, 1, 2, …`.
#[derive(Debug, Clone)]
pub struct TraceArrivals {
    trace: Arc<ArrivalTrace>,
    cursor: BTreeMap<ModelKey, usize>,
}

impl TraceArrivals {
    /// Creates a replay source over `trace`.
    pub fn new(trace: impl Into<Arc<ArrivalTrace>>) -> Self {
        TraceArrivals {
            trace: trace.into(),
            cursor: BTreeMap::new(),
        }
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &ArrivalTrace {
        &self.trace
    }
}

impl ArrivalSource for TraceArrivals {
    fn name(&self) -> &str {
        "trace"
    }

    fn validate(&self, ws: &WorkloadSet, horizon: SimTime) -> Result<(), SimError> {
        for (&key, times) in &self.trace.per_key {
            let Some(phase) = ws.phases().get(key.phase) else {
                return Err(SimError::InvalidTrace {
                    reason: format!("trace entry for {key} names a nonexistent phase"),
                });
            };
            let node =
                ws.nodes()
                    .find(|n| n.key() == key)
                    .ok_or_else(|| SimError::InvalidTrace {
                        reason: format!("trace entry for {key} names a nonexistent model"),
                    })?;
            if node.parent().is_some() {
                return Err(SimError::InvalidTrace {
                    reason: format!(
                        "trace entry for {key} targets a cascade child; only root \
                         nodes have externally driven arrivals"
                    ),
                });
            }
            for &t in times {
                // Entries at/after the horizon are legal (they censor
                // naturally), but an entry outside its declared phase
                // window is a construction error.
                if t < horizon && (t < phase.start() || t >= phase.end()) {
                    return Err(SimError::InvalidTrace {
                        reason: format!(
                            "trace entry for {key} at {t} lies outside its phase \
                             window [{}, {})",
                            phase.start(),
                            phase.end()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn first_arrival(
        &mut self,
        node: &NodeInfo,
        phase: &Phase,
        _coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        let key = node.key();
        let times = self.trace.per_key.get(&key)?;
        let start = times.partition_point(|&t| t < phase.start());
        self.cursor.insert(key, start + 1);
        times.get(start).copied()
    }

    fn next_arrival(
        &mut self,
        node: &NodeInfo,
        _phase: &Phase,
        _frame: u64,
        _prev: SimTime,
        _coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        let key = node.key();
        let times = self.trace.per_key.get(&key)?;
        let cursor = self.cursor.entry(key).or_insert(0);
        let t = times.get(*cursor).copied();
        *cursor += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(phase: usize, pipeline: usize, node: usize) -> ModelKey {
        ModelKey {
            phase,
            pipeline: PipelineId(pipeline),
            node: NodeId(node),
        }
    }

    #[test]
    fn parse_roundtrips_through_csv() {
        let text = "# demo\n0,0,0,0\n500,0,1,0\n\n250,0,0,0\n";
        let trace = ArrivalTrace::parse("demo", text).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(
            trace.times(key(0, 0, 0)),
            &[SimTime::ZERO, SimTime::from_ns(250)]
        );
        let reparsed = ArrivalTrace::parse("demo", &trace.to_csv()).unwrap();
        assert_eq!(trace, reparsed);
        assert_eq!(trace.digest(), reparsed.digest());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in ["abc,0,0,0", "1,2,3", "1,2,3,4,5", "-1,0,0,0"] {
            let err = ArrivalTrace::parse("bad", bad).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidTrace { .. }),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn from_events_sorts_within_keys() {
        let k = key(0, 0, 0);
        let trace = ArrivalTrace::from_events(
            "t",
            vec![
                (SimTime::from_ns(9), k),
                (SimTime::from_ns(3), k),
                (SimTime::from_ns(6), k),
            ],
        );
        assert_eq!(
            trace.times(k),
            &[
                SimTime::from_ns(3),
                SimTime::from_ns(6),
                SimTime::from_ns(9)
            ]
        );
        assert_eq!(trace.keys().collect::<Vec<_>>(), vec![k]);
    }

    #[test]
    fn digest_distinguishes_traces() {
        let a = ArrivalTrace::from_events("a", vec![(SimTime::from_ns(1), key(0, 0, 0))]);
        let b = ArrivalTrace::from_events("b", vec![(SimTime::from_ns(2), key(0, 0, 0))]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn poisson_rejects_bad_intensity() {
        let r = std::panic::catch_unwind(|| PoissonArrivals::new(0.0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| MmppArrivals::new(1.0, 2.0, 1.5, 0.1));
        assert!(r.is_err());
    }
}
