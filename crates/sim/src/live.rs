//! Live, incrementally stepped simulation sessions — the substrate of the
//! `dream-serve` runtime.
//!
//! A [`LiveSession`] runs the same staged engine as
//! [`SimulationBuilder::run`](crate::SimulationBuilder::run), but instead
//! of resolving the whole arrival horizon up front it accepts root-frame
//! requests *as they happen* ([`LiveSession::admit`]) and advances virtual
//! time in bounded slices ([`LiveSession::step_until`]). Sessions support
//! scenario hot-swap mid-flight ([`LiveSession::swap_scenario`], installed
//! through the same digest-validated `Arc<WorkloadSet>` seam the batch
//! engine's prebuilt workloads use) and graceful drain
//! ([`LiveSession::begin_drain`]).
//!
//! # The replay-equivalence guarantee
//!
//! Every admitted arrival is recorded, and [`LiveSession::finish`] returns
//! a [`LiveSessionRecord`] whose [`replay`](LiveSessionRecord::replay)
//! re-runs the session through the ordinary batch simulator
//! (`TraceArrivals` over the recorded trace, the recorded phase schedule,
//! the same seed and cost backend). The two runs produce **bit-identical**
//! [`Metrics`](crate::Metrics) — the live path is not an approximation of
//! the simulator, it *is* the simulator, fed incrementally. Three
//! mechanisms make this exact:
//!
//! 1. **Canonical intra-instant event order** (see [`crate::event`]):
//!    simultaneous events process by kind rank and model key, never by
//!    push order, so injecting an arrival when it is admitted (live) and
//!    pushing it from the trace recurrence (batch) yield the same
//!    processing sequence.
//! 2. **A closed frontier**: [`step_until`](LiveSession::step_until)
//!    processes events only up to the caller's frontier, and admissions
//!    must carry stamps strictly past it — an instant is scheduled only
//!    once every arrival that can land on it is known.
//! 3. **Boundary slack**: a hot-swap or drain ordered at stamp `t` takes
//!    effect at `max(t, latest admitted stamp) + max node period` — far
//!    enough out that every release decision made *before* the boundary
//!    was known (deadline-vs-window censoring) is the one the batch
//!    replay, which knows the whole schedule from the start, also makes.
//!    Releases processed after the order see the rebuilt phase windows
//!    immediately.
//!
//! Phase windows are data, not identity: extending a workload with a new
//! phase re-registers earlier phases' layers in the same order, so every
//! existing [`LayerId`](crate::LayerId), node key, and cost-table row is
//! unchanged (asserted by `prefix_tables_survive_phase_extension` below) —
//! in-flight tasks keep their meaning across a swap.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use dream_cost::{AcceleratorId, CostBackend, CostModel, Platform};
use dream_models::{NodeId, PipelineId, Scenario};
use dream_trace::TraceConfig;

use crate::arrivals::{ArrivalSource, ArrivalTrace, TraceArrivals};
use crate::determ::DeterministicCoin;
use crate::engine::{check_workload_matches, Engine, SimOutcome, SimulationBuilder, StepStatus};
use crate::event::EventKind;
use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultRuntime};
use crate::metrics::Metrics;
use crate::scheduler::Scheduler;
use crate::workload::{ModelKey, NodeInfo, Phase, WorkloadSet};
use crate::{SimError, SimTime};

/// Default provisional horizon for open-ended sessions: far enough out
/// that no realistic session reaches it (≈146 virtual years), small
/// enough that `deadline = arrival + period` can never saturate.
pub const DEFAULT_HORIZON_CAP_NS: u64 = 1 << 62;

/// Errors produced by live-session operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// The admitted key does not name a root node of the current phase's
    /// scenario (unknown pipeline/node, or a cascade child — children are
    /// released by their parents, not by external requests).
    UnknownModel {
        /// Description of the rejected key.
        reason: String,
    },
    /// The session is draining; no further admissions or swaps.
    Draining,
    /// The session already finished.
    Finished,
    /// The ordered swap/drain cannot take effect because the previously
    /// ordered phase boundary has not been reached yet.
    SwapPending {
        /// When the pending phase starts.
        boundary: SimTime,
    },
    /// The stamp (or the boundary it implies) lies at/after the session's
    /// horizon cap.
    PastHorizon {
        /// The offending instant.
        at: SimTime,
        /// The horizon it collided with.
        horizon: SimTime,
    },
    /// Propagated simulator error (workload build/validation).
    Sim(SimError),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::UnknownModel { reason } => write!(f, "unknown model: {reason}"),
            LiveError::Draining => write!(f, "session is draining"),
            LiveError::Finished => write!(f, "session already finished"),
            LiveError::SwapPending { boundary } => {
                write!(f, "previous phase boundary at {boundary} not reached yet")
            }
            LiveError::PastHorizon { at, horizon } => {
                write!(
                    f,
                    "instant {at} lies at/after the session horizon {horizon}"
                )
            }
            LiveError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LiveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LiveError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for LiveError {
    fn from(e: SimError) -> Self {
        LiveError::Sim(e)
    }
}

/// The arrival source of a live engine: it never generates arrivals — the
/// session injects admitted requests as events directly.
#[derive(Debug, Clone, Copy, Default)]
struct LiveArrivals;

impl ArrivalSource for LiveArrivals {
    fn name(&self) -> &str {
        "live"
    }

    fn first_arrival(
        &mut self,
        _node: &NodeInfo,
        _phase: &Phase,
        _coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        None
    }

    fn next_arrival(
        &mut self,
        _node: &NodeInfo,
        _phase: &Phase,
        _frame: u64,
        _prev: SimTime,
        _coin: &DeterministicCoin,
    ) -> Option<SimTime> {
        None
    }
}

/// Configures and starts a [`LiveSession`].
#[derive(Debug)]
pub struct LiveSessionBuilder {
    platform: Platform,
    scenario: Scenario,
    seed: u64,
    cost: Arc<dyn CostBackend>,
    cap: SimTime,
    prebuilt: Option<Arc<WorkloadSet>>,
    faults: Option<FaultPlan>,
    trace: Option<TraceConfig>,
}

impl LiveSessionBuilder {
    /// Starts a builder for a session serving `scenario` on `platform`.
    pub fn new(platform: Platform, scenario: Scenario) -> Self {
        LiveSessionBuilder {
            platform,
            scenario,
            seed: 0,
            cost: Arc::new(CostModel::paper_default()),
            cap: SimTime::from_ns(DEFAULT_HORIZON_CAP_NS),
            prebuilt: None,
            faults: None,
            trace: None,
        }
    }

    /// Installs the flight recorder — the same seam as
    /// [`SimulationBuilder::trace`]. The finished session's
    /// [`SimOutcome`] carries the trace; because trace stamps are sim
    /// time, it is **byte-identical** to the trace a
    /// [`LiveSessionRecord::replay_traced`] of the same session records.
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Installs a fault plan the session starts with — the same plan seam
    /// as [`SimulationBuilder::faults`]; further faults can be admitted
    /// live with [`LiveSession::admit_fault`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the workload-realization seed (cascade/skip/exit draws;
    /// default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cost backend (default: the analytical model with the
    /// paper calibration).
    pub fn cost_backend(mut self, backend: Arc<dyn CostBackend>) -> Self {
        self.cost = backend;
        self
    }

    /// Sets a hard horizon cap: the session ends at this virtual instant
    /// even without a drain. Defaults to [`DEFAULT_HORIZON_CAP_NS`]
    /// (effectively open-ended).
    pub fn horizon_cap(mut self, cap: impl Into<SimTime>) -> Self {
        self.cap = cap.into();
        self
    }

    /// Builds the single-phase [`WorkloadSet`] the session starts with —
    /// e.g. to warm it in a cache before [`start`](Self::start).
    ///
    /// # Errors
    ///
    /// Fails when the backend cannot cost the scenario's layers.
    pub fn build_workload(&self) -> Result<WorkloadSet, SimError> {
        WorkloadSet::build(
            vec![Phase::new(SimTime::ZERO, self.cap, self.scenario.clone())],
            &self.platform,
            self.cost.as_ref(),
        )
    }

    /// Reuses an already-built initial workload instead of rebuilding the
    /// offline tables — the same `Arc` seam as
    /// [`SimulationBuilder::prebuilt_workload`]; validated on
    /// [`start`](Self::start).
    pub fn prebuilt_workload(mut self, workload: Arc<WorkloadSet>) -> Self {
        self.prebuilt = Some(workload);
        self
    }

    /// Starts the session under `scheduler`.
    ///
    /// # Errors
    ///
    /// Fails on a zero horizon cap, an uncostable scenario, or a prebuilt
    /// workload that does not match the configuration.
    pub fn start(self, scheduler: Box<dyn Scheduler>) -> Result<LiveSession, LiveError> {
        if self.cap == SimTime::ZERO {
            return Err(LiveError::Sim(SimError::ZeroDuration));
        }
        let expected = vec![Phase::new(SimTime::ZERO, self.cap, self.scenario.clone())];
        let ws = match self.prebuilt {
            Some(ws) => {
                check_workload_matches(&ws, &expected, &self.platform, self.cost.as_ref())?;
                ws
            }
            None => Arc::new(WorkloadSet::build(
                expected,
                &self.platform,
                self.cost.as_ref(),
            )?),
        };
        if let Some(plan) = &self.faults {
            plan.validate(self.platform.len())?;
        }
        let mut engine = Engine::new(
            ws,
            self.platform.clone(),
            Arc::clone(&self.cost),
            self.seed,
            self.cap,
            Box::new(LiveArrivals),
            self.faults,
            self.trace,
        );
        engine
            .queue
            .push(SimTime::ZERO, EventKind::PhaseStart { phase: 0 });
        engine.queue.push(self.cap, EventKind::End);
        engine.seed_fault_events(0);
        Ok(LiveSession {
            engine,
            scheduler,
            platform: self.platform,
            cost: self.cost,
            seed: self.seed,
            cap: self.cap,
            phase_starts: vec![(SimTime::ZERO, self.scenario)],
            closed: None,
            per_key_stamp: BTreeMap::new(),
            frames: BTreeMap::new(),
            admitted: Vec::new(),
            max_admitted: SimTime::ZERO,
            horizon: None,
            finished: false,
        })
    }
}

/// One admitted arrival: where it landed after clamping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The model instance the request targets.
    pub key: ModelKey,
    /// The frame index assigned within the key's stream.
    pub frame: u64,
    /// The effective virtual arrival instant (the requested stamp,
    /// clamped to the open window and per-key time order).
    pub at: SimTime,
}

/// What a [`LiveSession::step_until`] call left the session in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveStatus {
    /// The session is still accepting work.
    Running,
    /// The horizon fired; only [`LiveSession::finish`] remains.
    Finished,
}

/// A long-running, event-driven simulation session.
///
/// See the [module docs](self) for the execution model and the
/// replay-equivalence guarantee.
pub struct LiveSession {
    engine: Engine,
    scheduler: Box<dyn Scheduler>,
    platform: Platform,
    cost: Arc<dyn CostBackend>,
    seed: u64,
    cap: SimTime,
    /// The phase schedule so far: each phase's start and scenario. Ends
    /// are implied (next start, or the horizon for the last phase).
    phase_starts: Vec<(SimTime, Scenario)>,
    /// Instants at or before this are fully processed; admissions must
    /// land strictly after it. `None` until the first step.
    closed: Option<SimTime>,
    /// Latest admitted stamp per key (admissions are per-key
    /// non-decreasing, so admission order equals replay order).
    per_key_stamp: BTreeMap<ModelKey, SimTime>,
    /// Next frame index per key.
    frames: BTreeMap<ModelKey, u64>,
    /// Every admitted arrival, in admission order — the session recorder.
    admitted: Vec<(SimTime, ModelKey)>,
    /// Latest stamp over all admissions (bounds every outstanding
    /// deadline via the max-period slack).
    max_admitted: SimTime,
    /// Resolved by [`begin_drain`](Self::begin_drain).
    horizon: Option<SimTime>,
    finished: bool,
}

impl fmt::Debug for LiveSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveSession")
            .field("now", &self.engine.now)
            .field("closed", &self.closed)
            .field("phases", &self.phase_starts.len())
            .field("admitted", &self.admitted.len())
            .field("horizon", &self.horizon)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl LiveSession {
    /// Admits one root-frame request for `(pipeline, node)` of the current
    /// phase's scenario at virtual instant `stamp`.
    ///
    /// The effective instant is `stamp` clamped (upward) to the current
    /// phase's start, strictly past the closed frontier, and to the key's
    /// latest prior admission — so the recorded stream is always a valid,
    /// per-key time-ordered trace. The returned [`Admission`] reports
    /// where the request actually landed.
    ///
    /// # Errors
    ///
    /// [`LiveError::UnknownModel`] for keys that are not current-phase
    /// roots, [`LiveError::Draining`]/[`LiveError::Finished`] after a
    /// drain, [`LiveError::PastHorizon`] when the effective instant would
    /// land at/after the horizon cap.
    pub fn admit(
        &mut self,
        pipeline: PipelineId,
        node: NodeId,
        stamp: SimTime,
    ) -> Result<Admission, LiveError> {
        if self.finished {
            return Err(LiveError::Finished);
        }
        if self.horizon.is_some() {
            return Err(LiveError::Draining);
        }
        let phase = self.phase_starts.len() - 1;
        let key = ModelKey {
            phase,
            pipeline,
            node,
        };
        let info = self
            .engine
            .ws
            .try_node(key)
            .ok_or_else(|| LiveError::UnknownModel {
                reason: format!("{key} does not exist in the current scenario"),
            })?;
        if info.parent().is_some() {
            return Err(LiveError::UnknownModel {
                reason: format!("{key} is a cascade child; only root nodes take external requests"),
            });
        }
        let mut at = stamp.max(self.phase_starts[phase].0);
        if let Some(closed) = self.closed {
            at = at.max(closed + SimTime::from_ns(1));
        }
        if let Some(&prev) = self.per_key_stamp.get(&key) {
            at = at.max(prev);
        }
        if at >= self.cap {
            return Err(LiveError::PastHorizon {
                at,
                horizon: self.cap,
            });
        }
        let frame = {
            let f = self.frames.entry(key).or_insert(0);
            let cur = *f;
            *f += 1;
            cur
        };
        self.engine.queue.push(
            at,
            EventKind::FrameArrival {
                phase,
                pipeline,
                node,
                frame,
            },
        );
        self.admitted.push((at, key));
        self.per_key_stamp.insert(key, at);
        self.max_admitted = self.max_admitted.max(at);
        Ok(Admission { key, frame, at })
    }

    /// Admits a fault against accelerator `acc` at virtual instant
    /// `stamp`, appending it to the session's fault plan and scheduling
    /// its boundary events. The effective instant is `stamp` clamped
    /// strictly past the closed frontier (faults, like arrivals, cannot
    /// land on instants already processed); the clamped instant is
    /// returned.
    ///
    /// Faults admitted this way replay bit-identically through the batch
    /// [`FaultPlan`] path: the recorded plan rides along in the
    /// [`LiveSessionRecord`], and intra-instant ordering is pinned to plan
    /// order (the event tie key is the plan index), so live push order is
    /// irrelevant. Fault admission stays open during a drain — chaos does
    /// not respect shutdown windows.
    ///
    /// # Errors
    ///
    /// [`LiveError::Finished`] after the horizon fired,
    /// [`LiveError::PastHorizon`] when the clamped instant lands at/after
    /// the (possibly drain-resolved) horizon, and a wrapped
    /// [`SimError::InvalidFault`] for an out-of-range accelerator or a
    /// non-finite / sub-unity slowdown factor.
    pub fn admit_fault(
        &mut self,
        acc: AcceleratorId,
        kind: FaultKind,
        stamp: SimTime,
    ) -> Result<SimTime, LiveError> {
        if self.finished {
            return Err(LiveError::Finished);
        }
        if acc.0 >= self.platform.len() {
            return Err(LiveError::Sim(SimError::InvalidFault {
                reason: format!(
                    "accelerator {} out of range (platform has {})",
                    acc.0,
                    self.platform.len()
                ),
            }));
        }
        if let FaultKind::Slowdown { factor, .. } = kind {
            if !factor.is_finite() || factor < 1.0 {
                return Err(LiveError::Sim(SimError::InvalidFault {
                    reason: format!("slowdown factor {factor} must be finite and >= 1"),
                }));
            }
        }
        let mut at = stamp;
        if let Some(closed) = self.closed {
            at = at.max(closed + SimTime::from_ns(1));
        }
        let horizon = self.engine.horizon;
        if at >= horizon {
            return Err(LiveError::PastHorizon { at, horizon });
        }
        if self.engine.faults.is_none() {
            self.engine.faults = Some(Box::new(FaultRuntime::new(
                FaultPlan::new(),
                self.platform.len(),
            )));
        }
        let idx = self
            .engine
            .faults
            .as_mut()
            .expect("runtime installed above")
            .push_live(FaultEvent { at, acc, kind });
        self.engine.seed_fault_events(idx);
        Ok(at)
    }

    /// Processes every pending event at or before `frontier` and closes
    /// those instants. Callers guarantee (and [`admit`](Self::admit)
    /// enforces) that no later admission lands at or before a closed
    /// instant — the property that makes incremental stepping invisible.
    pub fn step_until(&mut self, frontier: SimTime) -> LiveStatus {
        if !self.finished {
            loop {
                match self.engine.step_event(self.scheduler.as_mut(), frontier) {
                    StepStatus::Processed => {}
                    StepStatus::Blocked => break,
                    StepStatus::Finished => {
                        self.finished = true;
                        break;
                    }
                }
            }
        }
        self.closed = Some(self.closed.map_or(frontier, |c| c.max(frontier)));
        if self.finished {
            LiveStatus::Finished
        } else {
            LiveStatus::Running
        }
    }

    /// The smallest stamp a new admission or order can carry: strictly
    /// past the closed frontier.
    pub fn next_stamp(&self) -> SimTime {
        self.closed
            .map_or(SimTime::ZERO, |c| c + SimTime::from_ns(1))
    }

    /// Where an order stamped `stamp` would take effect, and the phase
    /// windows a replacement workload must resolve: the boundary is
    /// `max(stamp, latest admitted stamp) + max current-phase period`, so
    /// every already-released frame's deadline falls at or before it and
    /// release-time censoring matches a replay that knew the boundary all
    /// along.
    fn boundary_for(&self, stamp: SimTime) -> SimTime {
        let phase = self.phase_starts.len() - 1;
        let slack = self
            .engine
            .ws
            .nodes()
            .filter(|n| n.key().phase == phase)
            .map(NodeInfo::period)
            .max()
            .unwrap_or(SimTime::from_ns(1));
        stamp.max(self.max_admitted) + slack
    }

    /// Validates an order stamp and returns the effective instant.
    fn order_stamp(&self, stamp: SimTime) -> Result<SimTime, LiveError> {
        if self.finished {
            return Err(LiveError::Finished);
        }
        if self.horizon.is_some() {
            return Err(LiveError::Draining);
        }
        let mut at = stamp;
        if let Some(closed) = self.closed {
            at = at.max(closed + SimTime::from_ns(1));
        }
        let current_start = self.phase_starts[self.phase_starts.len() - 1].0;
        if at < current_start {
            return Err(LiveError::SwapPending {
                boundary: current_start,
            });
        }
        Ok(at)
    }

    /// The phase windows the session resolves to under `horizon`.
    fn resolved_phases(&self, horizon: SimTime) -> Vec<Phase> {
        self.phase_starts
            .iter()
            .enumerate()
            .map(|(i, (start, scenario))| {
                let end = self
                    .phase_starts
                    .get(i + 1)
                    .map(|(s, _)| *s)
                    .unwrap_or(horizon);
                Phase::new(*start, end, scenario.clone())
            })
            .collect()
    }

    /// Installs a replacement workload after digest/window validation and
    /// registers any new models with the metrics (idempotent for existing
    /// keys).
    fn install_workload(
        &mut self,
        ws: Arc<WorkloadSet>,
        horizon: SimTime,
    ) -> Result<(), LiveError> {
        check_workload_matches(
            &ws,
            &self.resolved_phases(horizon),
            &self.platform,
            self.cost.as_ref(),
        )?;
        for node in ws.nodes() {
            self.engine.metrics.entry(
                node.key(),
                node.model_name(),
                node.rate().as_fps(),
                node.variant_count(),
            );
        }
        self.engine.ws = ws;
        Ok(())
    }

    /// Plans a scenario hot-swap ordered at `stamp`: the boundary instant
    /// the new phase would start at, and the full phase windows the
    /// replacement [`WorkloadSet`] must be built for — for callers that
    /// build (or cache) the workload themselves and install it with
    /// [`swap_prebuilt`](Self::swap_prebuilt). The plan stays valid until
    /// the session is stepped or admits past it.
    ///
    /// # Errors
    ///
    /// Same validity conditions as [`swap_scenario`](Self::swap_scenario).
    pub fn plan_swap(
        &self,
        scenario: &Scenario,
        stamp: SimTime,
    ) -> Result<(SimTime, Vec<Phase>), LiveError> {
        let at = self.order_stamp(stamp)?;
        let boundary = self.boundary_for(at);
        if boundary >= self.cap {
            return Err(LiveError::PastHorizon {
                at: boundary,
                horizon: self.cap,
            });
        }
        let mut phases = self.resolved_phases(self.cap);
        let last = phases.len() - 1;
        phases[last] = Phase::new(
            phases[last].start(),
            boundary,
            phases[last].scenario().clone(),
        );
        phases.push(Phase::new(boundary, self.cap, scenario.clone()));
        Ok((boundary, phases))
    }

    /// Replaces the served scenario mid-session: the current phase ends at
    /// the returned boundary instant and `scenario` starts there.
    /// Requests admitted after this call target the new scenario (stamps
    /// clamp up to the boundary); in-flight frames of the old phase drain
    /// under the usual phase-flush rules.
    ///
    /// The replacement workload is built internally; use
    /// [`plan_swap`](Self::plan_swap) + [`swap_prebuilt`](Self::swap_prebuilt)
    /// to supply a cached build.
    ///
    /// # Errors
    ///
    /// [`LiveError::SwapPending`] while a previously ordered boundary has
    /// not been reached, [`LiveError::PastHorizon`] when the boundary
    /// would fall at/after the horizon cap, and the usual
    /// draining/finished errors.
    pub fn swap_scenario(
        &mut self,
        scenario: Scenario,
        stamp: SimTime,
    ) -> Result<SimTime, LiveError> {
        let (boundary, phases) = self.plan_swap(&scenario, stamp)?;
        let ws = Arc::new(WorkloadSet::build(
            phases,
            &self.platform,
            self.cost.as_ref(),
        )?);
        self.phase_starts.push((boundary, scenario));
        let phase = self.phase_starts.len() - 1;
        self.install_workload(ws, self.cap)?;
        self.engine
            .queue
            .push(boundary, EventKind::PhaseStart { phase });
        Ok(boundary)
    }

    /// Like [`swap_scenario`](Self::swap_scenario), but installs a
    /// caller-built workload for the windows returned by
    /// [`plan_swap`](Self::plan_swap) with the same `stamp`. The workload
    /// is digest-validated against the session's cost backend and the
    /// planned windows; a mismatch rejects the swap without touching the
    /// session.
    ///
    /// # Errors
    ///
    /// [`SimError::WorkloadMismatch`] (wrapped) for a workload whose
    /// backend digest, platform width, or phase windows disagree; plus the
    /// conditions of [`plan_swap`](Self::plan_swap).
    pub fn swap_prebuilt(
        &mut self,
        scenario: Scenario,
        workload: Arc<WorkloadSet>,
        stamp: SimTime,
    ) -> Result<SimTime, LiveError> {
        let (boundary, phases) = self.plan_swap(&scenario, stamp)?;
        check_workload_matches(&workload, &phases, &self.platform, self.cost.as_ref())?;
        self.phase_starts.push((boundary, scenario));
        let phase = self.phase_starts.len() - 1;
        self.install_workload(workload, self.cap)?;
        self.engine
            .queue
            .push(boundary, EventKind::PhaseStart { phase });
        Ok(boundary)
    }

    /// Begins a graceful drain ordered at `stamp`: admissions stop
    /// immediately, and the session's horizon resolves to the returned
    /// instant — late enough that every admitted frame's deadline falls
    /// at or before it, so no in-flight work is censored by the shutdown
    /// itself. Step the session to the horizon (or call
    /// [`finish`](Self::finish), which does) to complete the drain.
    ///
    /// # Errors
    ///
    /// [`LiveError::SwapPending`] while a swap boundary is outstanding;
    /// draining/finished errors as usual.
    pub fn begin_drain(&mut self, stamp: SimTime) -> Result<SimTime, LiveError> {
        let at = self.order_stamp(stamp)?;
        let horizon = self.boundary_for(at).min(self.cap);
        let phases = self.resolved_phases(horizon);
        let ws = Arc::new(WorkloadSet::build(
            phases,
            &self.platform,
            self.cost.as_ref(),
        )?);
        self.horizon = Some(horizon);
        self.install_workload(ws, horizon)?;
        self.engine.horizon = horizon;
        self.engine.metrics.set_horizon(horizon);
        self.engine.queue.push(horizon, EventKind::End);
        Ok(horizon)
    }

    /// Completes the session: drains (at the next valid stamp) unless a
    /// drain was already ordered, steps to the horizon, and returns the
    /// final metrics plus the replayable session record. An outstanding
    /// swap boundary is fast-forwarded across first — the new phase
    /// starts, then immediately drains.
    ///
    /// # Errors
    ///
    /// Propagates workload-rebuild errors from the implicit drain.
    pub fn finish(mut self) -> Result<(SimOutcome, LiveSessionRecord), LiveError> {
        let horizon = match self.horizon {
            Some(h) => h,
            None if self.finished => self.cap,
            None => {
                let pending = self.phase_starts[self.phase_starts.len() - 1].0;
                if self.closed.is_none_or(|c| c < pending) {
                    self.step_until(pending);
                }
                let stamp = self.next_stamp();
                self.begin_drain(stamp)?
            }
        };
        self.step_until(horizon);
        debug_assert!(self.finished, "stepping to the horizon fires End");
        let record = LiveSessionRecord {
            platform: self.platform.clone(),
            cost: Arc::clone(&self.cost),
            seed: self.seed,
            phases: self.phase_starts.clone(),
            horizon,
            trace: ArrivalTrace::from_events("live-session", self.admitted.clone()),
            faults: self
                .engine
                .faults
                .as_ref()
                .map_or_else(FaultPlan::new, |f| f.plan().clone()),
        };
        Ok((self.engine.take_outcome(), record))
    }

    /// Current virtual time of the engine (the latest processed instant).
    pub fn now(&self) -> SimTime {
        self.engine.now
    }

    /// The closed frontier: instants at or before this are fully
    /// processed. `None` before the first step.
    pub fn closed(&self) -> Option<SimTime> {
        self.closed
    }

    /// The resolved horizon, once a drain was ordered.
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// The session's hard horizon cap.
    pub fn horizon_cap(&self) -> SimTime {
        self.cap
    }

    /// Whether a drain was ordered.
    pub fn is_draining(&self) -> bool {
        self.horizon.is_some()
    }

    /// Whether the horizon fired.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The index of the phase requests currently target.
    pub fn current_phase(&self) -> usize {
        self.phase_starts.len() - 1
    }

    /// Number of arrivals admitted so far.
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// Tasks waiting for dispatch right now.
    pub fn ready_count(&self) -> usize {
        self.engine.arena.ready_ids().len()
    }

    /// Layers executing right now.
    pub fn running_count(&self) -> usize {
        self.engine.in_flight.len()
    }

    /// Events pending in the engine's queue — the session's true
    /// event-queue pressure (admitted arrivals not yet processed, layer
    /// completions in flight, and the phase/horizon bookkeeping events).
    pub fn event_queue_depth(&self) -> usize {
        self.engine.queue.len()
    }

    /// The cumulative metrics as of the latest processed instant.
    pub fn live_metrics(&self) -> &Metrics {
        &self.engine.metrics
    }

    /// The workload currently installed.
    pub fn workload(&self) -> &Arc<WorkloadSet> {
        &self.engine.ws
    }
}

/// Everything needed to re-run a live session offline: platform, cost
/// backend, seed, the phase schedule as it actually unfolded, the
/// resolved horizon, and the recorded arrival trace.
#[derive(Debug, Clone)]
pub struct LiveSessionRecord {
    platform: Platform,
    cost: Arc<dyn CostBackend>,
    seed: u64,
    phases: Vec<(SimTime, Scenario)>,
    horizon: SimTime,
    trace: ArrivalTrace,
    faults: FaultPlan,
}

impl LiveSessionRecord {
    /// The recorded arrival trace (serializable via
    /// [`ArrivalTrace::to_csv`]).
    pub fn trace(&self) -> &ArrivalTrace {
        &self.trace
    }

    /// The recorded fault plan — every fault the session ran under,
    /// whether installed at start or admitted live, in plan order
    /// (serializable via [`FaultPlan::to_csv`]). Empty when the session
    /// saw no faults.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The session's resolved horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// The phase schedule: each phase's start instant and scenario.
    pub fn phases(&self) -> &[(SimTime, Scenario)] {
        &self.phases
    }

    /// The workload-realization seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The calibration digest of the backend that priced the session.
    pub fn cost_digest(&self) -> u64 {
        self.cost.calibration_digest()
    }

    /// The batch-simulation builder equivalent to the live session —
    /// phases, horizon, seed, and backend configured; add an arrival
    /// source (or use [`replay`](Self::replay)).
    pub fn builder(&self) -> SimulationBuilder {
        let mut b = SimulationBuilder::new(self.platform.clone(), self.phases[0].1.clone())
            .duration(self.horizon)
            .seed(self.seed)
            .cost_backend(Arc::clone(&self.cost));
        for (start, scenario) in &self.phases[1..] {
            b = b.add_phase(*start, scenario.clone());
        }
        if !self.faults.is_empty() {
            b = b.faults(self.faults.clone());
        }
        b
    }

    /// Re-runs the recorded session through the batch simulator under
    /// `scheduler`. With a fresh scheduler equal to the live session's,
    /// the returned metrics are **bit-identical** to the live outcome.
    ///
    /// # Errors
    ///
    /// Propagates simulator validation errors (a hand-edited record can
    /// be inconsistent; an untouched one cannot).
    pub fn replay(&self, scheduler: &mut dyn Scheduler) -> Result<SimOutcome, SimError> {
        self.replay_trace(self.trace.clone(), scheduler)
    }

    /// [`replay`](Self::replay) with an explicit trace — e.g. one that
    /// round-tripped through [`ArrivalTrace::to_csv`] and
    /// [`ArrivalTrace::parse`].
    ///
    /// # Errors
    ///
    /// Propagates simulator validation errors.
    pub fn replay_trace(
        &self,
        trace: ArrivalTrace,
        scheduler: &mut dyn Scheduler,
    ) -> Result<SimOutcome, SimError> {
        self.builder()
            .arrivals(TraceArrivals::new(Arc::new(trace)))
            .run(scheduler)
    }

    /// [`replay`](Self::replay) with a flight recorder attached. With a
    /// fresh scheduler equal to the live session's and the same recorder
    /// config the live session ran with, the returned outcome's trace is
    /// **byte-identical** (per exporter output) to the live trace —
    /// the flight-recorder extension of the replay-equivalence guarantee.
    ///
    /// # Errors
    ///
    /// Propagates simulator validation errors.
    pub fn replay_traced(
        &self,
        config: TraceConfig,
        scheduler: &mut dyn Scheduler,
    ) -> Result<SimOutcome, SimError> {
        self.builder()
            .arrivals(TraceArrivals::new(Arc::new(self.trace.clone())))
            .trace(config)
            .run(scheduler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::PlatformPreset;
    use dream_models::{CascadeProbability, ScenarioKind};

    fn scenario(kind: ScenarioKind) -> Scenario {
        Scenario::new(kind, CascadeProbability::new(0.5).unwrap())
    }

    fn session(seed: u64) -> LiveSession {
        LiveSessionBuilder::new(
            Platform::preset(PlatformPreset::Hetero4kWs1Os2),
            scenario(ScenarioKind::ArCall),
        )
        .seed(seed)
        .start(Box::new(dream_baselines_stub::Fcfs))
        .unwrap()
    }

    /// A minimal deterministic scheduler for in-crate tests (the real
    /// baselines live downstream): first ready task onto the first idle
    /// accelerator.
    mod dream_baselines_stub {
        use crate::scheduler::{Assignment, Decision, Scheduler, SystemView};

        #[derive(Debug, Default)]
        pub struct Fcfs;

        impl Scheduler for Fcfs {
            fn name(&self) -> &str {
                "fcfs-stub"
            }

            fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
                let mut d = Decision::none();
                let mut idle = view.idle_ids().iter();
                for &task in view.ready_ids() {
                    let Some(&acc) = idle.next() else { break };
                    d.assignments.push(Assignment::single(task, acc));
                }
                d
            }
        }
    }

    fn roots(ws: &WorkloadSet, phase: usize) -> Vec<ModelKey> {
        ws.nodes()
            .filter(|n| n.key().phase == phase && n.parent().is_none())
            .map(NodeInfo::key)
            .collect()
    }

    #[test]
    fn prefix_tables_survive_phase_extension() {
        // The hot-swap correctness hinge: appending a phase re-registers
        // earlier phases' layers identically, so ids and table rows of the
        // prefix are bit-stable.
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let cost = CostModel::paper_default();
        let one = WorkloadSet::build(
            vec![Phase::new(
                SimTime::ZERO,
                SimTime::from_ns(1 << 62),
                scenario(ScenarioKind::ArCall),
            )],
            &platform,
            &cost,
        )
        .unwrap();
        let two = WorkloadSet::build(
            vec![
                Phase::new(
                    SimTime::ZERO,
                    SimTime::from_ns(500_000_000),
                    scenario(ScenarioKind::ArCall),
                ),
                Phase::new(
                    SimTime::from_ns(500_000_000),
                    SimTime::from_ns(1 << 62),
                    scenario(ScenarioKind::VrGaming),
                ),
            ],
            &platform,
            &cost,
        )
        .unwrap();
        assert!(two.layer_count() > one.layer_count());
        for node in one.nodes() {
            let ext = two.try_node(node.key()).expect("prefix node survives");
            assert_eq!(node.model_name(), ext.model_name());
            for v in 0..node.variant_count() {
                let a = node.variant_layers(dream_models::VariantId(v));
                let b = ext.variant_layers(dream_models::VariantId(v));
                assert_eq!(a, b, "layer ids must be stable across extension");
            }
        }
        for l in 0..one.layer_count() {
            let id = crate::LayerId(l);
            for acc in 0..one.acc_count() {
                let acc = dream_cost::AcceleratorId(acc);
                assert_eq!(
                    one.latency_ns(id, acc).to_bits(),
                    two.latency_ns(id, acc).to_bits()
                );
                assert_eq!(
                    one.energy_pj(id, acc).to_bits(),
                    two.energy_pj(id, acc).to_bits()
                );
                assert_eq!(
                    one.lat_pref(id, acc).to_bits(),
                    two.lat_pref(id, acc).to_bits()
                );
                assert_eq!(
                    one.cold_switch_ratio(id, acc).to_bits(),
                    two.cold_switch_ratio(id, acc).to_bits()
                );
            }
            assert_eq!(
                one.avg_latency_ns(id).to_bits(),
                two.avg_latency_ns(id).to_bits()
            );
        }
    }

    #[test]
    fn admissions_clamp_and_number_frames() {
        let mut s = session(1);
        let keys = roots(s.workload(), 0);
        let k = keys[0];
        let a = s.admit(k.pipeline, k.node, SimTime::from_ns(100)).unwrap();
        assert_eq!(a.frame, 0);
        assert_eq!(a.at, SimTime::from_ns(100));
        // Earlier stamp for the same key clamps to the previous one.
        let b = s.admit(k.pipeline, k.node, SimTime::from_ns(50)).unwrap();
        assert_eq!(b.frame, 1);
        assert_eq!(b.at, SimTime::from_ns(100));
        // After stepping, stamps clamp strictly past the frontier.
        s.step_until(SimTime::from_ns(1_000));
        let c = s.admit(k.pipeline, k.node, SimTime::from_ns(10)).unwrap();
        assert_eq!(c.at, SimTime::from_ns(1_001));
        assert_eq!(s.admitted_count(), 3);
    }

    #[test]
    fn admission_rejects_non_roots_and_unknown_keys() {
        let mut s = session(1);
        // AR_Call pipeline 0: KWS (root) → GNMT (child).
        let err = s
            .admit(PipelineId(0), NodeId(1), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, LiveError::UnknownModel { .. }));
        let err = s
            .admit(PipelineId(9), NodeId(0), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, LiveError::UnknownModel { .. }));
    }

    #[test]
    fn drain_stops_admissions_and_finishes() {
        let mut s = session(2);
        let k = roots(s.workload(), 0)[0];
        s.admit(k.pipeline, k.node, SimTime::ZERO).unwrap();
        s.step_until(SimTime::from_ns(10_000_000));
        let h = s.begin_drain(s.next_stamp()).unwrap();
        assert!(s.is_draining());
        assert!(matches!(
            s.admit(k.pipeline, k.node, s.next_stamp()),
            Err(LiveError::Draining)
        ));
        assert_eq!(s.step_until(h), LiveStatus::Finished);
        let (outcome, record) = s.finish().unwrap();
        assert_eq!(outcome.metrics().horizon(), h);
        assert_eq!(record.horizon(), h);
        assert_eq!(record.trace().len(), 1);
    }

    #[test]
    fn swap_rejects_until_boundary_passed_then_retargets() {
        let mut s = session(3);
        let k = roots(s.workload(), 0)[0];
        s.admit(k.pipeline, k.node, SimTime::ZERO).unwrap();
        s.step_until(SimTime::from_ns(1_000_000));
        let boundary = s
            .swap_scenario(scenario(ScenarioKind::VrGaming), s.next_stamp())
            .unwrap();
        assert!(boundary > SimTime::from_ns(1_000_000));
        assert_eq!(s.current_phase(), 1);
        // A second swap before the boundary is rejected.
        let err = s
            .swap_scenario(scenario(ScenarioKind::ArCall), s.next_stamp())
            .unwrap_err();
        assert!(matches!(err, LiveError::SwapPending { .. }));
        // Admissions now target the new phase, clamped to its start.
        let new_roots = roots(s.workload(), 1);
        assert!(!new_roots.is_empty());
        let nk = new_roots[0];
        let a = s.admit(nk.pipeline, nk.node, s.next_stamp()).unwrap();
        assert_eq!(a.key.phase, 1);
        assert_eq!(
            a.at, boundary,
            "transition-window stamps clamp to the boundary"
        );
        // Past the boundary, swapping works again.
        s.step_until(boundary + SimTime::from_ns(1_000_000));
        s.swap_scenario(scenario(ScenarioKind::ArCall), s.next_stamp())
            .unwrap();
        assert_eq!(s.current_phase(), 2);
    }

    #[test]
    fn finish_without_drain_auto_drains() {
        let mut s = session(4);
        let k = roots(s.workload(), 0)[0];
        s.admit(k.pipeline, k.node, SimTime::ZERO).unwrap();
        s.step_until(SimTime::from_ns(5_000_000));
        let (outcome, record) = s.finish().unwrap();
        assert!(outcome.final_time() > SimTime::ZERO);
        assert!(record.horizon() < SimTime::from_ns(DEFAULT_HORIZON_CAP_NS));
    }

    /// The headline guarantee, in miniature (the full multi-seed,
    /// hot-swapped, socket-fed version lives in `dream-serve`): a live
    /// session's metrics replay bit-identically through the batch path.
    #[test]
    fn live_session_replays_bit_identically() {
        let mut s = session(7);
        let keys = roots(s.workload(), 0);
        let mut t = 0u64;
        for i in 0..200u64 {
            let k = keys[(i % keys.len() as u64) as usize];
            t += 700_000 + (i % 7) * 130_000;
            s.admit(k.pipeline, k.node, SimTime::from_ns(t)).unwrap();
            if i % 16 == 0 {
                s.step_until(SimTime::from_ns(t.saturating_sub(400_000)));
            }
        }
        let (live, record) = s.finish().unwrap();
        let mut fresh = dream_baselines_stub::Fcfs;
        let batch = record.replay(&mut fresh).unwrap();
        assert_eq!(
            live.metrics().fingerprint(),
            batch.metrics().fingerprint(),
            "live and batch metrics must be bit-identical"
        );
        assert_eq!(live.final_time(), batch.final_time());
    }

    #[test]
    fn live_replay_equivalence_across_hot_swap() {
        let mut s = session(11);
        let keys = roots(s.workload(), 0);
        let mut t = 0u64;
        for i in 0..120u64 {
            let k = keys[(i % keys.len() as u64) as usize];
            t += 900_000;
            s.admit(k.pipeline, k.node, SimTime::from_ns(t)).unwrap();
        }
        s.step_until(SimTime::from_ns(t));
        let boundary = s
            .swap_scenario(scenario(ScenarioKind::VrGaming), s.next_stamp())
            .unwrap();
        let new_keys = roots(s.workload(), 1);
        for i in 0..120u64 {
            let k = new_keys[(i % new_keys.len() as u64) as usize];
            let at = boundary + SimTime::from_ns(i * 800_000);
            s.admit(k.pipeline, k.node, at).unwrap();
            if i % 32 == 0 {
                s.step_until(boundary + SimTime::from_ns(i * 800_000));
            }
        }
        let (live, record) = s.finish().unwrap();
        assert_eq!(record.phases().len(), 2);
        let mut fresh = dream_baselines_stub::Fcfs;
        let batch = record.replay(&mut fresh).unwrap();
        assert_eq!(
            live.metrics().fingerprint(),
            batch.metrics().fingerprint(),
            "hot-swapped session must replay bit-identically"
        );
    }

    /// The acceptance hinge for fault injection: a session that took
    /// live-admitted faults — including a mid-run permanent failure —
    /// replays bit-identically through the batch [`FaultPlan`] path,
    /// across several seeds.
    #[test]
    fn faulted_live_session_replays_bit_identically() {
        for seed in [5u64, 17, 901] {
            let mut s = session(seed);
            let keys = roots(s.workload(), 0);
            let mut t = 0u64;
            let mut faulted = false;
            for i in 0..200u64 {
                let k = keys[(i % keys.len() as u64) as usize];
                t += 700_000 + (i % 7) * 130_000;
                s.admit(k.pipeline, k.node, SimTime::from_ns(t)).unwrap();
                if i == 40 {
                    s.admit_fault(
                        AcceleratorId(1),
                        FaultKind::Stall {
                            duration: SimTime::from_ns(9_000_000),
                        },
                        SimTime::from_ns(t),
                    )
                    .unwrap();
                    s.admit_fault(
                        AcceleratorId(2),
                        FaultKind::Slowdown {
                            factor: 2.5,
                            duration: SimTime::from_ns(30_000_000),
                        },
                        SimTime::from_ns(t + 1),
                    )
                    .unwrap();
                }
                if i == 120 {
                    // Mid-run permanent failure: whatever acc 0 is doing is
                    // aborted and requeued; acc 0 never dispatches again.
                    s.admit_fault(AcceleratorId(0), FaultKind::Fail, SimTime::from_ns(t))
                        .unwrap();
                    faulted = true;
                }
                if i % 16 == 0 {
                    s.step_until(SimTime::from_ns(t.saturating_sub(400_000)));
                }
            }
            assert!(faulted);
            let (live, record) = s.finish().unwrap();
            assert_eq!(record.faults().len(), 3);
            assert!(live.metrics().faults_injected >= 3);
            let mut fresh = dream_baselines_stub::Fcfs;
            let batch = record.replay(&mut fresh).unwrap();
            assert_eq!(
                live.metrics().fingerprint(),
                batch.metrics().fingerprint(),
                "seed {seed}: faulted live session must replay bit-identically"
            );
            assert_eq!(live.final_time(), batch.final_time(), "seed {seed}");
            assert_eq!(
                live.metrics().faults_injected,
                batch.metrics().faults_injected,
                "seed {seed}"
            );
            assert_eq!(
                live.metrics().fault_requeues,
                batch.metrics().fault_requeues,
                "seed {seed}"
            );
        }
    }

    /// A transient stall whose window straddles a hot-swap boundary:
    /// the accelerator is parked across the phase change and unparks in
    /// the new phase — and the whole thing still replays bit-identically.
    #[test]
    fn stall_straddling_hot_swap_replays_bit_identically() {
        for seed in [3u64, 23, 71] {
            let mut s = session(seed);
            let keys = roots(s.workload(), 0);
            let mut t = 0u64;
            for i in 0..120u64 {
                let k = keys[(i % keys.len() as u64) as usize];
                t += 900_000;
                s.admit(k.pipeline, k.node, SimTime::from_ns(t)).unwrap();
            }
            s.step_until(SimTime::from_ns(t));
            // A long stall starting just before the boundary instant the
            // swap below resolves to (boundary = max admitted + max
            // period, so the window comfortably straddles it).
            s.admit_fault(
                AcceleratorId(1),
                FaultKind::Stall {
                    duration: SimTime::from_ns(400_000_000),
                },
                s.next_stamp(),
            )
            .unwrap();
            let boundary = s
                .swap_scenario(scenario(ScenarioKind::VrGaming), s.next_stamp())
                .unwrap();
            let new_keys = roots(s.workload(), 1);
            for i in 0..120u64 {
                let k = new_keys[(i % new_keys.len() as u64) as usize];
                let at = boundary + SimTime::from_ns(i * 800_000);
                s.admit(k.pipeline, k.node, at).unwrap();
                if i % 32 == 0 {
                    s.step_until(at);
                }
            }
            let (live, record) = s.finish().unwrap();
            assert_eq!(record.phases().len(), 2);
            assert_eq!(record.faults().len(), 1);
            let mut fresh = dream_baselines_stub::Fcfs;
            let batch = record.replay(&mut fresh).unwrap();
            assert_eq!(
                live.metrics().fingerprint(),
                batch.metrics().fingerprint(),
                "seed {seed}: stall straddling a hot-swap must replay bit-identically"
            );
        }
    }

    #[test]
    fn admit_fault_validates_and_clamps() {
        let mut s = session(9);
        // Out-of-range accelerator.
        assert!(matches!(
            s.admit_fault(AcceleratorId(999), FaultKind::Fail, SimTime::ZERO),
            Err(LiveError::Sim(SimError::InvalidFault { .. }))
        ));
        // Sub-unity slowdown factor.
        assert!(matches!(
            s.admit_fault(
                AcceleratorId(0),
                FaultKind::Slowdown {
                    factor: 0.5,
                    duration: SimTime::from_ns(1_000),
                },
                SimTime::ZERO,
            ),
            Err(LiveError::Sim(SimError::InvalidFault { .. }))
        ));
        // Clamps strictly past the closed frontier.
        s.step_until(SimTime::from_ns(1_000));
        let at = s
            .admit_fault(
                AcceleratorId(0),
                FaultKind::Stall {
                    duration: SimTime::from_ns(500),
                },
                SimTime::from_ns(10),
            )
            .unwrap();
        assert_eq!(at, SimTime::from_ns(1_001));
        // Past-horizon stamps are rejected.
        assert!(matches!(
            s.admit_fault(
                AcceleratorId(0),
                FaultKind::Fail,
                SimTime::from_ns(DEFAULT_HORIZON_CAP_NS),
            ),
            Err(LiveError::PastHorizon { .. })
        ));
    }

    #[test]
    fn prebuilt_start_validates_digest() {
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let builder = LiveSessionBuilder::new(platform.clone(), scenario(ScenarioKind::ArCall));
        let ws = Arc::new(builder.build_workload().unwrap());
        // Wrong calibration → rejected.
        let mut params = dream_cost::CostParams::paper_defaults();
        params.dram_energy_pj_per_byte *= 2.0;
        let other = LiveSessionBuilder::new(platform, scenario(ScenarioKind::ArCall))
            .cost_backend(Arc::new(CostModel::new(params).unwrap()))
            .prebuilt_workload(Arc::clone(&ws))
            .start(Box::new(dream_baselines_stub::Fcfs));
        assert!(matches!(
            other,
            Err(LiveError::Sim(SimError::WorkloadMismatch { .. }))
        ));
        // Matching configuration → accepted.
        LiveSessionBuilder::new(
            Platform::preset(PlatformPreset::Homo4kWs2),
            scenario(ScenarioKind::ArCall),
        )
        .prebuilt_workload(ws)
        .start(Box::new(dream_baselines_stub::Fcfs))
        .unwrap();
    }
}
