//! Deterministic discrete-event simulator of a multi-accelerator ML system
//! executing real-time multi-model (RTMM) workloads.
//!
//! This is the substrate the DREAM paper evaluates on: sub-accelerators
//! execute layers non-preemptively; inference requests arrive periodically
//! per pipeline; cascaded models release their children when (and only
//! when) the parent's control dependency fires; operator-level dynamicity
//! (layer skipping, early exits) is resolved *during* execution, exactly
//! when a real system would learn the outcome.
//!
//! # Architecture
//!
//! * [`SimulationBuilder`] assembles a [`Platform`](dream_cost::Platform), a
//!   [`Scenario`](dream_models::Scenario) (or several phases of scenarios
//!   for task-level dynamicity), a seed, and a duration.
//! * The engine is a staged executor (`engine/`): events drain one
//!   *instant* at a time from a time-bucketed, pooled event queue (sorted
//!   once per instant by the canonical order — see the `event` module —
//!   so steady-state stepping allocates nothing) into per-stage modules
//!   (arrivals, completion, dynamics, dispatch, accounting) that update a
//!   slab-backed task arena and an idle-accelerator index *incrementally*. Whenever an
//!   accelerator is idle and work is ready it invokes a pluggable
//!   [`Scheduler`], which sees an immutable borrowed [`SystemView`] over
//!   that state — never a per-decision reconstruction — and returns a
//!   [`Decision`]: layer→accelerator assignments (possibly gangs), frame
//!   drops, and supernet variant switches.
//! * Root-frame arrivals come through the [`ArrivalSource`] seam
//!   ([`arrivals`]): the default [`PeriodicArrivals`] reproduces the
//!   paper's fixed-FPS pipelines bit-for-bit, while [`PoissonArrivals`],
//!   [`MmppArrivals`], and [`TraceArrivals`] (replaying a recorded
//!   [`ArrivalTrace`]) open the executor to served-traffic experiments —
//!   open-loop stochastic streams and recorded request logs.
//! * All randomness (cascade edges, skip gates, early exits, stochastic
//!   inter-arrivals) is *counter-based*: outcomes are pure functions of
//!   `(seed, pipeline, node, frame, gate)`, so every scheduler faces the
//!   identical realized workload — the apples-to-apples comparison the
//!   paper's evaluation relies on.
//! * [`Metrics`] aggregates per-model deadline violations, drops,
//!   energy, and per-request sojourn-time percentiles (p50/p95/p99 — the
//!   latency axis for open-loop traffic), from which `dream-core`
//!   computes UXCost (Algorithm 2).
//!
//! # Phase and censoring boundary semantics
//!
//! Workload phases are half-open `[start, end)` windows; gaps between
//! phases are legal and deploy no scenario
//! ([`WorkloadSet::active_phase_at`]). Arrivals occur strictly before
//! their phase's end and the horizon. A frame is *counted* iff its
//! deadline falls at or before both boundaries; completions landing
//! exactly on a boundary instant are processed before the boundary takes
//! effect, so inclusive deadlines and strict arrivals agree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
mod determ;
mod engine;
mod error;
mod event;
pub mod faults;
mod fold;
pub mod live;
mod metrics;
pub mod multi;
mod scheduler;
mod task;
mod time;
mod workload;

pub use arrivals::{
    ArrivalSource, ArrivalTrace, MmppArrivals, PeriodicArrivals, PoissonArrivals, TraceArrivals,
};
pub use determ::{DeterministicCoin, Fnv64};
pub use engine::{SimOutcome, SimulationBuilder};
pub use error::SimError;
pub use faults::{FaultEvent, FaultKind, FaultPlan, StormConfig};
pub use fold::canonical_sum;
pub use live::{
    Admission, LiveError, LiveSession, LiveSessionBuilder, LiveSessionRecord, LiveStatus,
};
pub use metrics::{Histogram, Metrics, ModelStats, HISTOGRAM_BUCKETS};
pub use multi::{MultiSession, MultiSessionBuilder};
pub use scheduler::{
    AccState, Assignment, Decision, Scheduler, SchedulerCapabilities, SystemView, TaskEvent,
    TaskEventKind,
};
pub use task::{QueuedLayer, Task, TaskId, TaskState};
// The flight-recorder vocabulary, re-exported so downstream crates need
// no direct dream-trace dependency (see `dream_trace` for the schema).
pub use dream_trace::{
    DecisionRecord, FaultTag, ModelRef, Trace, TraceConfig, TraceEvent, TraceEventKind,
    TraceRuntime, DEFAULT_TRACE_CAPACITY, SCORE_TERM_NAMES,
};
pub use time::{Micros, Millis, SimTime};
pub use workload::{LayerId, ModelKey, NodeInfo, Phase, WorkloadSet};
