/// Incremental 64-bit FNV-1a mixer — the one digest primitive behind
/// [`Metrics::fingerprint`](crate::Metrics::fingerprint),
/// [`ArrivalTrace::digest`](crate::ArrivalTrace::digest), and the bench
/// grid's result fingerprints, so every digest evolves in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts a digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one value into the digest.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Counter-based deterministic randomness for workload realization.
///
/// Every stochastic decision in a workload (does a cascade edge fire? is a
/// SkipNet block skipped? does an early exit trigger?) is a pure function of
/// `(seed, pipeline, node, frame, gate)`. Two simulations with the same seed
/// therefore realize *exactly* the same workload regardless of scheduling
/// order — the property that makes cross-scheduler comparisons fair, and
/// that a stateful RNG stream cannot provide (its draw order would depend on
/// execution order).
///
/// The mixer is SplitMix64, whose output is statistically uniform for
/// counter inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicCoin {
    seed: u64,
}

impl DeterministicCoin {
    /// Creates a coin for the given simulation seed.
    pub fn new(seed: u64) -> Self {
        DeterministicCoin { seed }
    }

    /// The simulation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)` for the given decision coordinates.
    pub fn uniform(&self, pipeline: usize, node: usize, frame: u64, gate: u64) -> f64 {
        let mut h = Self::mix(self.seed ^ 0xD1B5_4A32_D192_ED03);
        h = Self::mix(h ^ (pipeline as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = Self::mix(h ^ (node as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        h = Self::mix(h ^ frame.wrapping_mul(0x1656_67B1_9E37_79F9));
        h = Self::mix(h ^ gate.wrapping_mul(0x27D4_EB2F_1656_67C5));
        // 53 bits of mantissa → exact uniform dyadic rational in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli draw with probability `p` for the given coordinates.
    pub fn decide(&self, pipeline: usize, node: usize, frame: u64, gate: u64, p: f64) -> bool {
        self.uniform(pipeline, node, frame, gate) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_coordinates_same_outcome() {
        let c = DeterministicCoin::new(42);
        for frame in 0..100 {
            assert_eq!(c.decide(1, 2, frame, 3, 0.5), c.decide(1, 2, frame, 3, 0.5));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = DeterministicCoin::new(1);
        let b = DeterministicCoin::new(2);
        let diffs = (0..256)
            .filter(|&f| a.decide(0, 0, f, 0, 0.5) != b.decide(0, 0, f, 0, 0.5))
            .count();
        assert!(diffs > 50, "seeds should decorrelate, got {diffs} diffs");
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let c = DeterministicCoin::new(7);
        for &p in &[0.1, 0.5, 0.9] {
            let n = 4000;
            let hits = (0..n).filter(|&f| c.decide(3, 1, f, 9, p)).count();
            let rate = hits as f64 / n as f64;
            assert!((rate - p).abs() < 0.03, "p={p} rate={rate}");
        }
    }

    #[test]
    fn uniform_is_in_unit_interval_and_spread() {
        let c = DeterministicCoin::new(99);
        let mut lo = 0usize;
        for f in 0..1000 {
            let u = c.uniform(0, 0, f, 0);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                lo += 1;
            }
        }
        assert!((400..600).contains(&lo), "poorly spread: {lo}");
    }

    #[test]
    fn edge_probabilities() {
        let c = DeterministicCoin::new(5);
        assert!(!c.decide(0, 0, 0, 0, 0.0));
        assert!(c.decide(0, 0, 0, 0, 1.0));
    }
}
