//! Stages 2 and 3 — scheduling and dispatch: build the borrowed
//! [`SystemView`], collect the scheduler's [`Decision`], validate it, and
//! start the chosen layers.

use dream_trace::TraceEventKind;

use crate::scheduler::{Decision, Scheduler, SystemView};
use crate::SimTime;

use super::{Engine, InFlight};

impl Engine {
    /// Runs the decide + dispatch stages when there is anything to decide
    /// over. The view borrows the engine's incrementally maintained state
    /// directly — no per-decision reconstruction.
    pub(crate) fn invoke_scheduler(&mut self, scheduler: &mut dyn Scheduler) {
        if self.idle.is_empty() || !self.arena.has_ready() {
            return;
        }
        let tracing = self.tracing();
        let decision = {
            let view = SystemView {
                now: self.now,
                phase: self.current_phase,
                accs: &self.accs,
                arena: &self.arena,
                idle: &self.idle,
                workload: &self.ws,
                cost: self.cost.as_ref(),
                platform: &self.platform,
                record_decisions: tracing,
            };
            self.metrics.scheduler_invocations += 1;
            scheduler.schedule(&view)
        };
        if tracing {
            // Decision records land before the dispatches they explain;
            // the post-decision Counter sample closes the invocation.
            for rec in scheduler.take_decision_records() {
                self.trace_event(TraceEventKind::Decision(rec));
            }
        }
        self.apply_decision(decision, scheduler);
        if tracing {
            self.trace_event(TraceEventKind::Counter {
                ready: self.arena.ready_ids().len() as u32,
                running: self.in_flight.len() as u32,
            });
        }
    }

    pub(crate) fn apply_decision(&mut self, decision: Decision, scheduler: &mut dyn Scheduler) {
        let ws = &self.ws;
        for (task_id, variant) in decision.variant_switches {
            let valid = match self.arena.get_mut(task_id) {
                Some(task) if task.is_ready() && !task.started() => {
                    task.switch_variant(ws.node(task.key()), variant, ws)
                }
                _ => false,
            };
            if !valid {
                self.metrics.invalid_decisions += 1;
            }
        }

        for task_id in decision.drops {
            match self.arena.get(task_id) {
                Some(task) if task.is_ready() => {
                    let task = self.arena.remove(task_id).expect("dropped task exists");
                    self.record_drop(&task, scheduler);
                    self.recycle_task(task);
                }
                _ => self.metrics.invalid_decisions += 1,
            }
        }

        for assignment in decision.assignments {
            if !self.apply_assignment(assignment) {
                self.metrics.invalid_decisions += 1;
            }
        }
    }

    pub(crate) fn apply_assignment(&mut self, assignment: crate::scheduler::Assignment) -> bool {
        if assignment.accs.is_empty() {
            return false;
        }
        // No duplicate accelerators, all idle, none fault-masked (a
        // stalled/failed accelerator is absent from the idle list, but a
        // scheduler could still name it explicitly — that is an invalid
        // decision, not a dispatch).
        for (i, &acc) in assignment.accs.iter().enumerate() {
            if acc.0 >= self.accs.len()
                || assignment.accs[..i].contains(&acc)
                || !self.accs[acc.0].is_idle()
                || self.fault_masked(acc)
            {
                return false;
            }
        }
        let Some(task) = self.arena.get(assignment.task) else {
            return false;
        };
        if !task.is_ready() {
            return false;
        }
        let Some(head) = task.next_layer() else {
            return false;
        };

        let lead = assignment.accs[0];
        let (mut latency_ns, mut energy_pj) = if assignment.accs.len() == 1 {
            (
                self.ws.latency_ns(head.layer, lead),
                self.ws.energy_pj(head.layer, lead),
            )
        } else {
            let configs: Vec<&dream_cost::AcceleratorConfig> = assignment
                .accs
                .iter()
                .map(|a| self.platform.accelerator(*a).expect("validated id"))
                .collect();
            // A backend that cannot cost this gang (e.g. a table import
            // without a matching gang row) makes the assignment invalid —
            // counted, never a panic or a silently guessed cost.
            match self.cost.gang_cost(self.ws.layer(head.layer), &configs) {
                Ok(cost) => (cost.latency_ns, cost.energy_pj),
                Err(_) => return false,
            }
        };

        // Context switch: the lead accelerator last ran a different task.
        // Served from the workload's build-time switch factors — the same
        // bits the backend would return, without a dispatch-path call.
        let lead_state = &self.accs[lead.0];
        if lead_state.last_task != Some(assignment.task) {
            let sw = self.ws.switch_cost(
                self.ws.input_bytes(head.layer),
                lead_state.last_output_bytes,
                lead,
            );
            latency_ns += sw.latency_ns;
            energy_pj += sw.energy_pj;
            if lead_state.last_task.is_some() {
                self.metrics.context_switches += 1;
            }
        }

        // Active slowdown faults stretch the dispatch latency (the gang
        // runs at its slowest member). The factor is exactly 1.0 when no
        // slowdown is active, so the multiply is skipped and the float
        // path stays bit-identical to the fault-free engine; energy is
        // deliberately not rescaled (a slow accelerator does the same
        // work, just later).
        if let Some(faults) = self.faults.as_ref() {
            let factor = faults.gang_slow_factor(&assignment.accs);
            if factor != 1.0 {
                latency_ns *= factor;
            }
        }

        self.charge_dispatch_wait(assignment.task);
        let done_at = self.now + SimTime::from_ns_f64(latency_ns.max(1.0));
        for &acc in &assignment.accs {
            let st = &mut self.accs[acc.0];
            st.running = Some(assignment.task);
            st.busy_until = done_at;
            st.busy_ns += done_at.saturating_sub(self.now).as_ns();
            self.occupy_acc(acc);
        }
        if self.tracing() {
            let gang = assignment.accs.len() as u32;
            for &acc in &assignment.accs {
                self.trace_event(TraceEventKind::Dispatch {
                    task: assignment.task.0,
                    acc: acc.0 as u32,
                    gang,
                    layer: head.layer.0 as u32,
                    done_at_ns: done_at.as_ns(),
                });
            }
        }
        // The gang vector moves from the decision into the task state —
        // completion reads it back from there, so dispatch clones nothing.
        let task = self.arena.get_mut(assignment.task).expect("checked above");
        task.set_running(assignment.accs);
        self.arena.mark_running(assignment.task);
        self.in_flight_insert(
            assignment.task,
            InFlight {
                energy_pj,
                done_at,
                layer: head,
            },
        );
        self.queue.push(
            done_at,
            crate::event::EventKind::LayerDone {
                task: assignment.task,
            },
        );
        true
    }
}
