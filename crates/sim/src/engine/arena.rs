//! Slab-backed storage for live tasks.
//!
//! The arena owns every in-flight [`Task`] and maintains — incrementally,
//! as state changes are reported — the two orderings the rest of the
//! engine needs per event:
//!
//! * `live`: all tasks ascending by [`TaskId`] (the deterministic
//!   iteration order schedulers observe), mapping each id to its slab
//!   slot;
//! * `ready`: the ids of tasks awaiting dispatch, also ascending.
//!
//! Task ids are allocated monotonically, so inserts append in O(1);
//! removals and re-ready transitions are a binary search plus a small
//! memmove over the handful of live tasks. Nothing is rebuilt per event —
//! this replaces the `BTreeMap` the engine previously reconstructed a
//! borrowed view from on every scheduling decision.

use crate::task::{Task, TaskId};

#[derive(Debug, Default)]
pub(crate) struct TaskArena {
    slots: Vec<Option<Task>>,
    free: Vec<u32>,
    /// `(id, slot)` ascending by id.
    live: Vec<(TaskId, u32)>,
    /// Ids of tasks in the `Ready` state, ascending.
    ready: Vec<TaskId>,
    next_id: u64,
}

impl TaskArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next task id (monotonic; never reused).
    pub fn allocate_id(&mut self) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Stores a freshly released task. Its id must come from
    /// [`TaskArena::allocate_id`], which keeps `live` sorted by
    /// construction.
    pub fn insert(&mut self, task: Task) {
        let id = task.id();
        debug_assert!(
            self.live.last().map(|&(last, _)| last < id).unwrap_or(true),
            "task ids must be inserted in allocation order"
        );
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(task);
                s
            }
            None => {
                self.slots.push(Some(task));
                (self.slots.len() - 1) as u32
            }
        };
        self.live.push((id, slot));
        // New tasks are always Ready.
        self.ready.push(id);
    }

    /// Removes and returns a task in any state.
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.live.binary_search_by_key(&id, |&(i, _)| i).ok()?;
        let (_, slot) = self.live.remove(pos);
        if let Ok(r) = self.ready.binary_search(&id) {
            self.ready.remove(r);
        }
        self.free.push(slot);
        self.slots[slot as usize].take()
    }

    pub fn get(&self, id: TaskId) -> Option<&Task> {
        let pos = self.live.binary_search_by_key(&id, |&(i, _)| i).ok()?;
        self.slots[self.live[pos].1 as usize].as_ref()
    }

    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut Task> {
        let pos = self.live.binary_search_by_key(&id, |&(i, _)| i).ok()?;
        self.slots[self.live[pos].1 as usize].as_mut()
    }

    /// All live tasks ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = &Task> + '_ {
        self.live
            .iter()
            .map(|&(_, slot)| self.slots[slot as usize].as_ref().expect("live slot"))
    }

    /// Number of live tasks.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Ids of ready tasks, ascending.
    pub fn ready_ids(&self) -> &[TaskId] {
        &self.ready
    }

    /// Whether any task awaits dispatch.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Records that `id` left the `Ready` state (it was dispatched).
    pub fn mark_running(&mut self, id: TaskId) {
        if let Ok(pos) = self.ready.binary_search(&id) {
            self.ready.remove(pos);
        } else {
            debug_assert!(false, "mark_running on a task not in the ready list");
        }
    }

    /// Records that `id` re-entered the `Ready` state (its layer finished).
    pub fn mark_ready(&mut self, id: TaskId) {
        if let Err(pos) = self.ready.binary_search(&id) {
            self.ready.insert(pos, id);
        } else {
            debug_assert!(false, "mark_ready on a task already in the ready list");
        }
    }

    /// Debug invariant: the ready list matches the task states exactly
    /// (only evaluated under `debug_assert!`).
    pub fn ready_list_is_consistent(&self) -> bool {
        let derived: Vec<TaskId> = self.iter().filter(|t| t.is_ready()).map(Task::id).collect();
        derived == self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Phase, WorkloadSet};
    use crate::{Millis, ModelKey, SimTime};
    use dream_cost::{CostModel, Platform, PlatformPreset};
    use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};

    fn make_task(arena: &mut TaskArena, ws: &WorkloadSet) -> TaskId {
        let key = ModelKey {
            phase: 0,
            pipeline: PipelineId(1),
            node: NodeId(0),
        };
        let id = arena.allocate_id();
        let task = Task::new(
            id,
            ws.node(key),
            0,
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from(Millis::new(33)),
            true,
            ws,
        );
        arena.insert(task);
        id
    }

    fn test_workload() -> WorkloadSet {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        WorkloadSet::build(
            vec![Phase {
                start: SimTime::ZERO,
                end: SimTime::from(Millis::new(1000)),
                scenario: Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
            }],
            &platform,
            &CostModel::paper_default(),
        )
        .unwrap()
    }

    #[test]
    fn insert_remove_reuses_slots() {
        let ws = test_workload();
        let mut arena = TaskArena::new();
        let a = make_task(&mut arena, &ws);
        let b = make_task(&mut arena, &ws);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.ready_ids(), &[a, b]);
        assert!(arena.remove(a).is_some());
        assert!(arena.remove(a).is_none());
        let c = make_task(&mut arena, &ws);
        // Slot of `a` was reused but ids keep ascending.
        assert!(c > b);
        assert_eq!(arena.ready_ids(), &[b, c]);
        let ids: Vec<TaskId> = arena.iter().map(Task::id).collect();
        assert_eq!(ids, vec![b, c]);
        assert!(arena.ready_list_is_consistent());
    }

    #[test]
    fn ready_transitions_track_state() {
        let ws = test_workload();
        let mut arena = TaskArena::new();
        let a = make_task(&mut arena, &ws);
        let b = make_task(&mut arena, &ws);
        arena
            .get_mut(a)
            .unwrap()
            .set_running(vec![dream_cost::AcceleratorId(0)]);
        arena.mark_running(a);
        assert_eq!(arena.ready_ids(), &[b]);
        assert!(arena.has_ready());
        arena
            .get_mut(a)
            .unwrap()
            .complete_head(SimTime::from_ns(5), 1.0, &ws);
        arena.mark_ready(a);
        assert_eq!(arena.ready_ids(), &[a, b]);
        assert!(arena.ready_list_is_consistent());
    }
}
