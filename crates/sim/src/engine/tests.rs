use super::*;
use crate::arrivals::PeriodicArrivals;
use crate::metrics::Metrics;
use crate::scheduler::{Assignment, Decision, Scheduler, SchedulerCapabilities, SystemView};
use crate::task::TaskId;
use crate::workload::ModelKey;
use crate::Millis;
use dream_cost::PlatformPreset;
use dream_models::{CascadeProbability, NodeId, PipelineId, ScenarioKind};

/// Greedy test scheduler: oldest ready task onto the lowest idle
/// accelerator.
struct Greedy;

impl Scheduler for Greedy {
    fn name(&self) -> &str {
        "greedy-test"
    }

    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities::default()
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut decision = Decision::none();
        let mut ready: Vec<_> = view.ready_tasks().collect();
        ready.sort_by_key(|t| (t.released(), t.id()));
        let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        for task in ready {
            let Some(acc) = idle.pop() else { break };
            decision
                .assignments
                .push(Assignment::single(task.id(), acc));
        }
        decision
    }
}

fn run_ar_call(seed: u64, ms: u64) -> Metrics {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut sched = Greedy;
    SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(ms))
        .seed(seed)
        .run(&mut sched)
        .unwrap()
        .into_metrics()
}

#[test]
fn frames_flow_and_complete() {
    let m = run_ar_call(7, 500);
    // KWS at 15 fps over 500 ms: ~7 counted frames (deadline within
    // horizon); SkipNet at 30 fps: ~14.
    let mut names = std::collections::BTreeMap::new();
    for (_, s) in m.models() {
        names.insert(s.model_name, s.released);
    }
    assert!(names["KWS_res8"] >= 5, "{names:?}");
    assert!(names["SkipNet"] >= 12, "{names:?}");
    // GNMT released ≈ half of KWS (50% cascade).
    assert!(names["GNMT"] >= 1);
    assert!(names["GNMT"] < names["KWS_res8"]);
    assert_eq!(m.invalid_decisions, 0);
    assert!(m.layer_executions > 100);
}

#[test]
fn deterministic_across_runs() {
    let a = run_ar_call(42, 400);
    let b = run_ar_call(42, 400);
    assert_eq!(a.layer_executions, b.layer_executions);
    assert_eq!(a.events_processed, b.events_processed);
    let rates_a: Vec<_> = a.models().map(|(_, s)| s.violated()).collect();
    let rates_b: Vec<_> = b.models().map(|(_, s)| s.violated()).collect();
    assert_eq!(rates_a, rates_b);
    let e_a: f64 = a.models().map(|(_, s)| s.energy_pj).sum();
    let e_b: f64 = b.models().map(|(_, s)| s.energy_pj).sum();
    assert_eq!(e_a, e_b);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn seeds_change_cascade_realization() {
    let a = run_ar_call(1, 600);
    let b = run_ar_call(2, 600);
    let gnmt = |m: &Metrics| {
        m.models()
            .find(|(_, s)| s.model_name == "GNMT")
            .map(|(_, s)| s.released)
            .unwrap()
    };
    // Different seeds → different cascade draws (with overwhelming
    // probability over ≥8 frames).
    assert_ne!(gnmt(&a), gnmt(&b));
}

#[test]
fn energy_stays_near_worst_case_bound() {
    let m = run_ar_call(3, 800);
    for (_, s) in m.models() {
        if s.released > 0 {
            // The worst-case bound covers layer energy only (Algorithm 2
            // normalises to worst layer-accelerator pairs); context-switch
            // energy comes on top, so allow headroom for a scatter-happy
            // scheduler but catch gross accounting errors.
            assert!(
                s.energy_pj <= s.worst_energy_pj * 1.6,
                "{}: {} > 1.6×{}",
                s.model_name,
                s.energy_pj,
                s.worst_energy_pj
            );
            assert!(s.energy_pj > 0.0, "{} consumed no energy", s.model_name);
        }
    }
}

#[test]
fn zero_duration_rejected() {
    let platform = Platform::preset(PlatformPreset::Homo4kWs2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut s = Greedy;
    let err = SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(0))
        .run(&mut s);
    assert!(matches!(err, Err(SimError::ZeroDuration)));
}

#[test]
fn mismatched_prebuilt_workloads_rejected() {
    let platform = || Platform::preset(PlatformPreset::Homo4kWs2);
    let scenario = || Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let build = |ms: u64, cost: CostModel| {
        std::sync::Arc::new(
            SimulationBuilder::new(platform(), scenario())
                .duration(Millis::new(ms))
                .cost_model(cost)
                .build_workload()
                .unwrap(),
        )
    };
    let mut s = Greedy;

    // Matching prebuilt workload: accepted, bit-identical to fresh.
    let fresh = SimulationBuilder::new(platform(), scenario())
        .duration(Millis::new(200))
        .run(&mut s)
        .unwrap()
        .into_metrics()
        .fingerprint();
    let shared = SimulationBuilder::new(platform(), scenario())
        .duration(Millis::new(200))
        .prebuilt_workload(build(200, CostModel::paper_default()))
        .run(&mut s)
        .unwrap()
        .into_metrics()
        .fingerprint();
    assert_eq!(fresh, shared);

    // Different phase schedule: rejected.
    let err = SimulationBuilder::new(platform(), scenario())
        .duration(Millis::new(300))
        .prebuilt_workload(build(200, CostModel::paper_default()))
        .run(&mut s);
    assert!(
        matches!(err, Err(SimError::WorkloadMismatch { .. })),
        "{err:?}"
    );

    // Different platform width: rejected.
    let err = SimulationBuilder::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario())
        .duration(Millis::new(200))
        .prebuilt_workload(build(200, CostModel::paper_default()))
        .run(&mut s);
    assert!(
        matches!(err, Err(SimError::WorkloadMismatch { .. })),
        "{err:?}"
    );

    // Different cost calibration: rejected.
    let mut params = dream_cost::CostParams::paper_defaults();
    params.dram_energy_pj_per_byte *= 2.0;
    let err = SimulationBuilder::new(platform(), scenario())
        .duration(Millis::new(200))
        .prebuilt_workload(build(200, CostModel::new(params).unwrap()))
        .run(&mut s);
    assert!(
        matches!(err, Err(SimError::WorkloadMismatch { .. })),
        "{err:?}"
    );
}

#[test]
fn phase_change_flushes_and_switches_models() {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let p = CascadeProbability::default_paper();
    let mut sched = Greedy;
    let outcome = SimulationBuilder::new(platform, Scenario::new(ScenarioKind::ArCall, p))
        .add_phase(
            Millis::new(250),
            Scenario::new(ScenarioKind::DroneOutdoor, p),
        )
        .duration(Millis::new(500))
        .seed(9)
        .run(&mut sched)
        .unwrap();
    let m = outcome.metrics();
    let names: Vec<_> = m.models().map(|(k, s)| (k.phase, s.model_name)).collect();
    assert!(names.iter().any(|(p, n)| *p == 0 && *n == "SkipNet"));
    assert!(names.iter().any(|(p, n)| *p == 1 && *n == "TrailNet"));
    // Phase-1 models released frames after the switch.
    let trailnet = m
        .models()
        .find(|(k, s)| k.phase == 1 && s.model_name == "TrailNet")
        .unwrap()
        .1;
    assert!(trailnet.released > 5);
}

#[test]
fn invalid_decisions_are_counted_not_fatal() {
    struct Bad;
    impl Scheduler for Bad {
        fn name(&self) -> &str {
            "bad"
        }
        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            // Assign a bogus task id and a bogus drop every time.
            let mut d = Decision::none();
            d.drops.push(TaskId(u64::MAX));
            if let Some(acc) = view.idle_accs().next() {
                d.assignments
                    .push(Assignment::single(TaskId(u64::MAX), acc.id()));
            }
            d
        }
    }
    let platform = Platform::preset(PlatformPreset::Homo4kWs2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut s = Bad;
    let m = SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(100))
        .run(&mut s)
        .unwrap()
        .into_metrics();
    assert!(m.invalid_decisions > 0);
    // Nothing ever ran.
    assert_eq!(m.layer_executions, 0);
}

#[test]
fn utilization_is_positive_under_load() {
    let m = run_ar_call(5, 500);
    assert!(m.mean_utilization() > 0.01);
    assert!(m.mean_utilization() <= 1.0);
}

/// SkipNet's 30 fps period: divides the windows below exactly, so the
/// boundary frame's deadline lands exactly on the phase end / horizon.
const PERIOD_NS: u64 = 33_333_333;

/// Builds an engine over explicit phases and hand-places one SkipNet task
/// (frame 11, deadline exactly at `12 * PERIOD_NS`) mid-flight on
/// accelerator 0 with a single layer left, returning `(engine, task_id)`.
fn engine_with_boundary_task(
    phases: Vec<crate::workload::Phase>,
    horizon: SimTime,
) -> (Engine, TaskId) {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let cost = CostModel::paper_default();
    let ws = crate::workload::WorkloadSet::build(phases, &platform, &cost).unwrap();
    let mut engine = Engine::new(
        std::sync::Arc::new(ws),
        platform,
        std::sync::Arc::new(cost),
        0,
        horizon,
        Box::new(PeriodicArrivals),
        None,
        None,
    );
    let mut sched = Greedy;
    let key = ModelKey {
        phase: 0,
        pipeline: PipelineId(1),
        node: NodeId(0),
    };
    assert_eq!(engine.ws.node(key).period().as_ns(), PERIOD_NS);
    // Frame 11 arrives at 11 periods; deadline = 12 periods = the boundary.
    engine.now = SimTime::from_ns(11 * PERIOD_NS);
    engine.release_task(key, 11, engine.now, &mut sched);
    let id = engine.arena.iter().next().unwrap().id();
    {
        let task = engine.arena.get_mut(id).unwrap();
        assert!(task.counted(), "deadline at the boundary must be counted");
        // Drain all but the last layer, then start it on accelerator 0.
        while task.remaining().len() > 1 {
            task.set_running(vec![dream_cost::AcceleratorId(0)]);
            task.complete_head(engine.now, 0.0, &engine.ws);
        }
        task.set_running(vec![dream_cost::AcceleratorId(0)]);
    }
    engine.arena.mark_running(id);
    engine.occupy_acc(dream_cost::AcceleratorId(0));
    engine.accs[0].running = Some(id);
    let head = engine.arena.get(id).unwrap().next_layer().unwrap();
    engine.in_flight_insert(
        id,
        InFlight {
            energy_pj: 0.0,
            done_at: SimTime::from_ns(12 * PERIOD_NS),
            layer: head,
        },
    );
    (engine, id)
}

fn two_phases() -> Vec<crate::workload::Phase> {
    let p = CascadeProbability::default_paper();
    vec![
        crate::workload::Phase::new(
            SimTime::ZERO,
            SimTime::from_ns(12 * PERIOD_NS),
            Scenario::new(ScenarioKind::ArCall, p),
        ),
        crate::workload::Phase::new(
            SimTime::from_ns(12 * PERIOD_NS),
            SimTime::from_ns(24 * PERIOD_NS),
            Scenario::new(ScenarioKind::DroneOutdoor, p),
        ),
    ]
}

#[test]
fn completion_at_flush_instant_counts_as_completed() {
    // Regression: a counted frame with deadline exactly at its phase end
    // used to be flushed (→ spurious violation) when its last layer
    // finished exactly at the boundary, because the PhaseStart event
    // processes first at that instant.
    let boundary = SimTime::from_ns(12 * PERIOD_NS);
    let (mut engine, id) =
        engine_with_boundary_task(two_phases(), SimTime::from_ns(24 * PERIOD_NS));
    let mut sched = Greedy;
    engine.now = boundary;
    engine.start_phase(1, &mut sched);
    assert!(
        engine.arena.get(id).is_some(),
        "running stale task drains, not discarded"
    );
    // Its last layer completes exactly at the flush instant.
    engine.layer_done(id, &mut sched);
    let stats = engine.metrics.get_mut(ModelKey {
        phase: 0,
        pipeline: PipelineId(1),
        node: NodeId(0),
    });
    let stats = stats.unwrap();
    assert_eq!(stats.completed_on_time, 1, "on-time: now == deadline");
    assert_eq!(stats.flushed, 0);
    assert_eq!(stats.released, 1);
}

#[test]
fn completion_after_flush_instant_is_still_flushed() {
    let boundary = SimTime::from_ns(12 * PERIOD_NS);
    let (mut engine, id) =
        engine_with_boundary_task(two_phases(), SimTime::from_ns(24 * PERIOD_NS));
    let mut sched = Greedy;
    engine.now = boundary;
    engine.start_phase(1, &mut sched);
    // The layer drains past the boundary: the flush stands.
    engine.now = boundary + SimTime::from_ns(5);
    engine.layer_done(id, &mut sched);
    let stats = engine
        .metrics
        .get_mut(ModelKey {
            phase: 0,
            pipeline: PipelineId(1),
            node: NodeId(0),
        })
        .unwrap();
    assert_eq!(stats.completed_on_time, 0);
    assert_eq!(stats.flushed, 1);
}

#[test]
fn completion_at_horizon_instant_is_recorded() {
    // Regression: a counted frame with deadline exactly at the horizon
    // used to lose its completion when the layer finished exactly at the
    // horizon instant (the End event breaks the loop first).
    let horizon = SimTime::from_ns(12 * PERIOD_NS);
    let phases = vec![crate::workload::Phase::new(
        SimTime::ZERO,
        horizon,
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
    )];
    let (mut engine, id) = engine_with_boundary_task(phases, horizon);
    let mut sched = Greedy;
    engine.now = horizon;
    engine
        .queue
        .push(horizon, EventKind::LayerDone { task: id });
    engine.drain_horizon_completions(&mut sched);
    let stats = engine
        .metrics
        .get_mut(ModelKey {
            phase: 0,
            pipeline: PipelineId(1),
            node: NodeId(0),
        })
        .unwrap();
    assert_eq!(stats.completed_on_time, 1, "deadline == horizon is on time");
    assert_eq!(stats.released, 1);
}

fn run_ar_call_with_faults(seed: u64, ms: u64, plan: crate::faults::FaultPlan) -> Metrics {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut sched = Greedy;
    SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(ms))
        .seed(seed)
        .faults(plan)
        .run(&mut sched)
        .unwrap()
        .into_metrics()
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    // The zero-fault golden check: installing an *empty* fault runtime
    // must not perturb a single bit of the metrics — the fault seam is
    // free when unused.
    let bare = run_ar_call(42, 400);
    let empty = run_ar_call_with_faults(42, 400, crate::faults::FaultPlan::new());
    assert_eq!(bare.fingerprint(), empty.fingerprint());
    assert_eq!(empty.faults_injected, 0);
    assert_eq!(empty.fault_requeues, 0);
}

#[test]
fn fault_storm_runs_are_deterministic() {
    let plan = crate::faults::FaultPlan::storm(
        99,
        3,
        SimTime::from_ns(400_000_000),
        crate::faults::StormConfig::default(),
    );
    assert!(!plan.is_empty(), "default storm config produces faults");
    let a = run_ar_call_with_faults(42, 400, plan.clone());
    let b = run_ar_call_with_faults(42, 400, plan);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert!(a.faults_injected > 0);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.fault_requeues, b.fault_requeues);
}

#[test]
fn permanent_failure_of_all_accelerators_aborts_and_requeues() {
    // Fail the whole platform mid-run: every in-flight layer is aborted
    // and requeued, nothing dispatches afterwards, and the run still
    // terminates cleanly at the horizon.
    let mut plan = crate::faults::FaultPlan::new();
    for acc in 0..3 {
        plan.push(crate::faults::FaultEvent {
            at: SimTime::from_ns(50_000_000),
            acc: dream_cost::AcceleratorId(acc),
            kind: crate::faults::FaultKind::Fail,
        });
    }
    let m = run_ar_call_with_faults(7, 400, plan);
    assert_eq!(m.faults_injected, 3);
    assert!(m.layer_executions > 0, "work ran before the failure");
    assert!(
        m.fault_requeues > 0,
        "the loaded platform had in-flight work to abort"
    );
    // Busy time is frozen at the failure instant: no accelerator can have
    // accumulated more than 50 ms of busy time.
    for &busy in &m.acc_busy_ns {
        assert!(
            busy <= 50_000_000,
            "busy_ns {busy} past the failure instant"
        );
    }
}

#[test]
fn slowdown_stretches_busy_time() {
    let mut plan = crate::faults::FaultPlan::new();
    for acc in 0..3 {
        plan.push(crate::faults::FaultEvent {
            at: SimTime::ZERO,
            acc: dream_cost::AcceleratorId(acc),
            kind: crate::faults::FaultKind::Slowdown {
                factor: 3.0,
                duration: SimTime::from_ns(400_000_000),
            },
        });
    }
    let base = run_ar_call(13, 400);
    let slow = run_ar_call_with_faults(13, 400, plan);
    let total = |m: &Metrics| m.acc_busy_ns.iter().sum::<u64>();
    assert!(
        total(&slow) > total(&base),
        "a 3x platform-wide slowdown must accumulate more busy time ({} vs {})",
        total(&slow),
        total(&base)
    );
    assert_eq!(slow.faults_injected, 3);
    assert!(
        slow.deadline_miss_under_faults > 0,
        "frames completing late under an active slowdown are attributed to it"
    );
}

#[test]
fn transient_stall_parks_then_recovers() {
    // Stall every accelerator for a 40 ms window: dispatch halts, then
    // resumes, and the run completes deterministically.
    let build = || {
        let mut plan = crate::faults::FaultPlan::new();
        for acc in 0..3 {
            plan.push(crate::faults::FaultEvent {
                at: SimTime::from_ns(100_000_000),
                acc: dream_cost::AcceleratorId(acc),
                kind: crate::faults::FaultKind::Stall {
                    duration: SimTime::from_ns(40_000_000),
                },
            });
        }
        plan
    };
    let a = run_ar_call_with_faults(21, 400, build());
    let b = run_ar_call_with_faults(21, 400, build());
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.faults_injected, 3);
    // Work resumed after the window: strictly more layers ran than in a
    // run cut off at the stall start.
    let cut = run_ar_call(21, 100);
    assert!(a.layer_executions > cut.layer_executions);
}

#[test]
fn invalid_fault_plans_are_rejected() {
    let platform = Platform::preset(PlatformPreset::Homo4kWs2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut plan = crate::faults::FaultPlan::new();
    plan.push(crate::faults::FaultEvent {
        at: SimTime::ZERO,
        acc: dream_cost::AcceleratorId(999),
        kind: crate::faults::FaultKind::Fail,
    });
    let mut s = Greedy;
    let err = SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(100))
        .faults(plan)
        .run(&mut s);
    assert!(matches!(err, Err(SimError::InvalidFault { .. })), "{err:?}");
}

#[test]
fn view_indexed_accessors_agree_with_iteration() {
    struct Probe {
        checked: bool,
    }
    impl Scheduler for Probe {
        fn name(&self) -> &str {
            "view-probe"
        }
        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            if view.task_count() >= 2 && view.idle_count() >= 1 {
                self.checked = true;
                // Ready ids resolve to ready tasks, ascending.
                let ids: Vec<_> = view.ready_ids().to_vec();
                assert!(ids.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(ids.len(), view.ready_count());
                for &id in &ids {
                    let t = view.task(id).expect("ready id resolves");
                    assert!(t.is_ready());
                    assert!(t.slack_ns(view.now()).is_finite());
                }
                // Idle ids match the idle iterator and occupancy flags.
                let idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
                assert_eq!(idle, view.idle_ids().to_vec());
                assert_eq!(idle.len(), view.idle_count());
                for acc in view.accs() {
                    assert_eq!(acc.is_idle(), idle.contains(&acc.id()));
                }
                // Full iteration is ascending by id and covers ready tasks.
                let all: Vec<_> = view.tasks().map(|t| t.id()).collect();
                assert!(all.windows(2).all(|w| w[0] < w[1]));
                assert!(ids.iter().all(|id| all.contains(id)));
            }
            // Greedy dispatch keeps the simulation moving.
            let mut d = Decision::none();
            let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
            for t in view.ready_tasks() {
                let Some(acc) = idle.pop() else { break };
                d.assignments.push(Assignment::single(t.id(), acc));
            }
            d
        }
    }
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let mut probe = Probe { checked: false };
    SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(300))
        .seed(11)
        .run(&mut probe)
        .unwrap();
    assert!(probe.checked, "the probe never saw concurrent load");
}
