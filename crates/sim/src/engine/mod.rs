//! The staged simulation executor.
//!
//! One simulation is executed by [`Engine`], a discrete-event loop split
//! into explicit stages per event batch:
//!
//! 1. **advance** — drain the earliest pending instant from the
//!    time-bucketed [`EventQueue`](crate::event::EventQueue) (one cell,
//!    sorted once by the canonical order) and apply every event at that
//!    instant ([`arrivals`], [`completion`]), updating the slab-backed
//!    [`TaskArena`](arena::TaskArena) and the idle-accelerator list
//!    incrementally;
//! 2. **decide** — when work is ready and capacity is idle, hand the
//!    scheduler a borrowed [`SystemView`](crate::SystemView) over that
//!    incrementally maintained state (nothing is rebuilt per decision);
//! 3. **dispatch** — validate and apply the returned
//!    [`Decision`](crate::Decision) ([`dispatch`]), scheduling
//!    `LayerDone` completions back into the queue.
//!
//! Stochastic workload structure (cascades, skips, early exits) resolves
//! in [`dynamics`]; metric updates live in [`accounting`].

pub(crate) mod accounting;
pub(crate) mod arena;
pub(crate) mod arrivals;
pub(crate) mod completion;
pub(crate) mod dispatch;
pub(crate) mod dynamics;
pub(crate) mod faulting;

#[cfg(test)]
mod tests;

use std::sync::Arc;

use dream_cost::{AcceleratorId, CostBackend, CostModel, Platform};
use dream_models::Scenario;
use dream_trace::{Trace, TraceConfig, TraceEventKind, TraceRuntime};

use crate::arrivals::{ArrivalSource, PeriodicArrivals};
use crate::determ::DeterministicCoin;
use crate::event::{EventKind, EventQueue};
use crate::faults::{FaultPlan, FaultRuntime};
use crate::metrics::Metrics;
use crate::scheduler::{AccState, Scheduler};
use crate::task::{QueuedLayer, TaskId};
use crate::workload::{Phase, WorkloadSet};
use crate::{SimError, SimTime};

use arena::TaskArena;

/// Configures and runs one simulation.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct SimulationBuilder {
    platform: Platform,
    phases: Vec<(SimTime, Scenario)>,
    duration: SimTime,
    seed: u64,
    cost: Arc<dyn CostBackend>,
    arrivals: Box<dyn ArrivalSource>,
    prebuilt: Option<Arc<WorkloadSet>>,
    faults: Option<FaultPlan>,
    trace: Option<TraceConfig>,
}

impl SimulationBuilder {
    /// Starts a builder for `scenario` running on `platform` from time 0.
    pub fn new(platform: Platform, scenario: Scenario) -> Self {
        SimulationBuilder {
            platform,
            phases: vec![(SimTime::ZERO, scenario)],
            duration: SimTime::from(crate::Millis::new(2_000)),
            seed: 0,
            cost: Arc::new(CostModel::paper_default()),
            arrivals: Box::new(PeriodicArrivals),
            prebuilt: None,
            faults: None,
            trace: None,
        }
    }

    /// Sets the measurement horizon (default: the paper's 2 s window).
    pub fn duration(mut self, duration: impl Into<SimTime>) -> Self {
        self.duration = duration.into();
        self
    }

    /// Sets the workload-realization seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the analytical cost model (default: calibrated paper
    /// defaults). Sugar for [`cost_backend`](Self::cost_backend) with a
    /// [`CostModel`].
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = Arc::new(cost);
        self
    }

    /// Replaces the cost backend — the seam that swaps the analytical
    /// model for e.g. a table-driven MAESTRO import
    /// ([`dream_cost::TableBackend`]). The backend is consulted only
    /// while building the [`WorkloadSet`] tables and for on-demand gang
    /// costing; the per-decision hot path reads the prebuilt tables.
    pub fn cost_backend(mut self, backend: Arc<dyn CostBackend>) -> Self {
        self.cost = backend;
        self
    }

    /// Replaces the arrival source (default: [`PeriodicArrivals`], the
    /// paper's fixed-FPS pipelines). See the
    /// [`arrivals`](crate::arrivals) module for the built-in sources.
    pub fn arrivals(mut self, source: impl ArrivalSource + 'static) -> Self {
        self.arrivals = Box::new(source);
        self
    }

    /// Installs a deterministic fault schedule (see [`crate::faults`]):
    /// at each event's time the engine masks the accelerator (stall),
    /// fails it permanently (aborting and requeueing its in-flight work),
    /// or rescales its dispatch latency (slowdown). With no plan installed
    /// the fault seam is completely inert.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs the flight recorder (see [`dream_trace`]): the engine
    /// records structured sim-time events into a bounded ring and the
    /// outcome carries the extracted [`Trace`]. With no config installed
    /// the trace seam is completely inert, and recording never alters the
    /// schedule — a traced run's metrics fingerprint equals the untraced
    /// run's.
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Adds a workload phase: at `start`, the running scenario is replaced
    /// by `scenario` (task-level dynamicity — in-flight frames of the old
    /// phase are flushed). Phases may be added in any order; they are
    /// sorted by start time.
    pub fn add_phase(mut self, start: impl Into<SimTime>, scenario: Scenario) -> Self {
        self.phases.push((start.into(), scenario));
        self
    }

    /// Resolves the configured phases into time-ordered `[start, end)`
    /// windows.
    fn resolved_phases(&self) -> Result<Vec<Phase>, SimError> {
        if self.duration == SimTime::ZERO {
            return Err(SimError::ZeroDuration);
        }
        let mut phases = self.phases.clone();
        phases.sort_by_key(|(start, _)| *start);
        for w in phases.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(SimError::InvalidPhase {
                    reason: format!("two phases share start time {}", w[0].0),
                });
            }
        }
        if phases[0].0 != SimTime::ZERO {
            return Err(SimError::InvalidPhase {
                reason: "the first phase must start at time 0".into(),
            });
        }
        if let Some((start, _)) = phases.iter().find(|(s, _)| *s >= self.duration) {
            return Err(SimError::InvalidPhase {
                reason: format!("phase at {start} starts at/after the horizon"),
            });
        }
        let mut resolved = Vec::with_capacity(phases.len());
        for (i, (start, scenario)) in phases.iter().enumerate() {
            let end = phases.get(i + 1).map(|(s, _)| *s).unwrap_or(self.duration);
            resolved.push(Phase {
                start: *start,
                end,
                scenario: scenario.clone(),
            });
        }
        Ok(resolved)
    }

    /// Builds the [`WorkloadSet`] this configuration would simulate,
    /// without running it — e.g. to record an
    /// [`ArrivalTrace`](crate::ArrivalTrace) against it.
    ///
    /// # Errors
    ///
    /// Same phase/duration validation as [`run`](Self::run).
    pub fn build_workload(&self) -> Result<WorkloadSet, SimError> {
        WorkloadSet::build(self.resolved_phases()?, &self.platform, self.cost.as_ref())
    }

    /// Reuses an already-built [`WorkloadSet`] instead of rebuilding the
    /// offline cost tables from scratch — the seam the experiment grid's
    /// shared-workload cache plugs into. The workload **must** have been
    /// produced by [`build_workload`](Self::build_workload) on an
    /// identically configured builder (same phases, platform, and cost
    /// backend); [`run`](Self::run) verifies the platform width, the
    /// phase schedule, and the backend's calibration digest, and rejects
    /// mismatches — including a workload built by a *different backend
    /// family* (analytical vs. table import), since the digest mixes the
    /// backend kind.
    pub fn prebuilt_workload(mut self, workload: Arc<WorkloadSet>) -> Self {
        self.prebuilt = Some(workload);
        self
    }

    /// Validates that a prebuilt workload matches this builder's resolved
    /// configuration (cheap structural checks; see
    /// [`prebuilt_workload`](Self::prebuilt_workload)).
    fn check_prebuilt(&self, ws: &WorkloadSet, resolved: &[Phase]) -> Result<(), SimError> {
        check_workload_matches(ws, resolved, &self.platform, self.cost.as_ref())
    }

    /// Runs the simulation to completion under `scheduler`.
    ///
    /// # Errors
    ///
    /// * [`SimError::ZeroDuration`] for an empty horizon.
    /// * [`SimError::InvalidPhase`] if two phases share a start time or a
    ///   phase starts at/after the horizon.
    /// * [`SimError::InvalidTrace`] if the arrival source is inconsistent
    ///   with the workload.
    /// * [`SimError::WorkloadMismatch`] if a prebuilt workload does not
    ///   match the configured phases/platform.
    /// * [`SimError::InvalidFault`] if an installed fault plan names an
    ///   out-of-range accelerator or carries an invalid slowdown factor.
    pub fn run(self, scheduler: &mut dyn Scheduler) -> Result<SimOutcome, SimError> {
        let resolved = self.resolved_phases()?;
        let ws = match &self.prebuilt {
            Some(ws) => {
                self.check_prebuilt(ws, &resolved)?;
                Arc::clone(ws)
            }
            None => Arc::new(WorkloadSet::build(
                resolved,
                &self.platform,
                self.cost.as_ref(),
            )?),
        };
        self.arrivals.validate(&ws, self.duration)?;
        if let Some(plan) = &self.faults {
            plan.validate(self.platform.len())?;
        }
        let mut engine = Engine::new(
            ws,
            self.platform,
            self.cost,
            self.seed,
            self.duration,
            self.arrivals,
            self.faults,
            self.trace,
        );
        Ok(engine.run(scheduler))
    }
}

/// Converts a [`ModelKey`](crate::workload::ModelKey) into the trace
/// crate's raw-index [`ModelRef`](dream_trace::ModelRef).
pub(crate) fn trace_model(key: crate::workload::ModelKey) -> dream_trace::ModelRef {
    dream_trace::ModelRef {
        phase: key.phase as u32,
        pipeline: key.pipeline.0 as u32,
        node: key.node.0 as u32,
    }
}

/// Checks a prebuilt [`WorkloadSet`] against a resolved configuration:
/// same backend calibration digest (which mixes the backend *kind*), same
/// platform width, and the same phase windows. Shared by
/// [`SimulationBuilder::prebuilt_workload`] validation and the live
/// session's digest-validated scenario hot-swap.
pub(crate) fn check_workload_matches(
    ws: &WorkloadSet,
    resolved: &[Phase],
    platform: &Platform,
    cost: &dyn CostBackend,
) -> Result<(), SimError> {
    if ws.cost_digest() != cost.calibration_digest() {
        return Err(SimError::WorkloadMismatch {
            reason: "workload tables were built with a different cost backend/calibration".into(),
        });
    }
    if ws.acc_count() != platform.len() {
        return Err(SimError::WorkloadMismatch {
            reason: format!(
                "workload tables were built for {} accelerators, platform has {}",
                ws.acc_count(),
                platform.len()
            ),
        });
    }
    if ws.phases().len() != resolved.len() {
        return Err(SimError::WorkloadMismatch {
            reason: format!(
                "workload has {} phases, configuration resolves {}",
                ws.phases().len(),
                resolved.len()
            ),
        });
    }
    for (built, want) in ws.phases().iter().zip(resolved) {
        if built.start() != want.start() || built.end() != want.end() {
            return Err(SimError::WorkloadMismatch {
                reason: format!(
                    "phase window [{}, {}) differs from configured [{}, {})",
                    built.start(),
                    built.end(),
                    want.start(),
                    want.end()
                ),
            });
        }
    }
    Ok(())
}

/// The result of a completed simulation.
#[derive(Debug)]
pub struct SimOutcome {
    metrics: Metrics,
    final_time: SimTime,
    trace: Option<Trace>,
}

impl SimOutcome {
    /// Aggregated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the outcome, returning the metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// The time the simulation stopped (= the horizon).
    pub fn final_time(&self) -> SimTime {
        self.final_time
    }

    /// The flight-recorder trace, when one was installed via
    /// [`SimulationBuilder::trace`] (or the live builder's equivalent).
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Consumes the outcome, returning the trace (if recorded).
    pub fn into_trace(self) -> Option<Trace> {
        self.trace
    }
}

/// What one [`Engine::step_event`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepStatus {
    /// An event at or before the bound was applied.
    Processed,
    /// No pending event at or before the bound.
    Blocked,
    /// The `End` event fired; the run is over.
    Finished,
}

/// A layer currently executing: what to charge on completion. The gang
/// to free lives in the task's own [`TaskState::Running`](crate::task::TaskState)
/// — one owner, no per-dispatch clone.
pub(crate) struct InFlight {
    pub energy_pj: f64,
    /// The instant the scheduled `LayerDone` will fire. A popped
    /// `LayerDone` whose task has no in-flight entry at exactly this
    /// instant is *stale* — the dispatch was aborted by an accelerator
    /// failure after the completion was scheduled (fault runs only; the
    /// zero-fault path never aborts).
    pub done_at: SimTime,
    pub layer: QueuedLayer,
}

pub(crate) struct Engine {
    pub(crate) now: SimTime,
    pub(crate) horizon: SimTime,
    /// Shared, immutable offline tables: several engines (e.g. the cells
    /// of an experiment grid over one scenario) may hold the same build.
    pub(crate) ws: Arc<WorkloadSet>,
    pub(crate) platform: Platform,
    pub(crate) cost: Arc<dyn CostBackend>,
    pub(crate) coin: DeterministicCoin,
    /// Where root-frame arrivals come from (stage 1a's seam).
    pub(crate) arrivals: Box<dyn ArrivalSource>,
    pub(crate) accs: Vec<AccState>,
    pub(crate) arena: TaskArena,
    /// Idle accelerator ids, ascending — maintained incrementally by
    /// dispatch/completion.
    pub(crate) idle: Vec<AcceleratorId>,
    /// Tasks draining their current layer before being discarded by a
    /// phase flush, ascending by id, each with the instant the flush was
    /// ordered (a layer completing exactly at that instant completed *by*
    /// the boundary and may still finish its task).
    pub(crate) flushing: Vec<(TaskId, SimTime)>,
    /// `(task, in-flight record)` ascending by task id.
    pub(crate) in_flight: Vec<(TaskId, InFlight)>,
    pub(crate) queue: EventQueue,
    pub(crate) metrics: Metrics,
    pub(crate) current_phase: usize,
    /// Reusable buffer for the completing layer's gang (completion copies
    /// it out of the task state before mutating accelerator state).
    pub(crate) scratch_accs: Vec<AcceleratorId>,
    /// Retired [`Task`](crate::task::Task) shells, reused by the next
    /// release so steady-state task churn allocates nothing.
    pub(crate) task_pool: Vec<crate::task::Task>,
    /// Fault-injection runtime; `None` (the default) keeps the fault seam
    /// completely inert — no per-event or per-dispatch cost.
    pub(crate) faults: Option<Box<FaultRuntime>>,
    /// Flight recorder; `None` (the default) keeps the trace seam
    /// completely inert — each emission point pays one `is_some` branch.
    pub(crate) trace: Option<Box<TraceRuntime>>,
}

impl Engine {
    #[allow(clippy::too_many_arguments)] // crate-private; SimulationBuilder is the public face
    pub(crate) fn new(
        ws: Arc<WorkloadSet>,
        platform: Platform,
        cost: Arc<dyn CostBackend>,
        seed: u64,
        horizon: SimTime,
        arrivals: Box<dyn ArrivalSource>,
        faults: Option<FaultPlan>,
        trace: Option<TraceConfig>,
    ) -> Self {
        let accs: Vec<AccState> = platform.ids().map(AccState::new).collect();
        let idle: Vec<AcceleratorId> = platform.ids().collect();
        let faults = faults.map(|plan| Box::new(FaultRuntime::new(plan, platform.len())));
        let trace = trace.map(|cfg| Box::new(TraceRuntime::new(cfg)));
        let mut metrics = Metrics::new(horizon, platform.len());
        for node in ws.nodes() {
            metrics.entry(
                node.key(),
                node.model_name(),
                node.rate().as_fps(),
                node.variant_count(),
            );
        }
        Engine {
            now: SimTime::ZERO,
            horizon,
            ws,
            platform,
            cost,
            coin: DeterministicCoin::new(seed),
            arrivals,
            accs,
            arena: TaskArena::new(),
            idle,
            flushing: Vec::new(),
            in_flight: Vec::new(),
            queue: EventQueue::new(),
            metrics,
            current_phase: 0,
            scratch_accs: Vec::new(),
            task_pool: Vec::new(),
            faults,
            trace,
        }
    }

    /// Records one trace event at the current instant — a no-op branch
    /// when no recorder is installed.
    #[inline]
    pub(crate) fn trace_event(&mut self, kind: TraceEventKind) {
        if let Some(trace) = &mut self.trace {
            trace.record(self.now.as_ns(), kind);
        }
    }

    /// Whether a recorder is installed (emission points that must build a
    /// payload first check this to keep the off path free).
    #[inline]
    pub(crate) fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    pub(crate) fn run(&mut self, scheduler: &mut dyn Scheduler) -> SimOutcome {
        // Seed phase starts (which in turn seed frame arrivals) and the end.
        for (idx, phase) in self.ws.phases().to_vec().iter().enumerate() {
            self.queue
                .push(phase.start, EventKind::PhaseStart { phase: idx });
        }
        self.queue.push(self.horizon, EventKind::End);
        self.seed_fault_events(0);

        while matches!(
            self.step_event(scheduler, SimTime::MAX),
            StepStatus::Processed
        ) {}

        self.take_outcome()
    }

    /// Drains and applies every pending event at the next instant if that
    /// instant is at or before `bound` — one iteration of the staged loop,
    /// shared verbatim by the batch [`run`](Self::run) (bound = ∞) and the
    /// incremental [`LiveSession`](crate::live::LiveSession) stepping
    /// (bound = the live frontier). Because the event queue's intra-instant
    /// order is canonical (see [`crate::event`]), draining the whole
    /// instant in one call is invisible: the same events produce the same
    /// processing sequence, and the bound can only split *between*
    /// instants, never inside one. A live caller never bounds mid-instant
    /// anyway: admissions carry stamps strictly past the frontier, so
    /// everything at `now` is already queued.
    pub(crate) fn step_event(
        &mut self,
        scheduler: &mut dyn Scheduler,
        bound: SimTime,
    ) -> StepStatus {
        let now = match self.queue.peek_time() {
            None => return StepStatus::Blocked,
            Some(t) if t > bound => return StepStatus::Blocked,
            Some(t) => t,
        };
        // Stage 1 — advance: apply every event at this instant to the
        // incremental state, in canonical order, without re-searching the
        // queue per event (each iteration is a cursor bump in the
        // instant's cell; a handler pushing a same-instant event — e.g. a
        // back-to-back arrival recurrence — lands in the unpopped
        // remainder at its canonical position).
        self.now = now;
        while let Some(event) = self.queue.pop_if_at(now) {
            self.metrics.events_processed += 1;
            match event.kind {
                EventKind::End => {
                    self.trace_event(TraceEventKind::Drain);
                    self.drain_horizon_completions(scheduler);
                    return StepStatus::Finished;
                }
                EventKind::PhaseStart { phase } => self.start_phase(phase, scheduler),
                EventKind::FrameArrival {
                    phase,
                    pipeline,
                    node,
                    frame,
                } => self.frame_arrival(phase, pipeline, node, frame, scheduler),
                EventKind::LayerDone { task } => self.layer_done(task, scheduler),
                EventKind::FaultStart { fault } => self.fault_start(fault),
                EventKind::FaultEnd { fault } => self.fault_end(fault),
            }
        }
        // The instant is fully drained, so the view reflects every
        // accelerator freed at it.
        debug_assert!(self.arena.ready_list_is_consistent());
        // Stages 2 and 3 — decide over the borrowed view, then dispatch
        // the decision.
        self.invoke_scheduler(scheduler);
        StepStatus::Processed
    }

    /// Finalizes accounting and moves the metrics out — the common tail of
    /// a completed run.
    pub(crate) fn take_outcome(&mut self) -> SimOutcome {
        self.finalize_accounting();
        SimOutcome {
            metrics: std::mem::replace(&mut self.metrics, Metrics::new(self.horizon, 0)),
            final_time: self.now,
            trace: self.trace.take().map(|rt| rt.finish()),
        }
    }

    /// Applies the layer completions scheduled at exactly the horizon
    /// instant before the run stops. A layer finishing *at* the horizon
    /// finished *by* it, so a frame whose deadline is exactly the horizon
    /// (which release-time censoring counts) gets its completion recorded
    /// instead of silently becoming a violation — the inclusive-deadline
    /// counterpart of stopping the arrival recurrence strictly before the
    /// horizon.
    pub(crate) fn drain_horizon_completions(&mut self, scheduler: &mut dyn Scheduler) {
        while let Some(event) = self.queue.pop_if_at(self.now) {
            if let EventKind::LayerDone { task } = event.kind {
                self.metrics.events_processed += 1;
                self.layer_done(task, scheduler);
            }
        }
    }

    // ---- small helpers shared by the stage modules ----

    /// Returns an accelerator to the idle pool.
    pub(crate) fn release_acc(&mut self, acc: AcceleratorId) {
        if let Err(pos) = self.idle.binary_search(&acc) {
            self.idle.insert(pos, acc);
        } else {
            debug_assert!(false, "released an already-idle accelerator");
        }
    }

    /// Claims an accelerator from the idle pool.
    pub(crate) fn occupy_acc(&mut self, acc: AcceleratorId) {
        if let Ok(pos) = self.idle.binary_search(&acc) {
            self.idle.remove(pos);
        } else {
            debug_assert!(false, "occupied a non-idle accelerator");
        }
    }

    /// Whether a fault currently excludes `acc` from dispatch. `false`
    /// whenever no fault runtime is installed.
    pub(crate) fn fault_masked(&self, acc: AcceleratorId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.acc(acc).masked())
    }

    pub(crate) fn in_flight_get(&self, task: TaskId) -> Option<&InFlight> {
        let pos = self
            .in_flight
            .binary_search_by_key(&task, |&(id, _)| id)
            .ok()?;
        Some(&self.in_flight[pos].1)
    }

    pub(crate) fn in_flight_remove(&mut self, task: TaskId) -> Option<InFlight> {
        let pos = self
            .in_flight
            .binary_search_by_key(&task, |&(id, _)| id)
            .ok()?;
        Some(self.in_flight.remove(pos).1)
    }

    pub(crate) fn in_flight_insert(&mut self, task: TaskId, run: InFlight) {
        match self.in_flight.binary_search_by_key(&task, |&(id, _)| id) {
            Ok(_) => debug_assert!(false, "task already has an in-flight layer"),
            Err(pos) => self.in_flight.insert(pos, (task, run)),
        }
    }

    /// Marks a task as draining toward a flush ordered at the current
    /// instant.
    pub(crate) fn flushing_insert(&mut self, task: TaskId) {
        if let Err(pos) = self.flushing.binary_search_by_key(&task, |&(id, _)| id) {
            self.flushing.insert(pos, (task, self.now));
        }
    }

    /// Removes a task from the flush list, returning the instant its
    /// flush was ordered.
    pub(crate) fn flushing_remove(&mut self, task: TaskId) -> Option<SimTime> {
        match self.flushing.binary_search_by_key(&task, |&(id, _)| id) {
            Ok(pos) => Some(self.flushing.remove(pos).1),
            Err(_) => None,
        }
    }

    /// Returns a removed task's shell to the pool for the next release to
    /// reuse. Capped so a transient burst cannot pin memory forever.
    pub(crate) fn recycle_task(&mut self, task: crate::task::Task) {
        const TASK_POOL_CAP: usize = 1024;
        if self.task_pool.len() < TASK_POOL_CAP {
            self.task_pool.push(task);
        }
    }
}
