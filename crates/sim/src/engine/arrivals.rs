//! Stage 1a — workload arrivals: phase starts (with their flush of the
//! previous phase), root-frame arrivals from the pluggable
//! [`ArrivalSource`](crate::arrivals::ArrivalSource), and task release.

use dream_models::{NodeId, PipelineId};
use dream_trace::TraceEventKind;

use crate::event::EventKind;
use crate::scheduler::Scheduler;
use crate::task::{Task, TaskId};
use crate::workload::ModelKey;
use crate::SimTime;

use super::{trace_model, Engine};

impl Engine {
    pub(crate) fn start_phase(&mut self, phase: usize, scheduler: &mut dyn Scheduler) {
        self.current_phase = phase;
        self.trace_event(TraceEventKind::PhaseStart {
            phase: phase as u32,
        });
        // Flush tasks from earlier phases: ready ones leave immediately;
        // running ones drain their current layer and are discarded on
        // completion.
        let stale: Vec<TaskId> = self
            .arena
            .iter()
            .filter(|t| t.key().phase != phase)
            .map(Task::id)
            .collect();
        for id in stale {
            let ready = self.arena.get(id).expect("stale task exists").is_ready();
            if ready {
                let task = self.arena.remove(id).expect("stale task exists");
                self.record_flush(&task, scheduler);
                self.recycle_task(task);
            } else {
                self.flushing_insert(id);
            }
        }
        // Kick off arrivals for every root node of the new phase; the
        // arrival source decides when each node's frame 0 lands.
        let phase_start = self.ws.phases()[phase].start;
        let phase_end = self.ws.phases()[phase].end;
        let arrivals: Vec<ModelKey> = self
            .ws
            .nodes()
            .filter(|n| n.key().phase == phase && n.parent().is_none())
            .map(|n| n.key())
            .collect();
        for key in arrivals {
            let first = self.arrivals.first_arrival(
                self.ws.node(key),
                &self.ws.phases()[phase],
                &self.coin,
            );
            let Some(first) = first else { continue };
            if first >= phase_start && first < phase_end && first < self.horizon {
                self.queue.push(
                    first,
                    EventKind::FrameArrival {
                        phase,
                        pipeline: key.pipeline,
                        node: key.node,
                        frame: 0,
                    },
                );
            }
        }
        let names = self.ws.model_names(phase);
        scheduler.on_phase_start(phase, &names);
    }

    pub(crate) fn frame_arrival(
        &mut self,
        phase: usize,
        pipeline: PipelineId,
        node: NodeId,
        frame: u64,
        scheduler: &mut dyn Scheduler,
    ) {
        let key = ModelKey {
            phase,
            pipeline,
            node,
        };
        self.release_task(key, frame, self.now, scheduler);
        let next = self.arrivals.next_arrival(
            self.ws.node(key),
            &self.ws.phases()[phase],
            frame,
            self.now,
            &self.coin,
        );
        let Some(next) = next else { return };
        let phase_end = self.ws.phases()[phase].end;
        // Arrivals stay strictly inside the phase window and the horizon
        // (release-time censoring is the inclusive counterpart: a frame
        // whose *deadline* lands exactly on either boundary still counts).
        if next >= self.now && next < phase_end && next < self.horizon {
            self.queue.push(
                next,
                EventKind::FrameArrival {
                    phase,
                    pipeline,
                    node,
                    frame: frame + 1,
                },
            );
        }
    }

    pub(crate) fn release_task(
        &mut self,
        key: ModelKey,
        frame: u64,
        frame_arrival: SimTime,
        scheduler: &mut dyn Scheduler,
    ) {
        // Clone the Arc handle (not the node) so the borrow of the shared
        // tables outlives the `&mut self` calls below.
        let ws = std::sync::Arc::clone(&self.ws);
        let node = ws.node(key);
        let deadline = frame_arrival + node.period();
        let phase_end = ws.phases()[key.phase].end;
        let counted = deadline <= phase_end && deadline <= self.horizon;
        let id = self.arena.allocate_id();
        // Reuse a retired shell when one is pooled — `reinit` repeats
        // `Task::new`'s initialisation (and float-op) sequence exactly, so
        // a recycled release is bit-identical to a fresh one.
        let task = match self.task_pool.pop() {
            Some(mut shell) => {
                shell.reinit(
                    id,
                    node,
                    frame,
                    frame_arrival,
                    self.now,
                    deadline,
                    counted,
                    &ws,
                );
                shell
            }
            None => Task::new(
                id,
                node,
                frame,
                frame_arrival,
                self.now,
                deadline,
                counted,
                &ws,
            ),
        };
        self.record_release(&task, node);
        self.trace_event(TraceEventKind::Release {
            task: id.0,
            model: trace_model(key),
            frame,
            counted,
            deadline_ns: deadline.as_ns(),
        });
        self.notify_release(id, key, counted, scheduler);
        self.arena.insert(task);
    }
}
