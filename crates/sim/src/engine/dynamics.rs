//! Workload dynamics: the deterministic-coin resolution of cascade edges
//! (model-level dynamicity) and skip/early-exit gates (operator-level
//! dynamicity, §2.2 of the paper).

use crate::scheduler::Scheduler;
use crate::task::{Task, TaskId};
use crate::workload::{ModelKey, NodeInfo};

use super::Engine;

/// Gate-id namespaces for the deterministic coin, so cascade, skip, and
/// exit draws never collide (arrival draws use 3000+; see
/// [`crate::arrivals`]).
const GATE_CASCADE: u64 = 0;
const GATE_SKIP_BASE: u64 = 1_000;
const GATE_EXIT_BASE: u64 = 2_000;

impl Engine {
    /// Resolves the skip/exit gates revealed by completing the layer at
    /// `graph_idx` of `task_id` (the task must be live).
    pub(crate) fn resolve_operator_gates(&mut self, task_id: TaskId, graph_idx: usize) {
        let task = self.arena.get_mut(task_id).expect("gated task exists");
        let key = task.key();
        let coin_pl = key.coin_channel();
        let g = graph_idx;
        if let Some(exit) = task.pending_exit_after(g) {
            let take = self.coin.decide(
                coin_pl,
                key.node.0,
                task.frame(),
                GATE_EXIT_BASE + g as u64,
                exit.p_exit,
            );
            task.resolve_exit(g, take, &self.ws);
        }
        if !task.is_complete() {
            if let Some(blk) = task.pending_skip_starting_at(g + 1) {
                let skip = self.coin.decide(
                    coin_pl,
                    key.node.0,
                    task.frame(),
                    GATE_SKIP_BASE + (g as u64 + 1),
                    blk.p_skip,
                );
                task.resolve_skip(g + 1, skip, &self.ws);
            }
        }
    }

    /// Fires the cascade children of a completed task (model-level
    /// dynamicity): each control-dependent child releases with its edge
    /// probability, drawn from the counter-based coin so realization is
    /// scheduler-independent.
    pub(crate) fn fire_cascades(
        &mut self,
        task: &Task,
        node: &NodeInfo,
        scheduler: &mut dyn Scheduler,
    ) {
        let key = task.key();
        let phase_end = self.ws.phases()[key.phase].end;
        if self.now >= phase_end {
            return;
        }
        let coin_pl = key.coin_channel();
        for &child in node.children() {
            let child_key = ModelKey {
                phase: key.phase,
                pipeline: key.pipeline,
                node: child,
            };
            let p = self
                .ws
                .node(child_key)
                .cascade()
                .map(|c| c.value())
                .unwrap_or(1.0);
            if self
                .coin
                .decide(coin_pl, child.0, task.frame(), GATE_CASCADE, p)
            {
                self.release_task(child_key, task.frame(), task.frame_arrival(), scheduler);
            }
        }
    }
}
