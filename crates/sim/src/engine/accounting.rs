//! Metric updates and scheduler lifecycle notifications, grouped so the
//! stage modules stay focused on state transitions.

use dream_trace::TraceEventKind;

use crate::scheduler::{Scheduler, TaskEvent, TaskEventKind};
use crate::task::{Task, TaskId};
use crate::workload::{ModelKey, NodeInfo};

use super::{trace_model, Engine};

impl Engine {
    /// Accounts a task release (counted vs censored, worst-case energy).
    pub(crate) fn record_release(&mut self, task: &Task, node: &NodeInfo) {
        if let Some(stats) = self.metrics.get_mut(task.key()) {
            if task.counted() {
                stats.released += 1;
                stats.worst_energy_pj += node.worst_frame_energy_pj();
            } else {
                stats.censored += 1;
            }
        }
    }

    /// Notifies the scheduler of a release.
    pub(crate) fn notify_release(
        &mut self,
        id: TaskId,
        key: ModelKey,
        counted: bool,
        scheduler: &mut dyn Scheduler,
    ) {
        scheduler.on_task_event(&TaskEvent {
            now: self.now,
            task: id,
            key,
            counted,
            kind: TaskEventKind::Released,
        });
    }

    /// Accounts a phase-change flush and notifies the scheduler.
    pub(crate) fn record_flush(&mut self, task: &Task, scheduler: &mut dyn Scheduler) {
        if let Some(stats) = self.metrics.get_mut(task.key()) {
            stats.flushed += 1;
        }
        self.trace_event(TraceEventKind::Flush {
            task: task.id().0,
            model: trace_model(task.key()),
        });
        scheduler.on_task_event(&TaskEvent {
            now: self.now,
            task: task.id(),
            key: task.key(),
            counted: task.counted(),
            kind: TaskEventKind::Flushed,
        });
    }

    /// Accounts a scheduler-issued drop and notifies the scheduler.
    pub(crate) fn record_drop(&mut self, task: &Task, scheduler: &mut dyn Scheduler) {
        if task.counted() {
            if let Some(stats) = self.metrics.get_mut(task.key()) {
                stats.dropped += 1;
            }
            if self.faults.as_ref().is_some_and(|f| f.any_active()) {
                self.metrics.deadline_miss_under_faults += 1;
            }
        }
        self.trace_event(TraceEventKind::Drop {
            task: task.id().0,
            model: trace_model(task.key()),
        });
        scheduler.on_task_event(&TaskEvent {
            now: self.now,
            task: task.id(),
            key: task.key(),
            counted: task.counted(),
            kind: TaskEventKind::Dropped,
        });
    }

    /// Accounts a completed inference and notifies the scheduler.
    pub(crate) fn record_completion(
        &mut self,
        task: &Task,
        node: &NodeInfo,
        on_time: bool,
        scheduler: &mut dyn Scheduler,
    ) {
        if task.counted() {
            if !on_time && self.faults.as_ref().is_some_and(|f| f.any_active()) {
                // Diagnostic only (fingerprint-excluded): a deadline missed
                // while any fault window is open is attributed to
                // degradation, separating chaos-induced misses from
                // ordinary overload.
                self.metrics.deadline_miss_under_faults += 1;
            }
            if let Some(stats) = self.metrics.get_mut(task.key()) {
                if on_time {
                    stats.completed_on_time += 1;
                } else {
                    stats.completed_late += 1;
                }
                stats.variant_runs[task.variant().0] += 1;
                stats.wait_ns += (self.now.saturating_sub(task.released())).as_ns();
                stats.record_sojourn(self.now.saturating_sub(task.frame_arrival()).as_ns());
            }
        }
        self.trace_event(TraceEventKind::Complete {
            task: task.id().0,
            model: trace_model(task.key()),
            on_time,
        });
        scheduler.on_task_event(&TaskEvent {
            now: self.now,
            task: task.id(),
            key: task.key(),
            counted: task.counted(),
            kind: TaskEventKind::Completed {
                on_time,
                energy_pj: task.energy_pj(),
                worst_energy_pj: node.worst_frame_energy_pj(),
            },
        });
    }

    /// Charges the queueing delay a dispatch ends (counted tasks only).
    pub(crate) fn charge_dispatch_wait(&mut self, task_id: TaskId) {
        let Some(task) = self.arena.get(task_id) else {
            return;
        };
        if !task.counted() {
            return;
        }
        let wait = self.now.saturating_sub(task.last_completion());
        let key = task.key();
        if let Some(stats) = self.metrics.get_mut(key) {
            stats.wait_ns += wait.as_ns();
        }
    }

    /// Copies per-accelerator busy time into the metrics at the end of a
    /// run.
    pub(crate) fn finalize_accounting(&mut self) {
        for (i, acc) in self.accs.iter().enumerate() {
            self.metrics.acc_busy_ns[i] = acc.busy_ns();
        }
    }
}
