//! Stage 1b — layer completions: free accelerators, advance the task's
//! queue, resolve the gates the finished layer revealed, and finish or
//! re-queue the task.

use crate::scheduler::Scheduler;
use crate::task::{TaskId, TaskState};

use super::Engine;

impl Engine {
    pub(crate) fn layer_done(&mut self, task_id: TaskId, scheduler: &mut dyn Scheduler) {
        // Under fault injection a `LayerDone` can be *stale*: the dispatch
        // it announced was aborted by an accelerator failure (the task has
        // no in-flight record, or one from a later re-dispatch whose
        // completion lies at a different instant). Stale completions are
        // skipped; without a fault runtime no abort can happen and the
        // zero-fault path keeps its unconditional expectation.
        if self.faults.is_some() {
            match self.in_flight_get(task_id) {
                Some(run) if run.done_at == self.now => {}
                _ => return,
            }
        }
        let run = self
            .in_flight_remove(task_id)
            .expect("LayerDone for a task with no in-flight layer");
        // Copy the gang out of the task's Running state into the engine's
        // reusable scratch, so accelerator state can be mutated below
        // without borrowing the arena (and without a per-dispatch clone).
        let mut gang = std::mem::take(&mut self.scratch_accs);
        gang.clear();
        match self
            .arena
            .get(task_id)
            .expect("running task exists")
            .state()
        {
            TaskState::Running(accs) => gang.extend_from_slice(accs),
            TaskState::Ready => unreachable!("LayerDone for a task that is not running"),
        }
        // Free the accelerators and remember the flush volume. A member
        // that became fault-masked mid-layer stays parked: the fault-end
        // handler returns it to the idle pool when its window closes (a
        // failed one never comes back).
        let out_bytes = self.ws.output_bytes(run.layer.layer);
        for &acc in &gang {
            let st = &mut self.accs[acc.0];
            debug_assert_eq!(st.running, Some(task_id));
            st.running = None;
            st.last_task = Some(task_id);
            st.last_output_bytes = out_bytes;
            if !self.fault_masked(acc) {
                self.release_acc(acc);
            }
        }
        self.metrics.layer_executions += 1;

        if let Some(flush_time) = self.flushing_remove(task_id) {
            // A layer completing exactly at the flush instant completed
            // *by* the phase boundary. If it was the task's last layer,
            // the inference finished inside its window: record the
            // completion (deadline-checked as usual) instead of a flush,
            // matching the inclusive deadline-at-phase-end censoring.
            let task = self.arena.get(task_id).expect("flushing task exists");
            let finished_at_boundary = self.now == flush_time && task.remaining().len() == 1;
            if !finished_at_boundary {
                let task = self.arena.remove(task_id).expect("flushing task exists");
                self.record_flush(&task, scheduler);
                self.recycle_task(task);
                self.scratch_accs = gang;
                return;
            }
        }

        let task = self.arena.get_mut(task_id).expect("running task exists");
        let key = task.key();
        let counted = task.counted();
        for &acc in &gang {
            self.accs[acc.0].last_model = Some(key);
        }
        self.scratch_accs = gang;
        let completed = task.complete_head(self.now, run.energy_pj, &self.ws);
        if counted {
            if let Some(stats) = self.metrics.get_mut(key) {
                stats.energy_pj += run.energy_pj;
            }
        }

        // Resolve operator-level dynamicity gates revealed by this layer.
        self.resolve_operator_gates(task_id, completed.graph_idx);

        let task = self.arena.get(task_id).expect("task still live");
        if task.is_complete() {
            self.finish_task(task_id, scheduler);
        } else {
            self.arena.mark_ready(task_id);
        }
    }

    pub(crate) fn finish_task(&mut self, task_id: TaskId, scheduler: &mut dyn Scheduler) {
        let task = self.arena.remove(task_id).expect("finished task exists");
        // An Arc handle keeps the node borrow alive across the `&mut
        // self` accounting calls without deep-cloning the NodeInfo.
        let ws = std::sync::Arc::clone(&self.ws);
        let node = ws.node(task.key());
        let on_time = self.now <= task.deadline();
        self.record_completion(&task, node, on_time, scheduler);
        self.fire_cascades(&task, node, scheduler);
        self.recycle_task(task);
    }
}
