//! Stage: fault boundaries — masking, permanent failure, and slowdowns.
//!
//! Fault events enter the queue like any other event (canonical rank —
//! completions first, then fault ends, then fault starts; see
//! [`crate::event`]) and mutate the engine's incremental state at their
//! instant:
//!
//! * a **stall** parks the accelerator: it leaves the idle pool (or is
//!   withheld from it on its next completion) until the window closes.
//!   In-flight work keeps running — a stall models dispatch
//!   unavailability, not lost work;
//! * a **failure** parks the accelerator forever and *aborts* whatever
//!   gang was running on it: the un-run busy time is rolled back, every
//!   surviving gang member is freed, and the task returns to the ready
//!   list with its to-go cache invalidated through the same lazy seam a
//!   gate mutation uses — the scheduler simply sees it as schedulable work
//!   again (Planaria-style single-accelerator fallback then applies
//!   naturally when a gang can no longer be formed);
//! * a **slowdown** registers a latency factor the dispatch stage folds
//!   into `done_at` scheduling (the gang runs at its slowest member).
//!
//! Aborting leaves the already-scheduled `LayerDone` in the queue; the
//! completion stage recognizes it as stale because the task either has no
//! in-flight record or one whose `done_at` is a different instant (the
//! task was re-dispatched). That check runs only when a fault runtime is
//! installed, so the zero-fault path is bit-identical to the pre-fault
//! engine.

use dream_cost::AcceleratorId;
use dream_trace::{FaultTag, TraceEventKind};

use crate::faults::FaultKind;
use crate::task::TaskId;

use super::Engine;

/// Converts a fault kind into the trace crate's tag.
fn fault_tag(kind: FaultKind) -> FaultTag {
    match kind {
        FaultKind::Stall { .. } => FaultTag::Stall,
        FaultKind::Fail => FaultTag::Fail,
        FaultKind::Slowdown { .. } => FaultTag::Slowdown,
    }
}

impl Engine {
    /// Pushes `FaultStart`/`FaultEnd` events for every plan entry from
    /// `from_idx` on, bounded by the current horizon (events at/past it
    /// could never be processed: `End` outranks them at its own instant).
    /// Called with 0 at run/session start, and with the appended index by
    /// a live fault admission.
    pub(crate) fn seed_fault_events(&mut self, from_idx: usize) {
        let Some(faults) = self.faults.as_ref() else {
            return;
        };
        let horizon = self.horizon;
        // Collect first: pushing borrows the queue mutably.
        let spans: Vec<(usize, crate::faults::FaultEvent)> = faults
            .plan()
            .events()
            .iter()
            .enumerate()
            .skip(from_idx)
            .map(|(idx, &ev)| (idx, ev))
            .collect();
        for (idx, ev) in spans {
            if ev.at >= horizon {
                continue;
            }
            self.queue
                .push(ev.at, crate::event::EventKind::FaultStart { fault: idx });
            if let Some(duration) = ev.kind.duration() {
                let end = ev.at + duration;
                if end < horizon {
                    self.queue
                        .push(end, crate::event::EventKind::FaultEnd { fault: idx });
                }
            }
        }
    }

    /// Applies fault `idx` (a plan index) at the current instant.
    pub(crate) fn fault_start(&mut self, idx: usize) {
        let Some(faults) = self.faults.as_ref() else {
            debug_assert!(false, "FaultStart without a fault runtime");
            return;
        };
        let ev = faults.event(idx);
        self.metrics.faults_injected += 1;
        self.trace_event(TraceEventKind::FaultStart {
            fault: idx as u32,
            acc: ev.acc.0 as u32,
            kind: fault_tag(ev.kind),
        });
        match ev.kind {
            FaultKind::Stall { .. } => {
                let st = self.faults.as_mut().expect("checked above").acc_mut(ev.acc);
                let was_masked = st.masked();
                st.stall_depth += 1;
                if !was_masked {
                    self.park_acc(ev.acc);
                }
            }
            FaultKind::Fail => {
                let st = self.faults.as_mut().expect("checked above").acc_mut(ev.acc);
                let was_masked = st.masked();
                st.failed = true;
                if !was_masked {
                    self.park_acc(ev.acc);
                }
                // Regardless of prior mask state, a failure loses whatever
                // was running on the accelerator.
                self.abort_running_on(ev.acc);
            }
            FaultKind::Slowdown { factor, .. } => {
                self.faults
                    .as_mut()
                    .expect("checked above")
                    .acc_mut(ev.acc)
                    .slow
                    .push((idx, factor));
            }
        }
    }

    /// Closes the window of fault `idx` at the current instant.
    pub(crate) fn fault_end(&mut self, idx: usize) {
        if self.faults.is_none() {
            debug_assert!(false, "FaultEnd without a fault runtime");
            return;
        }
        let ev = self.faults.as_ref().expect("checked above").event(idx);
        self.trace_event(TraceEventKind::FaultEnd {
            fault: idx as u32,
            acc: ev.acc.0 as u32,
        });
        let faults = self.faults.as_mut().expect("checked above");
        match ev.kind {
            FaultKind::Stall { .. } => {
                let st = faults.acc_mut(ev.acc);
                debug_assert!(st.stall_depth > 0, "FaultEnd without an open stall");
                st.stall_depth = st.stall_depth.saturating_sub(1);
                if !st.masked() {
                    self.unpark_acc(ev.acc);
                }
            }
            FaultKind::Slowdown { .. } => {
                faults.acc_mut(ev.acc).slow.retain(|&(i, _)| i != idx);
            }
            FaultKind::Fail => {
                debug_assert!(false, "permanent failures schedule no FaultEnd");
            }
        }
    }

    /// Removes a newly masked accelerator from the idle pool. A busy
    /// accelerator isn't idle, so there is nothing to remove — the
    /// completion stage withholds it instead when its layer finishes.
    fn park_acc(&mut self, acc: AcceleratorId) {
        if self.accs[acc.0].is_idle() {
            if let Ok(pos) = self.idle.binary_search(&acc) {
                self.idle.remove(pos);
            }
        }
    }

    /// Returns a no-longer-masked accelerator to the idle pool, unless it
    /// is still mid-layer (completion will release it normally).
    fn unpark_acc(&mut self, acc: AcceleratorId) {
        if self.accs[acc.0].is_idle() {
            self.release_acc(acc);
        }
    }

    /// Aborts the gang running on a failed accelerator: rolls back the
    /// un-run busy time on every member, frees the unmasked survivors, and
    /// requeues the task as ready with its to-go cache invalidated.
    fn abort_running_on(&mut self, acc: AcceleratorId) {
        let Some(task_id) = self.accs[acc.0].running else {
            return;
        };
        let run = self
            .in_flight_remove(task_id)
            .expect("running task must have an in-flight layer");
        let gang = self.gang_of(task_id);
        let unrun = run.done_at.saturating_sub(self.now).as_ns();
        for &member in &gang {
            let st = &mut self.accs[member.0];
            debug_assert_eq!(st.running, Some(task_id), "gang member ran another task");
            st.running = None;
            st.busy_until = self.now;
            st.busy_ns = st.busy_ns.saturating_sub(unrun);
            if !self.fault_masked(member) {
                self.release_acc(member);
            }
        }
        let task = self
            .arena
            .get_mut(task_id)
            .expect("aborted task is in the arena");
        task.abort_running();
        self.arena.mark_ready(task_id);
        self.metrics.fault_requeues += 1;
        self.trace_event(TraceEventKind::Abort {
            task: task_id.0,
            acc: acc.0 as u32,
        });
    }

    /// Copies the gang out of the task's running state (the task state is
    /// the single owner of the gang list).
    fn gang_of(&self, task_id: TaskId) -> Vec<AcceleratorId> {
        match self
            .arena
            .get(task_id)
            .expect("aborted task is in the arena")
            .state()
        {
            crate::task::TaskState::Running(gang) => gang.clone(),
            crate::task::TaskState::Ready => unreachable!("aborted task must be running"),
        }
    }
}
