use std::collections::{BTreeMap, BTreeSet};

use dream_cost::{AcceleratorId, CostModel, Platform};
use dream_models::Scenario;

use crate::determ::DeterministicCoin;
use crate::event::{EventKind, EventQueue};
use crate::metrics::Metrics;
use crate::scheduler::{AccState, Decision, Scheduler, SystemView, TaskEvent, TaskEventKind};
use crate::task::{QueuedLayer, Task, TaskId};
use crate::workload::{ModelKey, Phase, WorkloadSet};
use crate::{SimError, SimTime};

/// Gate-id namespaces for the deterministic coin, so cascade, skip, and
/// exit draws never collide.
const GATE_CASCADE: u64 = 0;
const GATE_SKIP_BASE: u64 = 1_000;
const GATE_EXIT_BASE: u64 = 2_000;

/// Configures and runs one simulation.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct SimulationBuilder {
    platform: Platform,
    phases: Vec<(SimTime, Scenario)>,
    duration: SimTime,
    seed: u64,
    cost: CostModel,
}

impl SimulationBuilder {
    /// Starts a builder for `scenario` running on `platform` from time 0.
    pub fn new(platform: Platform, scenario: Scenario) -> Self {
        SimulationBuilder {
            platform,
            phases: vec![(SimTime::ZERO, scenario)],
            duration: SimTime::from(crate::Millis::new(2_000)),
            seed: 0,
            cost: CostModel::paper_default(),
        }
    }

    /// Sets the measurement horizon (default: the paper's 2 s window).
    pub fn duration(mut self, duration: impl Into<SimTime>) -> Self {
        self.duration = duration.into();
        self
    }

    /// Sets the workload-realization seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cost model (default: calibrated paper defaults).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Adds a workload phase: at `start`, the running scenario is replaced
    /// by `scenario` (task-level dynamicity — in-flight frames of the old
    /// phase are flushed). Phases may be added in any order; they are
    /// sorted by start time.
    pub fn add_phase(mut self, start: impl Into<SimTime>, scenario: Scenario) -> Self {
        self.phases.push((start.into(), scenario));
        self
    }

    /// Runs the simulation to completion under `scheduler`.
    ///
    /// # Errors
    ///
    /// * [`SimError::ZeroDuration`] for an empty horizon.
    /// * [`SimError::InvalidPhase`] if two phases share a start time or a
    ///   phase starts at/after the horizon.
    pub fn run(self, scheduler: &mut dyn Scheduler) -> Result<SimOutcome, SimError> {
        if self.duration == SimTime::ZERO {
            return Err(SimError::ZeroDuration);
        }
        let mut phases = self.phases;
        phases.sort_by_key(|(start, _)| *start);
        for w in phases.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(SimError::InvalidPhase {
                    reason: format!("two phases share start time {}", w[0].0),
                });
            }
        }
        if phases[0].0 != SimTime::ZERO {
            return Err(SimError::InvalidPhase {
                reason: "the first phase must start at time 0".into(),
            });
        }
        if let Some((start, _)) = phases.iter().find(|(s, _)| *s >= self.duration) {
            return Err(SimError::InvalidPhase {
                reason: format!("phase at {start} starts at/after the horizon"),
            });
        }
        let mut resolved = Vec::with_capacity(phases.len());
        for (i, (start, scenario)) in phases.iter().enumerate() {
            let end = phases
                .get(i + 1)
                .map(|(s, _)| *s)
                .unwrap_or(self.duration);
            resolved.push(Phase {
                start: *start,
                end,
                scenario: scenario.clone(),
            });
        }
        let ws = WorkloadSet::build(resolved, &self.platform, &self.cost)?;
        let mut engine = Engine::new(ws, self.platform, self.cost, self.seed, self.duration);
        Ok(engine.run(scheduler))
    }
}

/// The result of a completed simulation.
#[derive(Debug)]
pub struct SimOutcome {
    metrics: Metrics,
    final_time: SimTime,
}

impl SimOutcome {
    /// Aggregated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the outcome, returning the metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// The time the simulation stopped (= the horizon).
    pub fn final_time(&self) -> SimTime {
        self.final_time
    }
}

struct InFlight {
    energy_pj: f64,
    accs: Vec<AcceleratorId>,
    layer: QueuedLayer,
}

struct Engine {
    now: SimTime,
    horizon: SimTime,
    ws: WorkloadSet,
    platform: Platform,
    cost: CostModel,
    coin: DeterministicCoin,
    accs: Vec<AccState>,
    tasks: BTreeMap<TaskId, Task>,
    in_flight: BTreeMap<TaskId, InFlight>,
    flushing: BTreeSet<TaskId>,
    next_task_id: u64,
    queue: EventQueue,
    metrics: Metrics,
    current_phase: usize,
}

impl Engine {
    fn new(
        ws: WorkloadSet,
        platform: Platform,
        cost: CostModel,
        seed: u64,
        horizon: SimTime,
    ) -> Self {
        let accs = platform.ids().map(AccState::new).collect();
        let mut metrics = Metrics::new(horizon, platform.len());
        for node in ws.nodes() {
            metrics.entry(
                node.key(),
                node.model_name(),
                node.rate().as_fps(),
                node.variant_count(),
            );
        }
        Engine {
            now: SimTime::ZERO,
            horizon,
            ws,
            platform,
            cost,
            coin: DeterministicCoin::new(seed),
            accs,
            tasks: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            flushing: BTreeSet::new(),
            next_task_id: 0,
            queue: EventQueue::new(),
            metrics,
            current_phase: 0,
        }
    }

    /// Coin coordinate that disambiguates identical pipeline indices across
    /// phases.
    fn coin_pipeline(key: ModelKey) -> usize {
        key.phase * 4096 + key.pipeline.0
    }

    fn run(&mut self, scheduler: &mut dyn Scheduler) -> SimOutcome {
        // Seed phase starts (which in turn seed frame arrivals) and the end.
        for (idx, phase) in self.ws.phases().to_vec().iter().enumerate() {
            self.queue.push(phase.start, EventKind::PhaseStart { phase: idx });
        }
        self.queue.push(self.horizon, EventKind::End);

        'outer: while let Some(event) = self.queue.pop() {
            self.now = event.time;
            self.metrics.events_processed += 1;
            match event.kind {
                EventKind::End => break 'outer,
                EventKind::PhaseStart { phase } => self.start_phase(phase, scheduler),
                EventKind::FrameArrival {
                    phase,
                    pipeline,
                    node,
                    frame,
                } => self.frame_arrival(phase, pipeline, node, frame, scheduler),
                EventKind::LayerDone { task } => self.layer_done(task, scheduler),
            }
            // Drain all simultaneous events before scheduling so the view
            // reflects every accelerator freed at this instant.
            if self.queue.peek_time() == Some(self.now) {
                continue;
            }
            self.invoke_scheduler(scheduler);
        }

        for (i, acc) in self.accs.iter().enumerate() {
            self.metrics.acc_busy_ns[i] = acc.busy_ns();
        }
        SimOutcome {
            metrics: std::mem::replace(&mut self.metrics, Metrics::new(self.horizon, 0)),
            final_time: self.now,
        }
    }

    fn start_phase(&mut self, phase: usize, scheduler: &mut dyn Scheduler) {
        self.current_phase = phase;
        // Flush tasks from earlier phases: ready ones leave immediately;
        // running ones drain their current layer and are discarded on
        // completion.
        let stale: Vec<TaskId> = self
            .tasks
            .values()
            .filter(|t| t.key().phase != phase)
            .map(Task::id)
            .collect();
        for id in stale {
            let task = &self.tasks[&id];
            if task.is_ready() {
                let task = self.tasks.remove(&id).expect("stale task exists");
                if let Some(stats) = self.metrics.get_mut(task.key()) {
                    stats.flushed += 1;
                }
                scheduler.on_task_event(&TaskEvent {
                    now: self.now,
                    task: task.id(),
                    key: task.key(),
                    counted: task.counted(),
                    kind: TaskEventKind::Flushed,
                });
            } else {
                self.flushing.insert(id);
            }
        }
        // Kick off periodic arrivals for every root node of the new phase.
        let phase_info = &self.ws.phases()[phase];
        let mut arrivals = Vec::new();
        for node in self.ws.nodes() {
            if node.key().phase == phase && node.parent().is_none() {
                arrivals.push((node.key(), phase_info.start));
            }
        }
        for (key, start) in arrivals {
            self.queue.push(
                start,
                EventKind::FrameArrival {
                    phase,
                    pipeline: key.pipeline,
                    node: key.node,
                    frame: 0,
                },
            );
        }
        let names = self.ws.model_names(phase);
        scheduler.on_phase_start(phase, &names);
    }

    fn frame_arrival(
        &mut self,
        phase: usize,
        pipeline: dream_models::PipelineId,
        node: dream_models::NodeId,
        frame: u64,
        scheduler: &mut dyn Scheduler,
    ) {
        let key = ModelKey {
            phase,
            pipeline,
            node,
        };
        let period = self.ws.node(key).period();
        self.release_task(key, frame, self.now, scheduler);
        let next = self.now + period;
        let phase_end = self.ws.phases()[phase].end;
        if next < phase_end && next < self.horizon {
            self.queue.push(
                next,
                EventKind::FrameArrival {
                    phase,
                    pipeline,
                    node,
                    frame: frame + 1,
                },
            );
        }
    }

    fn release_task(
        &mut self,
        key: ModelKey,
        frame: u64,
        frame_arrival: SimTime,
        scheduler: &mut dyn Scheduler,
    ) {
        let node = self.ws.node(key).clone();
        let deadline = frame_arrival + node.period();
        let phase_end = self.ws.phases()[key.phase].end;
        let counted = deadline <= phase_end && deadline <= self.horizon;
        let id = TaskId(self.next_task_id);
        self.next_task_id += 1;
        let task = Task::new(id, &node, frame, frame_arrival, self.now, deadline, counted);
        if let Some(stats) = self.metrics.get_mut(key) {
            if counted {
                stats.released += 1;
                stats.worst_energy_pj += node.worst_frame_energy_pj();
            } else {
                stats.censored += 1;
            }
        }
        scheduler.on_task_event(&TaskEvent {
            now: self.now,
            task: id,
            key,
            counted,
            kind: TaskEventKind::Released,
        });
        self.tasks.insert(id, task);
    }

    fn layer_done(&mut self, task_id: TaskId, scheduler: &mut dyn Scheduler) {
        let run = self
            .in_flight
            .remove(&task_id)
            .expect("LayerDone for a task with no in-flight layer");
        // Free the accelerators and remember the flush volume.
        let out_bytes = self.ws.output_bytes(run.layer.layer);
        for &acc in &run.accs {
            let st = &mut self.accs[acc.0];
            debug_assert_eq!(st.running, Some(task_id));
            st.running = None;
            st.last_task = Some(task_id);
            st.last_output_bytes = out_bytes;
        }
        self.metrics.layer_executions += 1;

        if self.flushing.remove(&task_id) {
            let task = self.tasks.remove(&task_id).expect("flushing task exists");
            if let Some(stats) = self.metrics.get_mut(task.key()) {
                stats.flushed += 1;
            }
            scheduler.on_task_event(&TaskEvent {
                now: self.now,
                task: task.id(),
                key: task.key(),
                counted: task.counted(),
                kind: TaskEventKind::Flushed,
            });
            return;
        }

        let task = self.tasks.get_mut(&task_id).expect("running task exists");
        let key = task.key();
        let counted = task.counted();
        for &acc in &run.accs {
            self.accs[acc.0].last_model = Some(key);
        }
        let completed = task.complete_head(self.now, run.energy_pj);
        if counted {
            if let Some(stats) = self.metrics.get_mut(key) {
                stats.energy_pj += run.energy_pj;
            }
        }

        // Resolve operator-level dynamicity gates revealed by this layer.
        let g = completed.graph_idx;
        let coin_pl = Self::coin_pipeline(key);
        if let Some(exit) = task.pending_exit_after(g) {
            let take = self.coin.decide(
                coin_pl,
                key.node.0,
                task.frame(),
                GATE_EXIT_BASE + g as u64,
                exit.p_exit,
            );
            task.resolve_exit(g, take);
        }
        if !task.is_complete() {
            if let Some(blk) = task.pending_skip_starting_at(g + 1) {
                let skip = self.coin.decide(
                    coin_pl,
                    key.node.0,
                    task.frame(),
                    GATE_SKIP_BASE + (g as u64 + 1),
                    blk.p_skip,
                );
                task.resolve_skip(g + 1, skip);
            }
        }

        if task.is_complete() {
            self.finish_task(task_id, scheduler);
        }
    }

    fn finish_task(&mut self, task_id: TaskId, scheduler: &mut dyn Scheduler) {
        let task = self.tasks.remove(&task_id).expect("finished task exists");
        let key = task.key();
        let node = self.ws.node(key).clone();
        let on_time = self.now <= task.deadline();
        if task.counted() {
            if let Some(stats) = self.metrics.get_mut(key) {
                if on_time {
                    stats.completed_on_time += 1;
                } else {
                    stats.completed_late += 1;
                }
                stats.variant_runs[task.variant().0] += 1;
                stats.wait_ns +=
                    (self.now.saturating_sub(task.released())).as_ns();
            }
        }
        scheduler.on_task_event(&TaskEvent {
            now: self.now,
            task: task.id(),
            key,
            counted: task.counted(),
            kind: TaskEventKind::Completed {
                on_time,
                energy_pj: task.energy_pj(),
                worst_energy_pj: node.worst_frame_energy_pj(),
            },
        });

        // Fire cascade children (model-level dynamicity).
        let phase_end = self.ws.phases()[key.phase].end;
        if self.now < phase_end {
            let coin_pl = Self::coin_pipeline(key);
            for &child in node.children() {
                let child_key = ModelKey {
                    phase: key.phase,
                    pipeline: key.pipeline,
                    node: child,
                };
                let p = self
                    .ws
                    .node(child_key)
                    .cascade()
                    .map(|c| c.value())
                    .unwrap_or(1.0);
                if self
                    .coin
                    .decide(coin_pl, child.0, task.frame(), GATE_CASCADE, p)
                {
                    self.release_task(child_key, task.frame(), task.frame_arrival(), scheduler);
                }
            }
        }
    }

    fn invoke_scheduler(&mut self, scheduler: &mut dyn Scheduler) {
        let any_idle = self.accs.iter().any(AccState::is_idle);
        let any_ready = self.tasks.values().any(Task::is_ready);
        if !any_idle || !any_ready {
            return;
        }
        let decision = {
            let task_refs: Vec<&Task> = self.tasks.values().collect();
            let view = SystemView {
                now: self.now,
                phase: self.current_phase,
                accs: &self.accs,
                tasks: &task_refs,
                workload: &self.ws,
                cost: &self.cost,
                platform: &self.platform,
            };
            self.metrics.scheduler_invocations += 1;
            scheduler.schedule(&view)
        };
        self.apply_decision(decision, scheduler);
    }

    fn apply_decision(&mut self, decision: Decision, scheduler: &mut dyn Scheduler) {
        for (task_id, variant) in decision.variant_switches {
            let valid = match self.tasks.get_mut(&task_id) {
                Some(task) if task.is_ready() && !task.started() => {
                    let node = self.ws.node(task.key()).clone();
                    task.switch_variant(&node, variant)
                }
                _ => false,
            };
            if !valid {
                self.metrics.invalid_decisions += 1;
            }
        }

        for task_id in decision.drops {
            match self.tasks.get(&task_id) {
                Some(task) if task.is_ready() => {
                    let task = self.tasks.remove(&task_id).expect("dropped task exists");
                    if task.counted() {
                        if let Some(stats) = self.metrics.get_mut(task.key()) {
                            stats.dropped += 1;
                        }
                    }
                    scheduler.on_task_event(&TaskEvent {
                        now: self.now,
                        task: task.id(),
                        key: task.key(),
                        counted: task.counted(),
                        kind: TaskEventKind::Dropped,
                    });
                }
                _ => self.metrics.invalid_decisions += 1,
            }
        }

        for assignment in decision.assignments {
            if !self.apply_assignment(&assignment) {
                self.metrics.invalid_decisions += 1;
            }
        }
    }

    fn apply_assignment(&mut self, assignment: &crate::scheduler::Assignment) -> bool {
        if assignment.accs.is_empty() {
            return false;
        }
        // No duplicate accelerators, all idle.
        let mut seen = BTreeSet::new();
        for &acc in &assignment.accs {
            if acc.0 >= self.accs.len() || !seen.insert(acc) || !self.accs[acc.0].is_idle() {
                return false;
            }
        }
        let Some(task) = self.tasks.get_mut(&assignment.task) else {
            return false;
        };
        if !task.is_ready() {
            return false;
        }
        let Some(head) = task.next_layer() else {
            return false;
        };

        let lead = assignment.accs[0];
        let (mut latency_ns, mut energy_pj) = if assignment.accs.len() == 1 {
            (
                self.ws.latency_ns(head.layer, lead),
                self.ws.energy_pj(head.layer, lead),
            )
        } else {
            let configs: Vec<&dream_cost::AcceleratorConfig> = assignment
                .accs
                .iter()
                .map(|a| self.platform.accelerator(*a).expect("validated id"))
                .collect();
            let cost = self.cost.gang_cost(self.ws.layer(head.layer), &configs);
            (cost.latency_ns, cost.energy_pj)
        };

        // Context switch: the lead accelerator last ran a different task.
        let lead_state = &self.accs[lead.0];
        if lead_state.last_task != Some(assignment.task) {
            let sw = self.cost.switch_cost(
                self.ws.input_bytes(head.layer),
                lead_state.last_output_bytes,
                self.platform.accelerator(lead).expect("validated id"),
            );
            latency_ns += sw.latency_ns;
            energy_pj += sw.energy_pj;
            if lead_state.last_task.is_some() {
                self.metrics.context_switches += 1;
            }
        }

        if task.counted() {
            let wait = self.now.saturating_sub(task.last_completion());
            if let Some(stats) = self.metrics.get_mut(task.key()) {
                stats.wait_ns += wait.as_ns();
            }
        }
        let task = self.tasks.get_mut(&assignment.task).expect("checked above");
        task.set_running(assignment.accs.clone());
        let done_at = self.now + SimTime::from_ns_f64(latency_ns.max(1.0));
        for &acc in &assignment.accs {
            let st = &mut self.accs[acc.0];
            st.running = Some(assignment.task);
            st.busy_until = done_at;
            st.busy_ns += done_at.saturating_sub(self.now).as_ns();
        }
        self.in_flight.insert(
            assignment.task,
            InFlight {
                energy_pj,
                accs: assignment.accs.clone(),
                layer: head,
            },
        );
        self.queue
            .push(done_at, EventKind::LayerDone { task: assignment.task });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Assignment, SchedulerCapabilities};
    use crate::Millis;
    use dream_cost::PlatformPreset;
    use dream_models::{CascadeProbability, ScenarioKind};

    /// Greedy test scheduler: oldest ready task onto the lowest idle
    /// accelerator.
    struct Greedy;

    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy-test"
        }

        fn capabilities(&self) -> SchedulerCapabilities {
            SchedulerCapabilities::default()
        }

        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            let mut decision = Decision::none();
            let mut ready: Vec<_> = view.ready_tasks().collect();
            ready.sort_by_key(|t| (t.released(), t.id()));
            let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
            for task in ready {
                let Some(acc) = idle.pop() else { break };
                decision.assignments.push(Assignment::single(task.id(), acc));
            }
            decision
        }
    }

    fn run_ar_call(seed: u64, ms: u64) -> Metrics {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut sched = Greedy;
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(ms))
            .seed(seed)
            .run(&mut sched)
            .unwrap()
            .into_metrics()
    }

    #[test]
    fn frames_flow_and_complete() {
        let m = run_ar_call(7, 500);
        // KWS at 15 fps over 500 ms: ~7 counted frames (deadline within
        // horizon); SkipNet at 30 fps: ~14.
        let mut names = std::collections::BTreeMap::new();
        for (_, s) in m.models() {
            names.insert(s.model_name, s.released);
        }
        assert!(names["KWS_res8"] >= 5, "{names:?}");
        assert!(names["SkipNet"] >= 12, "{names:?}");
        // GNMT released ≈ half of KWS (50% cascade).
        assert!(names["GNMT"] >= 1);
        assert!(names["GNMT"] < names["KWS_res8"]);
        assert_eq!(m.invalid_decisions, 0);
        assert!(m.layer_executions > 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_ar_call(42, 400);
        let b = run_ar_call(42, 400);
        assert_eq!(a.layer_executions, b.layer_executions);
        assert_eq!(a.events_processed, b.events_processed);
        let rates_a: Vec<_> = a.models().map(|(_, s)| s.violated()).collect();
        let rates_b: Vec<_> = b.models().map(|(_, s)| s.violated()).collect();
        assert_eq!(rates_a, rates_b);
        let e_a: f64 = a.models().map(|(_, s)| s.energy_pj).sum();
        let e_b: f64 = b.models().map(|(_, s)| s.energy_pj).sum();
        assert_eq!(e_a, e_b);
    }

    #[test]
    fn seeds_change_cascade_realization() {
        let a = run_ar_call(1, 600);
        let b = run_ar_call(2, 600);
        let gnmt = |m: &Metrics| {
            m.models()
                .find(|(_, s)| s.model_name == "GNMT")
                .map(|(_, s)| s.released)
                .unwrap()
        };
        // Different seeds → different cascade draws (with overwhelming
        // probability over ≥8 frames).
        assert_ne!(gnmt(&a), gnmt(&b));
    }

    #[test]
    fn energy_stays_near_worst_case_bound() {
        let m = run_ar_call(3, 800);
        for (_, s) in m.models() {
            if s.released > 0 {
                // The worst-case bound covers layer energy only (Algorithm 2
                // normalises to worst layer-accelerator pairs); context-switch
                // energy comes on top, so allow headroom for a scatter-happy
                // scheduler but catch gross accounting errors.
                assert!(
                    s.energy_pj <= s.worst_energy_pj * 1.6,
                    "{}: {} > 1.6×{}",
                    s.model_name,
                    s.energy_pj,
                    s.worst_energy_pj
                );
                assert!(s.energy_pj > 0.0, "{} consumed no energy", s.model_name);
            }
        }
    }

    #[test]
    fn zero_duration_rejected() {
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut s = Greedy;
        let err = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(0))
            .run(&mut s);
        assert!(matches!(err, Err(SimError::ZeroDuration)));
    }

    #[test]
    fn phase_change_flushes_and_switches_models() {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let p = CascadeProbability::default_paper();
        let mut sched = Greedy;
        let outcome = SimulationBuilder::new(
            platform,
            Scenario::new(ScenarioKind::ArCall, p),
        )
        .add_phase(Millis::new(250), Scenario::new(ScenarioKind::DroneOutdoor, p))
        .duration(Millis::new(500))
        .seed(9)
        .run(&mut sched)
        .unwrap();
        let m = outcome.metrics();
        let names: Vec<_> = m.models().map(|(k, s)| (k.phase, s.model_name)).collect();
        assert!(names.iter().any(|(p, n)| *p == 0 && *n == "SkipNet"));
        assert!(names.iter().any(|(p, n)| *p == 1 && *n == "TrailNet"));
        // Phase-1 models released frames after the switch.
        let trailnet = m
            .models()
            .find(|(k, s)| k.phase == 1 && s.model_name == "TrailNet")
            .unwrap()
            .1;
        assert!(trailnet.released > 5);
    }

    #[test]
    fn invalid_decisions_are_counted_not_fatal() {
        struct Bad;
        impl Scheduler for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
                // Assign a bogus task id and a bogus drop every time.
                let mut d = Decision::none();
                d.drops.push(TaskId(u64::MAX));
                if let Some(acc) = view.idle_accs().next() {
                    d.assignments
                        .push(Assignment::single(TaskId(u64::MAX), acc.id()));
                }
                d
            }
        }
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut s = Bad;
        let m = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(100))
            .run(&mut s)
            .unwrap()
            .into_metrics();
        assert!(m.invalid_decisions > 0);
        // Nothing ever ran.
        assert_eq!(m.layer_executions, 0);
    }

    #[test]
    fn utilization_is_positive_under_load() {
        let m = run_ar_call(5, 500);
        assert!(m.mean_utilization() > 0.01);
        assert!(m.mean_utilization() <= 1.0);
    }
}
