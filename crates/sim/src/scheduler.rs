use dream_cost::{AcceleratorId, CostBackend, Platform};
use dream_models::VariantId;

use crate::task::{Task, TaskId};
use crate::workload::{ModelKey, WorkloadSet};
use crate::SimTime;

/// Runtime state of one sub-accelerator, as visible to schedulers
/// (the paper's "accelerator availability info", Figure 4).
#[derive(Debug, Clone)]
pub struct AccState {
    pub(crate) id: AcceleratorId,
    pub(crate) busy_until: SimTime,
    pub(crate) running: Option<TaskId>,
    pub(crate) last_task: Option<TaskId>,
    pub(crate) last_model: Option<ModelKey>,
    pub(crate) last_output_bytes: u64,
    pub(crate) busy_ns: u64,
}

impl AccState {
    pub(crate) fn new(id: AcceleratorId) -> Self {
        AccState {
            id,
            busy_until: SimTime::ZERO,
            running: None,
            last_task: None,
            last_model: None,
            last_output_bytes: 0,
            busy_ns: 0,
        }
    }

    /// The accelerator's id.
    pub fn id(&self) -> AcceleratorId {
        self.id
    }

    /// Whether the accelerator can accept a new layer right now.
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    /// When the current layer finishes (meaningless when idle).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// The task whose layer is currently executing, if any.
    pub fn running(&self) -> Option<TaskId> {
        self.running
    }

    /// The task that last executed a layer here — Algorithm 1's
    /// `acc.prevTask`, the context-switch reference.
    pub fn last_task(&self) -> Option<TaskId> {
        self.last_task
    }

    /// The model of the task that last executed here.
    pub fn last_model(&self) -> Option<ModelKey> {
        self.last_model
    }

    /// Output-activation bytes of the last layer executed here — the flush
    /// volume a context switch would pay.
    pub fn last_output_bytes(&self) -> u64 {
        self.last_output_bytes
    }

    /// Cumulative busy time (utilisation accounting).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }
}

/// One dispatch: run `task`'s head layer on `accs` (more than one
/// accelerator = a Planaria-style gang; the engine merges their resources
/// and applies the fission overhead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The task whose head layer is dispatched.
    pub task: TaskId,
    /// Target accelerator(s); all must currently be idle.
    pub accs: Vec<AcceleratorId>,
}

impl Assignment {
    /// A single-accelerator assignment.
    pub fn single(task: TaskId, acc: AcceleratorId) -> Self {
        Assignment {
            task,
            accs: vec![acc],
        }
    }
}

/// The scheduler's output for one invocation (the paper's "scheduling
/// decision", Figure 4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Decision {
    /// Layer → accelerator dispatches to apply now.
    pub assignments: Vec<Assignment>,
    /// Ready tasks to drop (smart frame drop; counted as deadline
    /// violations per §4.2.1).
    pub drops: Vec<TaskId>,
    /// Supernet variant selections, legal only before a task's first layer
    /// executes.
    pub variant_switches: Vec<(TaskId, VariantId)>,
}

impl Decision {
    /// A decision that does nothing (wait for the next event).
    pub fn none() -> Self {
        Decision::default()
    }

    /// Whether the decision carries no actions.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty() && self.drops.is_empty() && self.variant_switches.is_empty()
    }
}

/// Which RTMM challenges a scheduler addresses — the axes of the paper's
/// Table 1 and Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerCapabilities {
    /// Handles cascaded models (inter-model dependencies).
    pub cascade: bool,
    /// Handles concurrent pipelines.
    pub concurrent: bool,
    /// Deadline aware.
    pub realtime: bool,
    /// Adapts to task-level workload changes.
    pub task_dynamicity: bool,
    /// Adapts to model/operator-level dynamicity.
    pub model_dynamicity: bool,
    /// Optimises energy.
    pub energy_aware: bool,
    /// Exploits hardware heterogeneity.
    pub heterogeneity_aware: bool,
}

/// A notification delivered to the scheduler after task lifecycle events —
/// the feedback stream DREAM's adaptivity engine consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEvent {
    /// Simulation time of the event.
    pub now: SimTime,
    /// The affected task.
    pub task: TaskId,
    /// The affected model.
    pub key: ModelKey,
    /// Whether the frame counts toward metrics.
    pub counted: bool,
    /// What happened.
    pub kind: TaskEventKind,
}

/// The kind of task lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskEventKind {
    /// A new inference request entered the queues.
    Released,
    /// The inference completed; `on_time` is false for deadline violations.
    Completed {
        /// Whether the deadline was met.
        on_time: bool,
        /// Total energy the inference consumed (pJ).
        energy_pj: f64,
        /// Worst-case per-frame energy of its model (pJ), for normalisation.
        worst_energy_pj: f64,
    },
    /// The frame was dropped by the scheduler (counts as a violation).
    Dropped,
    /// The frame was flushed by a workload phase change (not counted).
    Flushed,
}

/// An immutable, *borrowed* view of the system a scheduler decides over.
///
/// The engine maintains the underlying structures — the slab-backed task
/// arena, the ready-task index, and the idle-accelerator list —
/// incrementally as events apply, and lends them out here per decision.
/// Nothing is reconstructed per event, which is what keeps the paper's
/// per-event scheduling loop cheap (§5.2's overhead claim).
///
/// Indexed accessors ([`SystemView::task`], [`SystemView::ready_ids`],
/// [`SystemView::idle_ids`], [`SystemView::acc`]) resolve in O(log n) or
/// O(1); the iterators walk the live set ascending by [`TaskId`] so every
/// scheduler observes the same deterministic order.
#[derive(Debug)]
pub struct SystemView<'a> {
    pub(crate) now: SimTime,
    pub(crate) phase: usize,
    pub(crate) accs: &'a [AccState],
    pub(crate) arena: &'a crate::engine::arena::TaskArena,
    pub(crate) idle: &'a [AcceleratorId],
    pub(crate) workload: &'a WorkloadSet,
    pub(crate) cost: &'a dyn CostBackend,
    pub(crate) platform: &'a Platform,
    /// Whether the engine's flight recorder wants
    /// [`DecisionRecord`](dream_trace::DecisionRecord)s for this
    /// invocation (see [`Scheduler::take_decision_records`]).
    pub(crate) record_decisions: bool,
}

impl<'a> SystemView<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current workload phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// All sub-accelerators, ascending by id.
    pub fn accs(&self) -> &'a [AccState] {
        self.accs
    }

    /// One sub-accelerator's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an accelerator of this platform.
    pub fn acc(&self, id: AcceleratorId) -> &'a AccState {
        &self.accs[id.0]
    }

    /// All live tasks (ready and running), ascending by id.
    pub fn tasks(&self) -> impl Iterator<Item = &'a Task> + '_ {
        self.arena.iter()
    }

    /// Number of live tasks.
    pub fn task_count(&self) -> usize {
        self.arena.len()
    }

    /// Tasks awaiting dispatch, ascending by id.
    pub fn ready_tasks(&self) -> impl Iterator<Item = &'a Task> + '_ {
        self.arena
            .ready_ids()
            .iter()
            .map(|&id| self.arena.get(id).expect("ready ids are live"))
    }

    /// Ids of tasks awaiting dispatch, ascending (the engine's
    /// incrementally maintained ready index).
    pub fn ready_ids(&self) -> &'a [TaskId] {
        self.arena.ready_ids()
    }

    /// Number of ready tasks.
    pub fn ready_count(&self) -> usize {
        self.arena.ready_ids().len()
    }

    /// Idle accelerators, ascending by id.
    pub fn idle_accs(&self) -> impl Iterator<Item = &'a AccState> + '_ {
        self.idle.iter().map(|&id| &self.accs[id.0])
    }

    /// Ids of idle accelerators, ascending (the engine's incrementally
    /// maintained occupancy index).
    pub fn idle_ids(&self) -> &'a [AcceleratorId] {
        self.idle
    }

    /// Number of idle accelerators.
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }

    /// Looks up a live task by id.
    pub fn task(&self, id: TaskId) -> Option<&'a Task> {
        self.arena.get(id)
    }

    /// Remaining time to `id`'s deadline right now (negative when past
    /// due); `None` for ids no longer live.
    pub fn slack_ns(&self, id: TaskId) -> Option<f64> {
        self.arena.get(id).map(|t| t.slack_ns(self.now))
    }

    /// The resolved workload with its offline cost tables.
    pub fn workload(&self) -> &'a WorkloadSet {
        self.workload
    }

    /// The cost backend (for on-demand queries such as gang costing).
    /// Fallible queries signal pairs the backend does not cover —
    /// schedulers must treat those options as unavailable, not guess.
    pub fn cost(&self) -> &'a dyn CostBackend {
        self.cost
    }

    /// The hardware platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// Whether a flight recorder is attached and wants
    /// [`DecisionRecord`](dream_trace::DecisionRecord)s explaining this
    /// invocation's choices. Schedulers that support decision tracing
    /// check this before doing any extra bookkeeping, so an untraced run
    /// does exactly the work it did before the recorder existed.
    pub fn wants_decision_records(&self) -> bool {
        self.record_decisions
    }
}

/// A pluggable scheduling policy.
///
/// The engine calls [`Scheduler::schedule`] whenever at least one
/// accelerator is idle and at least one task is ready. Implementations must
/// be deterministic functions of the view (plus their own state) for runs
/// to be reproducible. `Send` so simulations (and the live serving
/// runtime) can move across threads.
pub trait Scheduler: Send {
    /// Display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Which RTMM challenges this policy addresses (Tables 1 and 5).
    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities::default()
    }

    /// Produce a decision for the current system state.
    fn schedule(&mut self, view: &SystemView<'_>) -> Decision;

    /// Lifecycle notification (release/completion/drop/flush).
    fn on_task_event(&mut self, _event: &TaskEvent) {}

    /// A workload phase started; `model_names` is the new inference model
    /// list (DREAM's workload-change trigger).
    fn on_phase_start(&mut self, _phase: usize, _model_names: &[&'static str]) {}

    /// Drains the decision records explaining the last
    /// [`schedule`](Self::schedule) call — the chosen (task, accelerator)
    /// pairs with their score breakdowns. The engine calls this only when
    /// a flight recorder is attached *and*
    /// [`SystemView::wants_decision_records`] was `true` for the
    /// invocation; the default is empty, so policies without score
    /// introspection need no changes.
    fn take_decision_records(&mut self) -> Vec<dream_trace::DecisionRecord> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_emptiness() {
        assert!(Decision::none().is_empty());
        let d = Decision {
            assignments: vec![Assignment::single(TaskId(1), AcceleratorId(0))],
            ..Decision::default()
        };
        assert!(!d.is_empty());
    }

    #[test]
    fn assignment_single_constructor() {
        let a = Assignment::single(TaskId(3), AcceleratorId(2));
        assert_eq!(a.accs, vec![AcceleratorId(2)]);
    }

    #[test]
    fn acc_state_accessors() {
        let a = AccState::new(AcceleratorId(1));
        assert!(a.is_idle());
        assert_eq!(a.id(), AcceleratorId(1));
        assert_eq!(a.last_task(), None);
        assert_eq!(a.busy_ns(), 0);
    }

    #[test]
    fn capabilities_default_is_all_false() {
        let c = SchedulerCapabilities::default();
        assert!(!c.cascade && !c.energy_aware && !c.heterogeneity_aware);
    }
}
