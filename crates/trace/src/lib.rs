//! Deterministic flight recorder for the DREAM engine.
//!
//! A [`TraceRuntime`] sits behind the engine's zero-cost
//! `Option<Box<TraceRuntime>>` seam (the same pattern the fault runtime
//! uses): when absent, the engine pays a single `is_some` branch per
//! emission point; when installed, structured **sim-time-stamped** events
//! land in a bounded ring buffer. Stamps are virtual nanoseconds, never
//! wall clock — recording is a pure function of the event stream, so a
//! live session's trace is **byte-identical** to its batch replay's trace
//! (a strictly stronger equivalence witness than the metrics
//! fingerprint).
//!
//! This crate is dependency-free on purpose: the simulator depends on the
//! recorder, not the other way around, so events carry raw integer ids
//! (`u64` task ids, `u32` accelerator/phase/pipeline/node indices) rather
//! than the simulator's newtypes.
//!
//! # Event schema
//!
//! | kind | when | payload |
//! |------|------|---------|
//! | `Release` | a frame enters the queues | task, model, frame, counted (false = censored), deadline |
//! | `Dispatch` | a layer starts on an accelerator (one event per gang member) | task, acc, gang size, layer, `done_at_ns` |
//! | `Complete` | an inference finishes | task, model, on-time flag |
//! | `Drop` | the scheduler drops a frame | task, model |
//! | `Flush` | a phase change flushes a frame | task, model |
//! | `Abort` | an accelerator failure aborts a running gang | task, failed acc |
//! | `FaultStart`/`FaultEnd` | a fault window opens/closes | plan index, acc, kind |
//! | `PhaseStart` | a workload phase (or hot-swap) boundary | phase |
//! | `Drain` | the horizon fires | — |
//! | `Decision` | the scheduler chose (task, acc) | [`DecisionRecord`]: score + term breakdown |
//! | `Counter` | sampled after each scheduler invocation | ready / running depths |
//!
//! `Counter` samples deliberately expose only replay-invariant depths
//! (ready tasks, running layers): the raw event-queue length differs
//! between a live session (admissions are pushed when they happen) and
//! its batch replay (the trace recurrence pushes them one at a time), so
//! it can never appear in a trace that must be byte-identical across
//! both.
//!
//! # Ring-buffer bounds
//!
//! The ring holds [`TraceConfig::capacity`] events (default
//! [`DEFAULT_TRACE_CAPACITY`]). When full, the **oldest** event is
//! overwritten and [`Trace::dropped`] counts the loss — a flight
//! recorder keeps the most recent window, exactly like its aviation
//! namesake. Overwriting is itself deterministic, so bounded traces stay
//! byte-identical too.
//!
//! # Exporters
//!
//! [`Trace::to_chrome_json`] renders the Chrome-trace / Perfetto JSON
//! object format: one track per accelerator carrying dispatch spans and
//! fault markers, a lifecycle track for releases/completions/decisions,
//! and counter tracks for the ready/running depths. Load the file at
//! `https://ui.perfetto.dev` (or `chrome://tracing`). [`Trace::to_csv`]
//! renders one row per event for offline analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;

use std::collections::VecDeque;

/// Default ring capacity: 64Ki events (~4 MiB), a few minutes of a busy
/// session's most recent history.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Names of the [`DecisionRecord::terms`] slots, in order — the MapScore
/// breakdown of Algorithm 1: `urgency·lat_pref + α·starvation + β·energy`
/// with `energy = pref_energy − cost_switch`.
pub const SCORE_TERM_NAMES: [&str; 6] = [
    "urgency",
    "lat_pref",
    "starvation",
    "pref_energy",
    "cost_switch",
    "energy",
];

/// A model instance reference: raw indices of `(phase, pipeline, node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelRef {
    /// Workload phase index.
    pub phase: u32,
    /// Pipeline index within the phase's scenario.
    pub pipeline: u32,
    /// Node index within the pipeline.
    pub node: u32,
}

/// The kind of fault behind a [`TraceEventKind::FaultStart`] marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTag {
    /// Dispatch unavailability for a window.
    Stall,
    /// Permanent failure.
    Fail,
    /// A latency multiplier for a window.
    Slowdown,
}

impl FaultTag {
    /// Stable lowercase label (used by both exporters).
    pub fn label(self) -> &'static str {
        match self {
            FaultTag::Stall => "stall",
            FaultTag::Fail => "fail",
            FaultTag::Slowdown => "slowdown",
        }
    }
}

/// One scheduler choice: the chosen (task, accelerator) pair, its
/// combined MapScore, and the term breakdown ([`SCORE_TERM_NAMES`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// The chosen task.
    pub task: u64,
    /// The chosen accelerator.
    pub acc: u32,
    /// The combined score the pair won with.
    pub score: f64,
    /// The unit terms, ordered as [`SCORE_TERM_NAMES`].
    pub terms: [f64; 6],
}

/// What happened at one instant (see the [module docs](self) schema).
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field meanings are the schema table in the module docs
pub enum TraceEventKind {
    Release {
        task: u64,
        model: ModelRef,
        frame: u64,
        counted: bool,
        deadline_ns: u64,
    },
    Dispatch {
        task: u64,
        acc: u32,
        gang: u32,
        layer: u32,
        done_at_ns: u64,
    },
    Complete {
        task: u64,
        model: ModelRef,
        on_time: bool,
    },
    Drop {
        task: u64,
        model: ModelRef,
    },
    Flush {
        task: u64,
        model: ModelRef,
    },
    Abort {
        task: u64,
        acc: u32,
    },
    FaultStart {
        fault: u32,
        acc: u32,
        kind: FaultTag,
    },
    FaultEnd {
        fault: u32,
        acc: u32,
    },
    PhaseStart {
        phase: u32,
    },
    Drain,
    Decision(DecisionRecord),
    Counter {
        ready: u32,
        running: u32,
    },
}

impl TraceEventKind {
    /// Stable lowercase label (the CSV `kind` column).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Release { .. } => "release",
            TraceEventKind::Dispatch { .. } => "dispatch",
            TraceEventKind::Complete { .. } => "complete",
            TraceEventKind::Drop { .. } => "drop",
            TraceEventKind::Flush { .. } => "flush",
            TraceEventKind::Abort { .. } => "abort",
            TraceEventKind::FaultStart { .. } => "fault_start",
            TraceEventKind::FaultEnd { .. } => "fault_end",
            TraceEventKind::PhaseStart { .. } => "phase_start",
            TraceEventKind::Drain => "drain",
            TraceEventKind::Decision(_) => "decision",
            TraceEventKind::Counter { .. } => "counter",
        }
    }
}

/// One recorded event: a sim-time stamp (virtual nanoseconds) and what
/// happened there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event, in nanoseconds.
    pub at_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Configuration for a [`TraceRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events; 0 is clamped to 1. When the ring is
    /// full the oldest event is overwritten (and counted as dropped).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// A config with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig { capacity }
    }
}

/// The in-flight recorder: a bounded ring of [`TraceEvent`]s.
///
/// Engines hold one behind an `Option<Box<_>>` seam and call
/// [`record`](Self::record) at their emission points; [`finish`](Self::finish)
/// extracts the immutable [`Trace`].
#[derive(Debug)]
pub struct TraceRuntime {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRuntime {
    /// Creates a recorder with the given config.
    pub fn new(config: TraceConfig) -> Self {
        let capacity = config.capacity.max(1);
        TraceRuntime {
            capacity,
            // Reserve lazily-bounded: large capacities shouldn't commit
            // memory before events exist.
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Records one event; overwrites the oldest when the ring is full.
    pub fn record(&mut self, at_ns: u64, kind: TraceEventKind) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { at_ns, kind });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded (or everything was overwritten).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extracts the recorded window as an immutable [`Trace`].
    pub fn finish(self) -> Trace {
        Trace {
            capacity: self.capacity,
            dropped: self.dropped,
            events: self.events.into_iter().collect(),
        }
    }
}

/// An extracted trace: the recorded event window plus loss accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    capacity: usize,
    dropped: u64,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring capacity the trace was recorded with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u64) -> TraceEventKind {
        TraceEventKind::Complete {
            task,
            model: ModelRef {
                phase: 0,
                pipeline: 0,
                node: 0,
            },
            on_time: true,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut rt = TraceRuntime::new(TraceConfig::with_capacity(3));
        for i in 0..5u64 {
            rt.record(i, ev(i));
        }
        let trace = rt.finish();
        assert_eq!(trace.dropped(), 2);
        assert_eq!(trace.len(), 3);
        let stamps: Vec<u64> = trace.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(stamps, vec![2, 3, 4], "the newest window survives");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut rt = TraceRuntime::new(TraceConfig::with_capacity(0));
        rt.record(1, ev(1));
        rt.record(2, ev(2));
        let t = rt.finish();
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.capacity(), 1);
    }

    #[test]
    fn default_capacity_is_large() {
        let rt = TraceRuntime::new(TraceConfig::default());
        assert!(rt.is_empty());
        assert_eq!(rt.capacity, DEFAULT_TRACE_CAPACITY);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ev(0).label(), "complete");
        assert_eq!(TraceEventKind::Drain.label(), "drain");
        assert_eq!(FaultTag::Slowdown.label(), "slowdown");
        assert_eq!(SCORE_TERM_NAMES[0], "urgency");
    }
}
