//! Trace exporters: Chrome-trace/Perfetto JSON and CSV.
//!
//! Both renderings are pure functions of the trace contents — integer
//! fields print as integers, floats print with Rust's shortest-roundtrip
//! `Display` — so equal traces export to byte-identical files. That is
//! what lets `scripts/check_trace.sh` compare a live session's export
//! against its batch replay's with a plain `cmp`.

use std::fmt::Write as _;

use crate::{Trace, TraceEventKind, SCORE_TERM_NAMES};

/// Microseconds for a Chrome-trace `ts`/`dur` field (fractional µs keep
/// full ns resolution).
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// One JSON event object. `extra` carries pre-rendered `"k":v` pairs for
/// the `args` object; everything emitted here is machine-generated (no
/// user strings), so names never need escaping.
#[allow(clippy::too_many_arguments)] // flat field list mirrors the JSON shape
fn json_event(
    out: &mut String,
    first: &mut bool,
    ph: &str,
    tid: Option<u32>,
    ts_ns: u64,
    name: &str,
    cat: &str,
    extra: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n{\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"pid\":0");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    let _ = write!(out, ",\"ts\":{}", us(ts_ns));
    if ph == "i" {
        // Instant scope: thread-scoped when on a track, global otherwise.
        out.push_str(if tid.is_some() {
            ",\"s\":\"t\""
        } else {
            ",\"s\":\"g\""
        });
    }
    let _ = write!(out, ",\"name\":\"{name}\"");
    if !cat.is_empty() {
        let _ = write!(out, ",\"cat\":\"{cat}\"");
    }
    if !extra.is_empty() {
        let _ = write!(out, ",\"args\":{{{extra}}}");
    }
    out.push('}');
}

impl Trace {
    /// Renders the Chrome-trace / Perfetto JSON object format: dispatch
    /// spans and fault markers on one track per accelerator, lifecycle
    /// and decision instants on a dedicated track, and counter tracks
    /// for the ready/running depths. Open the result at
    /// `https://ui.perfetto.dev`.
    pub fn to_chrome_json(&self) -> String {
        // Name every accelerator track that appears anywhere in the trace.
        let mut max_acc: Option<u32> = None;
        for e in self.events() {
            let acc = match e.kind {
                TraceEventKind::Dispatch { acc, .. }
                | TraceEventKind::Abort { acc, .. }
                | TraceEventKind::FaultStart { acc, .. }
                | TraceEventKind::FaultEnd { acc, .. } => Some(acc),
                _ => None,
            };
            if let Some(a) = acc {
                max_acc = Some(max_acc.map_or(a, |m| m.max(a)));
            }
        }
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let meta = |out: &mut String, first: &mut bool, tid: u32, name: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            let _ = write!(
                out,
                "\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            );
        };
        meta(&mut out, &mut first, 0, "lifecycle");
        if let Some(m) = max_acc {
            for a in 0..=m {
                meta(&mut out, &mut first, a + 1, &format!("acc{a}"));
            }
        }
        for e in self.events() {
            let at = e.at_ns;
            match e.kind {
                TraceEventKind::Release {
                    task,
                    model,
                    frame,
                    counted,
                    deadline_ns,
                } => {
                    let name = if counted { "release" } else { "censor" };
                    let extra = format!(
                        "\"task\":{task},\"phase\":{},\"pipeline\":{},\"node\":{},\"frame\":{frame},\"deadline_ns\":{deadline_ns}",
                        model.phase, model.pipeline, model.node
                    );
                    json_event(
                        &mut out,
                        &mut first,
                        "i",
                        Some(0),
                        at,
                        name,
                        "frame",
                        &extra,
                    );
                }
                TraceEventKind::Dispatch {
                    task,
                    acc,
                    gang,
                    layer,
                    done_at_ns,
                } => {
                    let name = format!("task{task} L{layer}");
                    let extra = format!("\"task\":{task},\"layer\":{layer},\"gang\":{gang}");
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "\n{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{name}\",\"cat\":\"dispatch\",\"args\":{{{extra}}}}}",
                        acc + 1,
                        us(at),
                        us(done_at_ns.saturating_sub(at)),
                    );
                }
                TraceEventKind::Complete {
                    task,
                    model,
                    on_time,
                } => {
                    let name = if on_time { "complete" } else { "late" };
                    let extra = format!(
                        "\"task\":{task},\"phase\":{},\"pipeline\":{},\"node\":{}",
                        model.phase, model.pipeline, model.node
                    );
                    json_event(
                        &mut out,
                        &mut first,
                        "i",
                        Some(0),
                        at,
                        name,
                        "frame",
                        &extra,
                    );
                }
                TraceEventKind::Drop { task, model } | TraceEventKind::Flush { task, model } => {
                    let extra = format!(
                        "\"task\":{task},\"phase\":{},\"pipeline\":{},\"node\":{}",
                        model.phase, model.pipeline, model.node
                    );
                    json_event(
                        &mut out,
                        &mut first,
                        "i",
                        Some(0),
                        at,
                        e.kind.label(),
                        "frame",
                        &extra,
                    );
                }
                TraceEventKind::Abort { task, acc } => {
                    let extra = format!("\"task\":{task}");
                    json_event(
                        &mut out,
                        &mut first,
                        "i",
                        Some(acc + 1),
                        at,
                        "abort",
                        "fault",
                        &extra,
                    );
                }
                TraceEventKind::FaultStart { fault, acc, kind } => {
                    let name = format!("fault:{}", kind.label());
                    let extra = format!("\"fault\":{fault}");
                    json_event(
                        &mut out,
                        &mut first,
                        "i",
                        Some(acc + 1),
                        at,
                        &name,
                        "fault",
                        &extra,
                    );
                }
                TraceEventKind::FaultEnd { fault, acc } => {
                    let extra = format!("\"fault\":{fault}");
                    json_event(
                        &mut out,
                        &mut first,
                        "i",
                        Some(acc + 1),
                        at,
                        "fault:end",
                        "fault",
                        &extra,
                    );
                }
                TraceEventKind::PhaseStart { phase } => {
                    let extra = format!("\"phase\":{phase}");
                    json_event(
                        &mut out, &mut first, "i", None, at, "phase", "boundary", &extra,
                    );
                }
                TraceEventKind::Drain => {
                    json_event(&mut out, &mut first, "i", None, at, "drain", "boundary", "");
                }
                TraceEventKind::Decision(rec) => {
                    let mut extra = format!(
                        "\"task\":{},\"acc\":{},\"score\":{}",
                        rec.task, rec.acc, rec.score
                    );
                    for (name, val) in SCORE_TERM_NAMES.iter().zip(rec.terms.iter()) {
                        let _ = write!(extra, ",\"{name}\":{val}");
                    }
                    json_event(
                        &mut out,
                        &mut first,
                        "i",
                        Some(0),
                        at,
                        "decision",
                        "decision",
                        &extra,
                    );
                }
                TraceEventKind::Counter { ready, running } => {
                    json_event(
                        &mut out,
                        &mut first,
                        "C",
                        None,
                        at,
                        "ready",
                        "",
                        &format!("\"ready\":{ready}"),
                    );
                    json_event(
                        &mut out,
                        &mut first,
                        "C",
                        None,
                        at,
                        "running",
                        "",
                        &format!("\"running\":{running}"),
                    );
                }
            }
        }
        let _ = write!(
            out,
            "\n],\"otherData\":{{\"dropped_events\":{},\"ring_capacity\":{}}}}}",
            self.dropped(),
            self.capacity()
        );
        out.push('\n');
        out
    }

    /// Renders one CSV row per event with fixed columns
    /// (`at_ns,kind,task,acc,phase,pipeline,node,frame,layer,flag,value,aux`);
    /// fields that do not apply to a kind stay empty. The decision `aux`
    /// column carries the `name=value` term breakdown joined with `;`.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("at_ns,kind,task,acc,phase,pipeline,node,frame,layer,flag,value,aux\n");
        for e in self.events() {
            let at = e.at_ns;
            let kind = e.kind.label();
            // (task, acc, phase, pipeline, node, frame, layer, flag, value, aux)
            let mut cols: [String; 10] = Default::default();
            match e.kind {
                TraceEventKind::Release {
                    task,
                    model,
                    frame,
                    counted,
                    deadline_ns,
                } => {
                    cols[0] = task.to_string();
                    cols[2] = model.phase.to_string();
                    cols[3] = model.pipeline.to_string();
                    cols[4] = model.node.to_string();
                    cols[5] = frame.to_string();
                    cols[7] = u8::from(counted).to_string();
                    cols[8] = deadline_ns.to_string();
                }
                TraceEventKind::Dispatch {
                    task,
                    acc,
                    gang,
                    layer,
                    done_at_ns,
                } => {
                    cols[0] = task.to_string();
                    cols[1] = acc.to_string();
                    cols[6] = layer.to_string();
                    cols[8] = done_at_ns.to_string();
                    cols[9] = gang.to_string();
                }
                TraceEventKind::Complete {
                    task,
                    model,
                    on_time,
                } => {
                    cols[0] = task.to_string();
                    cols[2] = model.phase.to_string();
                    cols[3] = model.pipeline.to_string();
                    cols[4] = model.node.to_string();
                    cols[7] = u8::from(on_time).to_string();
                }
                TraceEventKind::Drop { task, model } | TraceEventKind::Flush { task, model } => {
                    cols[0] = task.to_string();
                    cols[2] = model.phase.to_string();
                    cols[3] = model.pipeline.to_string();
                    cols[4] = model.node.to_string();
                }
                TraceEventKind::Abort { task, acc } => {
                    cols[0] = task.to_string();
                    cols[1] = acc.to_string();
                }
                TraceEventKind::FaultStart { fault, acc, kind } => {
                    cols[1] = acc.to_string();
                    cols[8] = fault.to_string();
                    cols[9] = kind.label().to_string();
                }
                TraceEventKind::FaultEnd { fault, acc } => {
                    cols[1] = acc.to_string();
                    cols[8] = fault.to_string();
                }
                TraceEventKind::PhaseStart { phase } => {
                    cols[2] = phase.to_string();
                }
                TraceEventKind::Drain => {}
                TraceEventKind::Decision(rec) => {
                    cols[0] = rec.task.to_string();
                    cols[1] = rec.acc.to_string();
                    cols[8] = rec.score.to_string();
                    let mut aux = String::new();
                    for (i, (name, val)) in
                        SCORE_TERM_NAMES.iter().zip(rec.terms.iter()).enumerate()
                    {
                        if i > 0 {
                            aux.push(';');
                        }
                        let _ = write!(aux, "{name}={val}");
                    }
                    cols[9] = aux;
                }
                TraceEventKind::Counter { ready, running } => {
                    cols[8] = ready.to_string();
                    cols[9] = running.to_string();
                }
            }
            let _ = write!(out, "{at},{kind}");
            for c in &cols {
                out.push(',');
                out.push_str(c);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecisionRecord, FaultTag, ModelRef, TraceConfig, TraceRuntime};

    fn sample_trace() -> Trace {
        let mut rt = TraceRuntime::new(TraceConfig::default());
        let model = ModelRef {
            phase: 0,
            pipeline: 1,
            node: 2,
        };
        rt.record(0, TraceEventKind::PhaseStart { phase: 0 });
        rt.record(
            100,
            TraceEventKind::Release {
                task: 1,
                model,
                frame: 0,
                counted: true,
                deadline_ns: 5_000,
            },
        );
        rt.record(
            150,
            TraceEventKind::Decision(DecisionRecord {
                task: 1,
                acc: 2,
                score: 3.5,
                terms: [1.0, 2.5, 0.0, 4.0, 0.5, 3.5],
            }),
        );
        rt.record(
            150,
            TraceEventKind::Dispatch {
                task: 1,
                acc: 2,
                gang: 1,
                layer: 7,
                done_at_ns: 950,
            },
        );
        rt.record(
            150,
            TraceEventKind::Counter {
                ready: 0,
                running: 1,
            },
        );
        rt.record(
            300,
            TraceEventKind::FaultStart {
                fault: 0,
                acc: 0,
                kind: FaultTag::Stall,
            },
        );
        rt.record(400, TraceEventKind::FaultEnd { fault: 0, acc: 0 });
        rt.record(
            950,
            TraceEventKind::Complete {
                task: 1,
                model,
                on_time: true,
            },
        );
        rt.record(1_000, TraceEventKind::Drain);
        rt.finish()
    }

    #[test]
    fn csv_has_one_row_per_event_plus_header() {
        let t = sample_trace();
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), t.len() + 1);
        assert!(csv.starts_with("at_ns,kind,"));
        assert!(csv.contains("150,decision,1,2,,,,,,,3.5,urgency=1;"));
        assert!(csv.contains("150,dispatch,1,2,,,,,7,,950,1"));
    }

    #[test]
    fn chrome_json_brackets_balance_and_tracks_are_named() {
        let t = sample_trace();
        let json = t.to_chrome_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\""));
        assert!(
            json.contains("\"name\":\"acc2\""),
            "dispatch names its track"
        );
        assert!(json.contains("\"ph\":\"X\""), "dispatch renders a span");
        assert!(json.contains("\"ph\":\"C\""), "counters render");
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn equal_traces_export_byte_identically() {
        let a = sample_trace();
        let b = sample_trace();
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
