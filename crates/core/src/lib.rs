//! The DREAM scheduler — the paper's primary contribution.
//!
//! DREAM drives every dispatch decision from **MapScore** (Algorithm 1), a
//! per-(task, accelerator) score combining four unit metrics:
//!
//! * **Urgency** — predicted remaining work over remaining time to deadline;
//! * **Latency preference** — how much this accelerator likes the task's
//!   next layer, relative to all accelerators;
//! * **Starvation** — queue time over the layer's mean latency, protecting
//!   light layers from being starved by heavy ones;
//! * **Energy** — energy preference minus the context-switch energy cost.
//!
//! Starvation and energy are weighted by the tunable parameters **α** and
//! **β**, which DREAM optimises against **UXCost** (Algorithm 2) — the
//! paper's EDP-analogue for real-time workloads: the product of the summed
//! per-model deadline-violation rates and summed normalised energies.
//!
//! On top of score-driven dispatch, the full scheduler adds the paper's
//! §4 engines:
//!
//! * [`FrameDropEngine`] — the *smart frame drop* (§4.2.1): proactively
//!   drops a frame when its best-case remaining time already exceeds its
//!   slack, but only when that relieves other expected violators, only for
//!   dependency-free (leaf) models, and under a per-model drop-rate cap;
//! * supernet switching (§4.5.1) — dispatching a lighter weight-sharing
//!   variant when the heaviest cannot meet its deadline;
//! * [`AdaptivityEngine`] (§4.4) — detects workload changes and re-tunes
//!   (α, β) online using the radius-shrinking search of §3.6, without
//!   blocking dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptivity;
mod frame_drop;
mod matching;
mod optimizer;
mod params;
mod scheduler;
mod score;
mod uxcost;

pub use adaptivity::{AdaptivityConfig, AdaptivityEngine};
pub use frame_drop::{DropDecision, FrameDropEngine};
pub use matching::{greedy_assign, Candidate};
pub use optimizer::{ObjectiveKind, OptimizationTrace, OptimizerStep, ParamOptimizer};
pub use params::{DreamConfig, ParamError, ScoreParams};
pub use scheduler::{DreamScheduler, StageTimings};
pub use score::{MapScore, ScoreBreakdown, ScoreContext, TaskTerms};
pub use uxcost::{uxcost_of, ModelCostRow, UxCostReport};
