use std::collections::BTreeMap;

use dream_sim::{Millis, ModelKey, SimTime, TaskEvent, TaskEventKind};

use crate::{OptimizerStep, ParamOptimizer, ScoreParams};

/// Configuration of the online adaptivity engine (§4.4).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivityConfig {
    /// How long each candidate parameter pair is observed before its
    /// windowed UXCost is recorded.
    pub eval_window: SimTime,
    /// Initial sampling radius of each tuning episode.
    pub initial_radius: f64,
    /// Radius threshold that ends an episode.
    pub threshold: f64,
    /// Ring samples per optimiser step (smaller than offline mode — online
    /// evaluations cost wall-clock time).
    pub ring_points: usize,
    /// Distant probes per optimiser step.
    pub distant_points: usize,
}

impl Default for AdaptivityConfig {
    fn default() -> Self {
        AdaptivityConfig {
            eval_window: SimTime::from(Millis::new(100)),
            initial_radius: 0.5,
            threshold: 0.1,
            ring_points: 4,
            distant_points: 1,
        }
    }
}

/// Windowed per-model counters from which a live UXCost sample is computed.
#[derive(Debug, Clone, Default)]
struct WindowStats {
    per_model: BTreeMap<ModelKey, ModelWindow>,
}

#[derive(Debug, Clone, Copy, Default)]
struct ModelWindow {
    completed: u64,
    violated: u64,
    energy_pj: f64,
    worst_energy_pj: f64,
}

impl WindowStats {
    fn record(&mut self, event: &TaskEvent) {
        if !event.counted {
            return;
        }
        if let TaskEventKind::Completed {
            on_time,
            energy_pj,
            worst_energy_pj,
        } = event.kind
        {
            let w = self.per_model.entry(event.key).or_default();
            w.completed += 1;
            if !on_time {
                w.violated += 1;
            }
            w.energy_pj += energy_pj;
            w.worst_energy_pj += worst_energy_pj;
        } else if let TaskEventKind::Dropped = event.kind {
            let w = self.per_model.entry(event.key).or_default();
            w.completed += 1;
            w.violated += 1;
        }
    }

    /// Algorithm 2 over the window. `None` when nothing completed (the
    /// candidate gets an infinitely bad score so it can never win).
    // detlint: canonical-fold -- Algorithm 2 window fold over BTreeMap order: the deterministic reference sequence itself, with conditional terms canonical_sum cannot express
    fn uxcost(&self) -> Option<f64> {
        let mut rate_sum = 0.0;
        let mut energy_sum = 0.0;
        let mut any = false;
        for w in self.per_model.values() {
            if w.completed == 0 {
                continue;
            }
            any = true;
            let rate = if w.violated == 0 {
                1.0 / (2.0 * w.completed as f64)
            } else {
                w.violated as f64 / w.completed as f64
            };
            rate_sum += rate;
            if w.worst_energy_pj > 0.0 {
                energy_sum += w.energy_pj / w.worst_energy_pj;
            }
        }
        any.then_some(rate_sum * energy_sum)
    }
}

#[derive(Debug)]
enum State {
    /// Parameters locked; watching for workload changes.
    Idle,
    /// An optimisation episode is in flight.
    Tuning(Tuning),
}

#[derive(Debug)]
struct Tuning {
    optimizer: ParamOptimizer,
    candidates: Vec<ScoreParams>,
    evaluated: Vec<(ScoreParams, f64)>,
    current: usize,
    window_start: SimTime,
    window: WindowStats,
}

/// The §4.4 adaptivity engine: detects workload changes by watching the
/// inference model list and re-tunes (α, β) online — evaluating a small
/// number of candidate pairs on short windows of *live* execution, then
/// applying one §3.6 optimiser step, without ever blocking dispatch.
#[derive(Debug)]
pub struct AdaptivityEngine {
    config: AdaptivityConfig,
    model_list: Vec<&'static str>,
    state: State,
    locked: ScoreParams,
    episodes: u64,
    /// `(time, params, windowed cost)` for every completed candidate
    /// evaluation — the online counterpart of Figure 10's trajectory.
    history: Vec<(SimTime, ScoreParams, f64)>,
}

impl AdaptivityEngine {
    /// Creates an engine with locked initial parameters.
    pub fn new(config: AdaptivityConfig, initial: ScoreParams) -> Self {
        AdaptivityEngine {
            config,
            model_list: Vec::new(),
            state: State::Idle,
            locked: initial,
            episodes: 0,
            history: Vec::new(),
        }
    }

    /// The parameters the scheduler should use *right now*: the locked pair
    /// when idle, or the candidate under evaluation during tuning.
    pub fn params(&self) -> ScoreParams {
        match &self.state {
            State::Idle => self.locked,
            State::Tuning(t) => t.candidates[t.current],
        }
    }

    /// Whether a tuning episode is in flight.
    pub fn is_tuning(&self) -> bool {
        matches!(self.state, State::Tuning(_))
    }

    /// Number of tuning episodes triggered so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Completed candidate evaluations: `(time, candidate, windowed cost)`.
    pub fn history(&self) -> &[(SimTime, ScoreParams, f64)] {
        &self.history
    }

    /// Notifies the engine of a phase start with its model list; a changed
    /// list triggers a tuning episode (§4.4: "detects the workload changes
    /// by tracking the inference model list").
    pub fn on_phase_start(&mut self, now: SimTime, model_names: &[&'static str]) {
        if self.model_list == model_names {
            return;
        }
        self.model_list = model_names.to_vec();
        self.start_episode(now);
    }

    /// Starts an episode unconditionally (used at boot in the Figure 10
    /// "IDLE →" cases).
    pub fn start_episode(&mut self, now: SimTime) {
        let optimizer = ParamOptimizer::new(self.locked)
            .with_radius(self.config.initial_radius)
            .with_threshold(self.config.threshold)
            .with_samples(self.config.ring_points, self.config.distant_points);
        let candidates = optimizer.candidates();
        self.episodes += 1;
        self.state = State::Tuning(Tuning {
            optimizer,
            candidates,
            evaluated: Vec::new(),
            current: 0,
            window_start: now,
            window: WindowStats::default(),
        });
    }

    /// Feeds a task lifecycle event into the current evaluation window.
    pub fn on_task_event(&mut self, event: &TaskEvent) {
        if let State::Tuning(t) = &mut self.state {
            t.window.record(event);
        }
    }

    /// Advances the episode clock; called from the scheduler on every
    /// invocation. Returns the optimiser step record when a step just
    /// completed (for logging/inspection).
    pub fn tick(&mut self, now: SimTime) -> Option<OptimizerStep> {
        let State::Tuning(t) = &mut self.state else {
            return None;
        };
        if now.saturating_sub(t.window_start) < self.config.eval_window {
            return None;
        }
        // Close the current candidate's window. An empty window scores
        // infinitely badly, so it can never be selected.
        let cost = t.window.uxcost().unwrap_or(f64::INFINITY);
        let candidate = t.candidates[t.current];
        t.evaluated.push((candidate, cost));
        self.history.push((now, candidate, cost));
        t.window = WindowStats::default();
        t.window_start = now;
        t.current += 1;
        if t.current < t.candidates.len() {
            return None;
        }
        // All candidates of this step observed: apply one optimiser move.
        let step = t.optimizer.observe(std::mem::take(&mut t.evaluated));
        if t.optimizer.converged() {
            let best = t
                .optimizer
                .best_seen()
                .map(|(p, _)| p)
                .unwrap_or(self.locked);
            self.locked = best;
            self.state = State::Idle;
        } else {
            t.candidates = t.optimizer.candidates();
            t.current = 0;
        }
        Some(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_models::{NodeId, PipelineId};

    fn key() -> ModelKey {
        ModelKey {
            phase: 0,
            pipeline: PipelineId(0),
            node: NodeId(0),
        }
    }

    fn completed_event(now_ns: u64, on_time: bool) -> TaskEvent {
        TaskEvent {
            now: SimTime::from_ns(now_ns),
            task: dream_sim::TaskId(now_ns),
            key: key(),
            counted: true,
            kind: TaskEventKind::Completed {
                on_time,
                energy_pj: 10.0,
                worst_energy_pj: 100.0,
            },
        }
    }

    fn engine() -> AdaptivityEngine {
        let config = AdaptivityConfig {
            eval_window: SimTime::from_ns(1_000),
            initial_radius: 0.4,
            threshold: 0.15,
            ring_points: 3,
            distant_points: 0,
        };
        AdaptivityEngine::new(config, ScoreParams::neutral())
    }

    #[test]
    fn idle_until_model_list_changes() {
        let mut e = engine();
        assert!(!e.is_tuning());
        e.on_phase_start(SimTime::ZERO, &["A", "B"]);
        assert!(e.is_tuning());
        assert_eq!(e.episodes(), 1);
        // Same list again: no new episode.
        let mut e2 = engine();
        e2.on_phase_start(SimTime::ZERO, &["A"]);
        e2.on_phase_start(SimTime::from_ns(10), &["A"]);
        assert_eq!(e2.episodes(), 1);
    }

    #[test]
    fn params_cycle_through_candidates() {
        let mut e = engine();
        e.on_phase_start(SimTime::ZERO, &["A"]);
        let first = e.params();
        // Feed events and advance past the window.
        e.on_task_event(&completed_event(10, true));
        let step = e.tick(SimTime::from_ns(1_500));
        assert!(step.is_none(), "only one candidate closed, no step yet");
        let second = e.params();
        assert_ne!(first, second, "engine should move to the next candidate");
        assert_eq!(e.history().len(), 1);
    }

    #[test]
    fn empty_window_scores_infinite() {
        let mut e = engine();
        e.on_phase_start(SimTime::ZERO, &["A"]);
        e.tick(SimTime::from_ns(1_500));
        assert!(e.history()[0].2.is_infinite());
    }

    #[test]
    fn episode_converges_and_locks() {
        let mut e = engine();
        e.on_phase_start(SimTime::ZERO, &["A"]);
        let mut now = 0u64;
        let mut steps = 0;
        // Run enough windows to exhaust all steps: radius 0.4 → 0.2 → 0.1
        // (< 0.15 threshold ⇒ two steps).
        for _ in 0..200 {
            if !e.is_tuning() {
                break;
            }
            now += 600;
            e.on_task_event(&completed_event(now, now.is_multiple_of(3)));
            now += 600;
            if e.tick(SimTime::from_ns(now)).is_some() {
                steps += 1;
            }
        }
        assert!(!e.is_tuning(), "episode should converge");
        assert!(steps >= 1);
        // Locked params are within the box.
        let p = e.params();
        assert!((0.0..=2.0).contains(&p.alpha()));
        assert!((0.0..=2.0).contains(&p.beta()));
    }

    #[test]
    fn dropped_frames_count_as_window_violations() {
        let mut w = WindowStats::default();
        w.record(&TaskEvent {
            now: SimTime::ZERO,
            task: dream_sim::TaskId(0),
            key: key(),
            counted: true,
            kind: TaskEventKind::Dropped,
        });
        w.record(&completed_event(5, true));
        // 1 violated of 2, energy ratio 0.1.
        let c = w.uxcost().unwrap();
        assert!((c - 0.5 * 0.1).abs() < 1e-12, "{c}");
    }

    #[test]
    fn uncounted_events_are_ignored() {
        let mut w = WindowStats::default();
        w.record(&TaskEvent {
            now: SimTime::ZERO,
            task: dream_sim::TaskId(1),
            key: key(),
            counted: false,
            kind: TaskEventKind::Dropped,
        });
        assert!(w.uxcost().is_none());
    }
}
