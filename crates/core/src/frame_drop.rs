use std::collections::BTreeMap;
use std::collections::VecDeque;

use dream_sim::{ModelKey, SystemView, TaskId};

/// The outcome of a frame-drop evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropDecision {
    /// The victim task.
    pub task: TaskId,
    /// Its `minimum_to_go / slack` ratio (the selection key — highest
    /// among all candidates).
    pub ratio: f64,
}

/// The smart frame drop engine (§4.2.1).
///
/// A frame is dropped only when **all four** conditions hold:
///
/// 1. *Deadline-violation likelihood*: its best-case remaining time
///    (`minimum_to_go`: every certain layer on its best accelerator, no
///    context switches) already exceeds its slack.
/// 2. *Multi-model violation*: at least one **other** active job is also
///    expected to violate — dropping is pointless when nobody else
///    benefits.
/// 3. *Dependency-free*: only models at the end of their cascade chain may
///    be dropped (dropping a parent would implicitly drop its children).
/// 4. *Rate cap*: at most `max_drops` drops over the last `window` released
///    frames of that model (default 2-in-10 = the paper's 20% cap).
///
/// Among all candidates the engine picks the one with the largest
/// `minimum_to_go / slack`, i.e. the most hopeless frame.
#[derive(Debug, Clone)]
pub struct FrameDropEngine {
    window: u64,
    max_drops: usize,
    slack_floor_ns: f64,
    /// Per model: total frames released so far.
    releases: BTreeMap<ModelKey, u64>,
    /// Per model: release counters at which past drops happened (pruned as
    /// they age out of the window).
    drops: BTreeMap<ModelKey, VecDeque<u64>>,
    total_drops: u64,
}

impl FrameDropEngine {
    /// Creates an engine with the given rate cap.
    pub fn new(window: usize, max_drops: usize, slack_floor_ns: f64) -> Self {
        FrameDropEngine {
            window: window.max(1) as u64,
            max_drops,
            slack_floor_ns: slack_floor_ns.max(1.0),
            releases: BTreeMap::new(),
            drops: BTreeMap::new(),
            total_drops: 0,
        }
    }

    /// Records a released frame for `key` (drives the rate-cap window).
    pub fn on_released(&mut self, key: ModelKey) {
        *self.releases.entry(key).or_insert(0) += 1;
    }

    /// Whether `key` still has drop budget in its current window.
    pub fn budget_available(&self, key: ModelKey) -> bool {
        let released = self.releases.get(&key).copied().unwrap_or(0);
        let in_window = self
            .drops
            .get(&key)
            .map(|d| {
                d.iter()
                    .filter(|&&at| released.saturating_sub(at) < self.window)
                    .count()
            })
            .unwrap_or(0);
        in_window < self.max_drops
    }

    /// Records an executed drop for `key`.
    pub fn record_drop(&mut self, key: ModelKey) {
        let released = self.releases.get(&key).copied().unwrap_or(0);
        let d = self.drops.entry(key).or_default();
        d.push_back(released);
        while let Some(&front) = d.front() {
            if released.saturating_sub(front) >= self.window {
                d.pop_front();
            } else {
                break;
            }
        }
        self.total_drops += 1;
    }

    /// Total drops executed.
    pub fn total_drops(&self) -> u64 {
        self.total_drops
    }

    /// Evaluates the four conditions against the current system state and
    /// returns the victim, if any. At most one frame is dropped per
    /// scheduling invocation (the paper drops "the frame with the highest
    /// ratio … if exists").
    pub fn evaluate(&self, view: &SystemView<'_>) -> Option<DropDecision> {
        // Condition 1 applied over *all* active jobs to find expected
        // violators (Condition 2 needs them too).
        let mut violators = 0usize;
        let mut best: Option<DropDecision> = None;
        for task in view.tasks() {
            let slack = task.slack_ns(view.now());
            let min_to_go = task.min_to_go_ns(view.workload());
            let is_violator = min_to_go > slack;
            if !is_violator {
                continue;
            }
            violators += 1;
            // Candidate filtering: ready (the engine cannot abort a
            // running layer), leaf model (Condition 3), budget (Condition
            // 4).
            if !task.is_ready() {
                continue;
            }
            let node = view.workload().node(task.key());
            if !node.is_leaf() {
                continue;
            }
            if !self.budget_available(task.key()) {
                continue;
            }
            let ratio = min_to_go / slack.max(self.slack_floor_ns);
            if best.map(|b| ratio > b.ratio).unwrap_or(true) {
                best = Some(DropDecision {
                    task: task.id(),
                    ratio,
                });
            }
        }
        // Condition 2: more than one active job expected to violate.
        if violators < 2 {
            return None;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_models::{NodeId, PipelineId};

    fn key(n: usize) -> ModelKey {
        ModelKey {
            phase: 0,
            pipeline: PipelineId(0),
            node: NodeId(n),
        }
    }

    #[test]
    fn budget_caps_drops_per_window() {
        let mut e = FrameDropEngine::new(10, 2, 1_000.0);
        let k = key(0);
        for _ in 0..10 {
            e.on_released(k);
        }
        assert!(e.budget_available(k));
        e.record_drop(k);
        assert!(e.budget_available(k));
        e.record_drop(k);
        assert!(!e.budget_available(k), "2 drops in 10 frames exhausts");
        // Ten more releases age the drops out.
        for _ in 0..10 {
            e.on_released(k);
        }
        assert!(e.budget_available(k));
        assert_eq!(e.total_drops(), 2);
    }

    #[test]
    fn budget_is_per_model() {
        let mut e = FrameDropEngine::new(10, 1, 1_000.0);
        e.on_released(key(0));
        e.on_released(key(1));
        e.record_drop(key(0));
        assert!(!e.budget_available(key(0)));
        assert!(e.budget_available(key(1)));
    }

    #[test]
    fn fresh_model_has_budget() {
        let e = FrameDropEngine::new(10, 2, 1_000.0);
        assert!(e.budget_available(key(7)));
    }
}
